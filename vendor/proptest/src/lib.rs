//! Offline stand-in for the slice of the `proptest` API this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real crate cannot be fetched (see `vendor/README.md`). This shim supports
//! exactly the patterns that appear in the workspace's tests:
//!
//! ```text
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(10))]   // optional
//!
//!     /// doc comments
//!     #[test]
//!     fn prop_name(a in 1usize..100, b in 2u32..9) { ... }
//! }
//! ```
//!
//! plus `prop_assert!`, `prop_assert_eq!` and `prop_assume!` inside bodies.
//! There is no shrinking: a failing case panics with the sampled inputs in
//! the message, which is enough to reproduce (sampling is deterministic per
//! test name).

#![warn(missing_docs)]

/// Per-block configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tests here spawn real threads per case,
        // so keep the default modest. Blocks that care set it explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single sampled case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — resample, don't count the case.
    Reject,
}

/// Deterministic per-test generator used by the `proptest!` runner.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the property function's name (FNV-1a), so every run of the
    /// same test samples the same sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// One raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value source for one property argument (subset of `proptest::Strategy`).
pub trait Strategy {
    /// The type of the values produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A bare `usize` is a constant length strategy — the shim's stand-in for
/// the real crate's `SizeRange: From<usize>`, so
/// `prop::collection::vec(strategy, 8)` works.
impl Strategy for usize {
    type Value = usize;
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategies over collections (subset of `proptest::collection`).
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Strategy for `Vec`s: length drawn from `len`, elements from
    /// `element`. Built by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`: vectors whose length comes from `len`
    /// (a `usize` range, or a bare `usize` for a fixed length) and whose
    /// elements come from `element`.
    pub fn vec<S, L>(element: S, len: L) -> VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        VecStrategy { element, len }
    }

    impl<S, L> Strategy for VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    /// The crate under its conventional `prop::` alias, so
    /// `prop::collection::vec(...)` resolves as it does upstream.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property body (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Skip (resample) the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // Config-carrying form.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Expansion: one generated #[test] fn per property.
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __cfg.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __cfg.cases.saturating_mul(20).max(100),
                        "proptest {}: too many prop_assume! rejections",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __case = ::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::TestCaseError> {
                            { $body }
                            ::core::result::Result::Ok(())
                        },
                    );
                    match ::std::panic::catch_unwind(__case) {
                        Ok(Ok(())) => __accepted += 1,
                        Ok(Err($crate::TestCaseError::Reject)) => continue,
                        Err(payload) => {
                            eprintln!(
                                "proptest {} failed with inputs: {}",
                                stringify!($name),
                                [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    // Config-less form.
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn in_bounds(a in 3usize..17, b in -4i64..9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-4..9).contains(&b));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_len_and_bounds(
            xs in prop::collection::vec(2u8..7, 0usize..5),
            fixed in prop::collection::vec(0i32..3, 4usize),
        ) {
            prop_assert!(xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| (2..7).contains(&x)));
            prop_assert_eq!(fixed.len(), 4);
        }
    }

    proptest! {
        /// Config-less blocks use the default case count.
        #[test]
        fn default_config_works(x in 1u32..5) {
            prop_assert!((1..5).contains(&x));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::for_test("some_prop");
        let mut b = TestRng::for_test("some_prop");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
