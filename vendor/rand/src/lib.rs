//! Offline stand-in for the tiny slice of the `rand` crate this workspace
//! uses: `rngs::StdRng::seed_from_u64` plus `Rng::gen_range` over half-open
//! numeric ranges.
//!
//! The build environment has no network access and no registry cache, so the
//! real crate cannot be fetched (see `vendor/README.md`). This shim keeps the
//! same API shape with a deterministic splitmix64 generator; sequences differ
//! from upstream `StdRng` (ChaCha), which is fine because nothing in the
//! workspace depends on upstream's exact streams — only on determinism for a
//! fixed seed.

#![warn(missing_docs)]

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64), seeded explicitly.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seeding constructor trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Types that can be drawn uniformly from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Map one 64-bit draw onto `range`.
    fn from_bits(bits: u64, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_bits(bits: u64, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128) - (range.start as i128);
                (range.start as i128 + (bits as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn from_bits(bits: u64, range: core::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 24 high-quality mantissa bits → uniform in [0, 1).
        let unit = (bits >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn from_bits(bits: u64, range: core::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    /// One raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::from_bits(self.next_u64(), range)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
