//! Offline stand-in for the slice of the `criterion` API the workspace's
//! benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no network access and no registry cache, so the
//! real crate cannot be fetched (see `vendor/README.md`). This shim keeps the
//! benches compiling and runnable: each benchmark runs a short warmup plus a
//! fixed number of timed iterations and prints the mean wall-clock time. No
//! statistics, plots, or baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver (stub).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 10 }
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("func", param)` → `func/param`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group; runs and prints each registered benchmark immediately.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size.min(10) };
        let start = Instant::now();
        f(&mut b);
        let total = start.elapsed();
        let mean = total / b.samples.max(1) as u32;
        println!("bench {}/{}: {:?}/iter ({} iters)", self.name, id, mean, b.samples);
        self
    }

    /// Run one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Run `routine` once for warmup and then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = 0usize;
        g.sample_size(3).bench_function("f", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
        g.bench_with_input(BenchmarkId::new("h", 4), &4usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
