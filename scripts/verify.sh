#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and lint-clean
# clippy across every target. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (benches must always compile)"
cargo bench --workspace --no-run

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# The schedule-IR golden dumps are load-bearing: any drift in emission
# order, dependency edges or wire annotations must be an intentional,
# reviewed regeneration (MICS_UPDATE_GOLDENS=1), never an accident.
echo "==> golden schedule dumps"
cargo test -q --test schedule_goldens

# Same story for the trace layer: every trace document must satisfy the
# Trace Event Format invariants and the simulator trace is golden-pinned.
echo "==> trace schema + golden trace"
cargo test -q --test trace_schema

# perf-diff is the snapshot regression gate; prove the gate itself works
# before trusting it: identical snapshots must pass, a perturbed copy
# (one snapshot dropped — always a regression) must exit nonzero.
echo "==> perf-diff self-check"
cargo build --release -q -p mics-cli --bin mics-sim
target/release/mics-sim perf-diff results results >/dev/null
PERTURBED="$(mktemp -d /tmp/mics-perfdiff.XXXXXX)"
cp results/*.json "${PERTURBED}/"
rm "${PERTURBED}/$(basename "$(find results -maxdepth 1 -name '*.json' | sort | head -n 1)")"
if target/release/mics-sim perf-diff results "${PERTURBED}" >/dev/null 2>&1; then
    echo "perf-diff FAILED to flag a perturbed snapshot" >&2
    rm -rf "${PERTURBED}"
    exit 1
fi
rm -rf "${PERTURBED}"
# ...and the addition case: a snapshot that only gains files (a new bench
# landing) is informational, never a regression.
AUGMENTED="$(mktemp -d /tmp/mics-perfdiff.XXXXXX)"
cp results/*.json "${AUGMENTED}/"
echo '{"v":1}' > "${AUGMENTED}/zz_addition_selfcheck.json"
# Capture, then grep: `| grep -q` closes the pipe at first match and the
# still-printing writer dies on SIGPIPE.
ADDITION_OUT="$(target/release/mics-sim perf-diff results "${AUGMENTED}")"
grep -q 'new files (not gated): zz_addition_selfcheck.json' <<< "${ADDITION_OUT}"
rm -rf "${AUGMENTED}"

# Kernels-v2 perf gate: re-run the kernel microbenchmarks (the bench itself
# asserts the ≥ 2× SIMD-vs-blocked claim inline and regenerates the
# artifact) and hold the fresh timings against the committed snapshot with
# the direction-aware perf-diff — getting faster is informational, any
# timing >40% slower than committed fails the gate.
echo "==> kernels bench + perf-diff timing gate"
KERNELS_BASELINE="$(mktemp -d /tmp/mics-kernels.XXXXXX)"
cp results/BENCH_kernels.json "${KERNELS_BASELINE}/"
cargo bench -q -p mics-bench --bench kernels >/dev/null
target/release/mics-sim perf-diff "${KERNELS_BASELINE}" results --threshold 40 >/dev/null
rm -rf "${KERNELS_BASELINE}"

# A traced fidelity run must still produce a loadable merged document.
echo "==> fidelity trace smoke"
FID_TRACE="$(mktemp -u /tmp/mics-fidelity.XXXXXX.json)"
target/release/mics-sim fidelity --iterations 2 --trace "${FID_TRACE}" >/dev/null
grep -q '"traceEvents"' "${FID_TRACE}"
rm -f "${FID_TRACE}"

# Smoke-run the extension benches: they carry their own assertions (the
# ablation's knob deltas, the compression bench's ~4× wire claim and the
# int8 fidelity envelope) and regenerate their results/ artifacts.
echo "==> ext_ablation (smoke)"
cargo run --release -q -p mics-bench --bin ext_ablation >/dev/null

echo "==> ext_compress (smoke)"
cargo run --release -q -p mics-bench --bin ext_compress >/dev/null

# The overlap bench asserts bit-identity inline vs async, a positive
# measured overlap fraction, the structural deferral/prefetch counts, and
# the wall-clock gate appropriate to the host's core count.
echo "==> ext_overlap (smoke)"
cargo run --release -q -p mics-bench --bin ext_overlap >/dev/null

# The elastic bench asserts the spot-trace goodput claims (elastic ≥ static
# on the identical seeded timeline, monotone degradation with churn) and
# the real-backend bit-exact shrink/grow continuity, on both transports.
echo "==> ext_elastic (smoke)"
cargo run --release -q -p mics-bench --bin ext_elastic >/dev/null

# The isoFLOP sweep in miniature: --smoke walks the same code path (budget
# honoring through the kernel FLOP counters, all three schedules with the
# agreement assertion) at a toy budget and never touches the committed
# artifact. A wedged rank thread must fail the gate, not hang it.
echo "==> ext_sweep (smoke, capped wall clock)"
timeout 120 cargo run --release -q -p mics-bench --bin ext_sweep -- --smoke >/dev/null

# The multi-process recovery bench spawns real rank processes over the
# socket transport and SIGKILLs one mid-all-gather; survivors must detect
# the death within the deadline and rebuild. A wedged rendezvous must
# fail the gate, not hang it, hence the hard wall-clock cap.
echo "==> mics-rankd bench (socket-transport smoke, capped wall clock)"
cargo build --release -q -p mics-cli --bin mics-rankd
timeout 150 target/release/mics-rankd bench >/dev/null

# The planner service bench drives 1200+ socket queries through the memo
# cache and asserts the hit-rate / dedup-collapse / byte-identity claims
# recorded in results/ext_serve.json.
echo "==> ext_serve (planner service smoke, capped wall clock)"
timeout 150 cargo run --release -q -p mics-bench --bin ext_serve >/dev/null

# And the daemon round-trips end to end: serve on a Unix socket, query it,
# shut it down. A wedged server must fail the gate, not hang it.
echo "==> mics-plannerd serve/query/shutdown round trip"
cargo build --release -q -p mics-cli --bin mics-plannerd
PLANNER_SOCK="$(mktemp -u /tmp/mics-plannerd.XXXXXX.sock)"
timeout 60 target/release/mics-plannerd serve --addr "unix:${PLANNER_SOCK}" &
PLANNER_PID=$!
for _ in $(seq 50); do [ -S "${PLANNER_SOCK}" ] && break; sleep 0.1; done
# (plain grep, not -q: -q exits at first match and the early pipe close
# makes the query's stdout print die on EPIPE)
timeout 30 target/release/mics-plannerd query --addr "unix:${PLANNER_SOCK}" \
    --model bert-10b --nodes 2 --strategy mics:8 | grep '"report"' >/dev/null
timeout 30 target/release/mics-plannerd bench --addr "unix:${PLANNER_SOCK}" \
    --clients 2 --queries 8 >/dev/null
timeout 30 target/release/mics-plannerd stop --addr "unix:${PLANNER_SOCK}"
wait "${PLANNER_PID}"

echo "verify: all green"
