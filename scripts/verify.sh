#!/usr/bin/env bash
# Full pre-merge gate: release build, the whole test suite, and lint-clean
# clippy across every target. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all green"
