//! A data plane that stands in for NCCL, with two interchangeable
//! transports behind one [`Communicator`] API.
//!
//! Collectives are rendezvous operations over real `f32` buffers, so the
//! *data-layout contracts* of the paper's algorithms — most importantly the
//! 3-stage hierarchical all-gather of §3.3 and the coalesced communication
//! APIs of §4 — are executed and tested for real, not merely cost-modelled.
//! Every collective lowers to one transport primitive (a sequenced
//! exchange: deposit a batch, receive every member's batch in rank order),
//! and the [`transport`] layer provides two implementations:
//!
//! * **local** — each simulated device is an OS thread; the rendezvous is a
//!   shared-memory barrier. This is [`Communicator::create_world`] /
//!   [`run_ranks`].
//! * **socket** — each device is a separate OS *process* holding one framed
//!   TCP or Unix-domain connection to a [`transport::Hub`]; see
//!   [`transport::connect_world`] and the `mics-rankd` worker binary. This
//!   is the transport that gives fault injection real teeth: a SIGKILLed
//!   rank is a torn connection, not a poisoned flag.
//!
//! Determinism: reductions fold contributions in fixed rank order *on the
//! rank side of the transport*, so every rank computes bit-identical
//! results on either transport, and repeated runs are bit-identical
//! regardless of scheduling. This is what lets the fidelity experiment
//! (paper §5.4, Figure 15) compare loss curves between synchronization
//! schedules down to floating-point equality.
//!
//! # Failure semantics
//!
//! MiCS targets the public cloud, where ranks die mid-run. A rendezvous
//! collective must therefore be *abortable*: when a rank fails, every
//! peer's in-flight collective returns a [`CommError`] within a bounded
//! time instead of hanging. The detection paths all feed the same poison
//! state:
//!
//! - **Explicit failure:** a rank that panics (see [`try_run_ranks`])
//!   marks its communicator — and, transitively, every sub-communicator
//!   created from it — as failed. Peers blocked in a rendezvous are woken
//!   immediately with [`CommError::RankFailed`].
//! - **Timeout:** every rendezvous wait carries a deadline (configured with
//!   [`Communicator::set_timeout`]). A rank that never shows up is detected
//!   when the wait expires, which breaks the group's current epoch and
//!   returns [`CommError::Timeout`] to all waiters.
//! - **Transport teardown** (socket only): a dead process's connection
//!   closes; survivors observe [`CommError::PeerDisconnected`] without
//!   waiting for any logical deadline.
//! - **Heartbeat** (socket only): a wedged peer — alive but silent — is
//!   expired by per-connection heartbeats, surfacing as
//!   [`CommError::PeerDisconnected`] (hub-detected) or [`CommError::Io`]
//!   (rank-detected silent hub).
//!
//! A poisoned group never recovers; survivors rebuild a smaller group with
//! [`Communicator::remove_rank`] and continue there (the data plane
//! analogue of re-initializing NCCL communicators after shrink).
//!
//! The `try_*` collectives surface failures as `Result`; the plain methods
//! keep the original infallible signatures and panic on abort, which in a
//! [`run_ranks`] harness cascades into an orderly whole-world teardown.
//!
//! # Example
//!
//! ```
//! use mics_dataplane::run_ranks;
//!
//! let results = run_ranks(4, |comm| {
//!     let contribution = vec![comm.rank() as f32];
//!     comm.all_gather(&contribution)
//! });
//! for r in &results {
//!     assert_eq!(r, &[0.0, 1.0, 2.0, 3.0]);
//! }
//! ```

#![warn(missing_docs)]

use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

pub mod hierarchical;
pub mod nonblocking;
pub mod quantized;
pub mod transport;

pub use hierarchical::{
    hierarchical_all_gather, hierarchical_reduce_scatter, naive_two_stage_all_gather,
    try_hierarchical_all_gather, try_hierarchical_reduce_scatter,
};
pub use nonblocking::{
    start_hierarchical_all_gather, start_hierarchical_reduce_scatter, CollectiveHandle,
    ASYNC_QUEUE_DEPTH,
};
pub use quantized::{
    quantized_all_gather, quantized_all_reduce, quantized_hierarchical_all_gather,
    quantized_hierarchical_reduce_scatter, quantized_reduce_scatter,
};
pub use transport::{
    connect_world, socket_counters, Hub, RetryPolicy, SocketWorldConfig, TransportKind,
    DATAPLANE_PROCESS,
};

use transport::{Backend, ChildKey};

/// Rendezvous waits detect an absent rank after this long unless
/// [`Communicator::set_timeout`] overrides it. Generous compared to the
/// microseconds a healthy rendezvous takes, so only a genuinely dead or
/// deadlocked peer trips it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a collective aborted instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// A peer was reported dead (panicked rank thread, or a worker process
    /// that reported failure before exiting). The id is the rank as known
    /// to the communicator where the failure was first observed — for
    /// failures propagated from a parent group, its world rank.
    RankFailed {
        /// Failed rank id.
        rank: usize,
    },
    /// A peer never arrived at the rendezvous within the configured bound.
    Timeout {
        /// How long this rank waited before giving up.
        waited: Duration,
    },
    /// The transport itself failed (socket error, silent hub past the
    /// heartbeat grace). Local-transport groups never report this.
    Io {
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
    },
    /// A peer's connection tore down without a clean goodbye — the
    /// SIGKILL/preemption signature on the socket transport, detected by
    /// connection teardown or missed heartbeats rather than any logical
    /// deadline.
    PeerDisconnected {
        /// World rank of the vanished peer.
        rank: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout { waited } => {
                write!(f, "rendezvous timed out after {waited:?}")
            }
            CommError::Io { kind } => write!(f, "transport I/O error: {kind}"),
            CommError::PeerDisconnected { rank } => {
                write!(f, "peer rank {rank} disconnected")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Lock that survives a peer thread having panicked while holding the
/// guard: the protected state is plain data (deposit slots, counters) that
/// is always left consistent at the end of each statement, so the std
/// poison flag carries no information the group's own poison state
/// doesn't already capture.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A rank's handle to a communicator group (analogous to an MPI
/// communicator / NCCL communicator).
///
/// All collective methods must be called by **every** rank of the group, in
/// the same program order — the usual SPMD contract. Violations of the
/// contract surface as [`CommError::Timeout`] (a rank at a different
/// rendezvous never arrives at this one) or panic on shape mismatch.
///
/// The handle is transport-agnostic: it behaves identically whether it
/// came from [`Communicator::create_world`] (threads, shared memory) or
/// [`transport::connect_world`] (one process per rank, sockets).
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    backend: Backend,
    /// Number of `split` calls made so far (local mirror of a value that is
    /// identical across ranks by the SPMD contract).
    split_calls: u64,
    /// Number of `remove_rank` calls made so far (same SPMD mirror).
    rebuild_epoch: u64,
    /// Lazily-spawned progress thread for the non-blocking collectives
    /// (see [`nonblocking`]); `None` until the first `start_*` call.
    engine: Option<nonblocking::Engine>,
}

impl Communicator {
    pub(crate) fn from_backend(rank: usize, backend: Backend) -> Communicator {
        Communicator { rank, backend, split_calls: 0, rebuild_epoch: 0, engine: None }
    }

    /// A second handle to the same (rank, group) — the progress thread's
    /// identity in the [`nonblocking`] engine. Never exposed: two handles
    /// issuing collectives concurrently would corrupt the rendezvous, so
    /// the engine is the only caller and serializes all use.
    pub(crate) fn sibling(of: &Communicator) -> Communicator {
        Communicator::from_backend(of.rank, of.backend.clone())
    }

    /// Create the world group on the local (thread) transport: one handle
    /// per rank.
    pub fn create_world(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world must be non-empty");
        let inner = Arc::new(transport::local::Inner::new(world, DEFAULT_TIMEOUT));
        (0..world)
            .map(|rank| Communicator::from_backend(rank, Backend::Local(Arc::clone(&inner))))
            .collect()
    }

    /// This handle's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world(&self) -> usize {
        self.backend.world()
    }

    /// Which transport this communicator's group runs on.
    pub fn transport(&self) -> TransportKind {
        transport::socket::kind_of(&self.backend)
    }

    /// Set the failure-detection bound for rendezvous waits. The bound is
    /// shared with every other handle to the same group state in this
    /// process (notably the non-blocking engine's progress thread), and
    /// sub-groups created afterwards inherit it. On the local transport the
    /// group state is process-wide, so any rank's call applies to all; on
    /// the socket transport each rank process governs its own waits — SPMD
    /// programs set it symmetrically anyway.
    pub fn set_timeout(&self, timeout: Duration) {
        self.backend.set_timeout(timeout);
    }

    /// The current failure-detection bound (see
    /// [`Communicator::set_timeout`]).
    pub fn timeout(&self) -> Duration {
        self.backend.timeout()
    }

    /// The failure that poisoned this group, if any — without blocking.
    pub fn failure(&self) -> Option<CommError> {
        self.backend.failure()
    }

    /// Report this rank as failed to the whole group, waking every peer
    /// blocked in a rendezvous. Called automatically by [`try_run_ranks`]
    /// when a rank thread panics; worker processes call it before exiting
    /// on a panic so peers learn the failure faster than any deadline.
    pub fn mark_failed(&self) {
        self.backend.mark_failed(self.rank);
    }

    /// Block until every rank of the group arrives, or the group fails.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.backend.barrier(self.rank)
    }

    /// Block until every rank of the group arrives.
    ///
    /// # Panics
    /// Panics if the group fails while waiting (see [`Self::try_barrier`]).
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("collective aborted: {e}"));
    }

    /// Fallible [`Self::all_gather`]: aborts with the failure instead of
    /// completing when a peer dies or never arrives.
    pub fn try_all_gather(&self, contribution: &[f32]) -> Result<Vec<f32>, CommError> {
        let mut out = Vec::new();
        self.try_all_gather_into(contribution, &mut out)?;
        Ok(out)
    }

    /// [`Self::try_all_gather`] into a caller-provided buffer: `out` is
    /// cleared and filled with the `world × len` gathered elements. The
    /// buffer's capacity is reused across calls, which is what lets a hot
    /// training loop double-buffer its parameter gathers with zero
    /// steady-state allocation.
    pub fn try_all_gather_into(
        &self,
        contribution: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), CommError> {
        let all = self.backend.exchange(self.rank, &[contribution])?;
        let len0 = all[0].first().expect("missing contribution").len();
        out.clear();
        out.reserve(len0 * self.world());
        for (r, batch) in all.iter().enumerate() {
            let s = batch.first().expect("missing contribution");
            assert_eq!(s.len(), len0, "rank {r} contributed a different length");
            out.extend_from_slice(s);
        }
        Ok(())
    }

    /// Gather equal-length contributions from all ranks, concatenated in
    /// rank order. Returns `world × len` elements on every rank.
    pub fn all_gather(&self, contribution: &[f32]) -> Vec<f32> {
        self.try_all_gather(contribution).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::reduce_scatter`].
    pub fn try_reduce_scatter(&self, contribution: &[f32]) -> Result<Vec<f32>, CommError> {
        let world = self.world();
        assert!(
            contribution.len().is_multiple_of(world),
            "reduce_scatter input length {} not divisible by world {world}",
            contribution.len()
        );
        let shard = contribution.len() / world;
        let all = self.backend.exchange(self.rank, &[contribution])?;
        let mut out = vec![0.0f32; shard];
        let base = self.rank * shard;
        for batch in &all {
            let s = batch.first().expect("missing contribution");
            assert_eq!(s.len(), contribution.len(), "mismatched lengths");
            for i in 0..shard {
                out[i] += s[base + i];
            }
        }
        Ok(out)
    }

    /// Reduce (sum) equal-length contributions of `world × shard` elements
    /// and scatter: rank `r` receives the reduced shard `r`.
    ///
    /// The fold is in fixed rank order on the rank side of the transport,
    /// so results are deterministic and identical across ranks — and across
    /// transports.
    pub fn reduce_scatter(&self, contribution: &[f32]) -> Vec<f32> {
        self.try_reduce_scatter(contribution).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::all_reduce`].
    pub fn try_all_reduce(&self, contribution: &[f32]) -> Result<Vec<f32>, CommError> {
        let all = self.backend.exchange(self.rank, &[contribution])?;
        let mut out = vec![0.0f32; contribution.len()];
        for batch in &all {
            let s = batch.first().expect("missing contribution");
            assert_eq!(s.len(), out.len(), "mismatched lengths");
            for (o, x) in out.iter_mut().zip(s.iter()) {
                *o += *x;
            }
        }
        Ok(out)
    }

    /// Sum equal-length contributions across all ranks; every rank receives
    /// the full reduced buffer (deterministic rank-order fold).
    pub fn all_reduce(&self, contribution: &[f32]) -> Vec<f32> {
        self.try_all_reduce(contribution).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::broadcast`].
    pub fn try_broadcast(&self, root: usize, data: &[f32]) -> Result<Vec<f32>, CommError> {
        assert!(root < self.world(), "root out of range");
        // Only the root's batch carries payload; the others are empty.
        let batch: &[&[f32]] = if self.rank == root { &[data] } else { &[] };
        let all = self.backend.exchange(self.rank, batch)?;
        Ok(all[root].first().expect("root did not deposit").clone())
    }

    /// Broadcast `data` from `root` to every rank. Non-root ranks pass their
    /// (ignored) local buffer for shape symmetry.
    pub fn broadcast(&self, root: usize, data: &[f32]) -> Vec<f32> {
        self.try_broadcast(root, data).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::all_gather_coalesced`].
    pub fn try_all_gather_coalesced(&self, parts: &[&[f32]]) -> Result<Vec<Vec<f32>>, CommError> {
        let all = self.backend.exchange(self.rank, parts)?;
        let nparts = all[0].len();
        let mut out = Vec::with_capacity(nparts);
        for part in 0..nparts {
            let len0 = all[0][part].len();
            let mut buf = Vec::with_capacity(len0 * self.world());
            for (r, batch) in all.iter().enumerate() {
                assert_eq!(batch.len(), nparts, "rank {r} batched a different number of buffers");
                assert_eq!(batch[part].len(), len0, "rank {r} part {part} length mismatch");
                buf.extend_from_slice(&batch[part]);
            }
            out.push(buf);
        }
        Ok(out)
    }

    /// The `all_gather_coalesced` API of paper §4: gather a *batch* of
    /// buffers with one rendezvous instead of one per buffer, avoiding the
    /// per-call overhead and interleaving copies of the naive approach.
    /// Entry `i` of the result is the rank-order concatenation of every
    /// rank's `i`-th buffer.
    pub fn all_gather_coalesced(&self, parts: &[&[f32]]) -> Vec<Vec<f32>> {
        self.try_all_gather_coalesced(parts).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::reduce_scatter_coalesced`].
    pub fn try_reduce_scatter_coalesced(
        &self,
        parts: &[&[f32]],
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let world = self.world();
        for (i, p) in parts.iter().enumerate() {
            assert!(
                p.len().is_multiple_of(world),
                "reduce_scatter_coalesced part {i} length {} not divisible by {world}",
                p.len()
            );
        }
        let all = self.backend.exchange(self.rank, parts)?;
        let nparts = all[0].len();
        let mut out = Vec::with_capacity(nparts);
        for part in 0..nparts {
            let full = all[0][part].len();
            let shard = full / world;
            let base = self.rank * shard;
            let mut buf = vec![0.0f32; shard];
            for batch in &all {
                assert_eq!(batch[part].len(), full, "part {part} length mismatch");
                for i in 0..shard {
                    buf[i] += batch[part][base + i];
                }
            }
            out.push(buf);
        }
        Ok(out)
    }

    /// The `reduce_scatter_coalesced` API of paper §4: batch of independent
    /// reduce-scatters with a single rendezvous. Entry `i` of the result is
    /// this rank's reduced shard of batch element `i`.
    pub fn reduce_scatter_coalesced(&self, parts: &[&[f32]]) -> Vec<Vec<f32>> {
        self.try_reduce_scatter_coalesced(parts)
            .unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::split`].
    pub fn try_split(&mut self, color: i64, key: i64) -> Result<Communicator, CommError> {
        let call = self.split_calls;
        self.split_calls += 1;
        // Exchange (color, key) as four f32 bit-halves — exact for every
        // i64, on every transport (the wire is bit-preserving).
        let meta = [
            f32::from_bits(color as u64 as u32),
            f32::from_bits(((color as u64) >> 32) as u32),
            f32::from_bits(key as u64 as u32),
            f32::from_bits(((key as u64) >> 32) as u32),
        ];
        let all = self.backend.exchange(self.rank, &[&meta])?;
        let decode = |batch: &Vec<Vec<f32>>| -> (i64, i64) {
            let m = batch.first().expect("missing split metadata");
            assert_eq!(m.len(), 4, "malformed split metadata");
            let join = |lo: f32, hi: f32| {
                (u64::from(lo.to_bits()) | (u64::from(hi.to_bits()) << 32)) as i64
            };
            (join(m[0], m[1]), join(m[2], m[3]))
        };
        let mut members: Vec<(i64, usize)> = all
            .iter()
            .enumerate()
            .filter_map(|(r, batch)| {
                let (c, k) = decode(batch);
                (c == color).then_some((k, r))
            })
            .collect();
        members.sort_unstable();
        let new_rank =
            members.iter().position(|&(_, r)| r == self.rank).expect("rank not in own group");
        let child = self.backend.child(ChildKey::Split { call, color }, members.len());
        Ok(Communicator::from_backend(new_rank, child))
    }

    /// Split the group into disjoint sub-groups, MPI `comm_split` style:
    /// ranks passing the same `color` join one sub-group; `key` orders ranks
    /// within it (ties broken by parent rank). Every rank of the parent must
    /// call `split` collectively.
    ///
    /// ```
    /// use mics_dataplane::run_ranks;
    /// // Figure 2: partition groups of 2 consecutive ranks.
    /// let out = run_ranks(4, |mut comm| {
    ///     let group = comm.split((comm.rank() / 2) as i64, comm.rank() as i64);
    ///     group.all_gather(&[comm.rank() as f32])
    /// });
    /// assert_eq!(out[0], vec![0.0, 1.0]);
    /// assert_eq!(out[3], vec![2.0, 3.0]);
    /// ```
    pub fn split(&mut self, color: i64, key: i64) -> Communicator {
        self.try_split(color, key).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Rebuild the group without rank `removed`, after that rank failed:
    /// the shrink/rebuild step of recovery. Every *surviving* rank must call
    /// this collectively with the same `removed` id; each receives a handle
    /// to a fresh group of `world() - 1` ranks in which surviving ranks keep
    /// their relative order (`rank' = rank - (rank > removed)`).
    ///
    /// The old group stays poisoned; only the new handles are usable. If a
    /// further rank dies before reaching this rendezvous, the rebuild itself
    /// fails with [`CommError::Timeout`] and can be retried with the next
    /// casualty removed as well.
    pub fn remove_rank(&mut self, removed: usize) -> Result<Communicator, CommError> {
        assert!(removed < self.world(), "removed rank out of range");
        assert_ne!(self.rank, removed, "a removed rank cannot join the rebuilt group");
        let epoch = self.rebuild_epoch;
        self.rebuild_epoch += 1;
        let new_world = self.world() - 1;
        let new_rank = self.rank - usize::from(self.rank > removed);
        let rebuilt = self.backend.child(ChildKey::Rebuild { epoch, removed }, new_world);
        // Rendezvous on the *new* group — the old one is poisoned. This is
        // also the liveness check that all survivors made it here.
        rebuilt.barrier(new_rank)?;
        Ok(Communicator::from_backend(new_rank, rebuilt))
    }
}

/// One rank's panic, as reported by [`try_run_ranks`].
#[derive(Debug)]
pub struct RankPanic {
    /// The world rank whose closure panicked.
    pub rank: usize,
    /// The panic payload rendered as a string.
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Like [`run_ranks_on`], but a panicking rank becomes an `Err` entry
/// instead of tearing down the harness — the panic is caught, the world
/// group (and every sub-group) is poisoned so surviving ranks abort their
/// collectives within the configured timeout, and survivors' return values
/// are kept.
///
/// With [`TransportKind::Socket`] the harness stands up an in-process
/// [`Hub`] on an ephemeral loopback port and connects every rank thread
/// through real sockets — same topology as separate worker processes, same
/// wire, same failure paths (a panicking rank reports `Failed` before its
/// connection drops).
pub fn try_run_ranks_on<F, R>(kind: TransportKind, world: usize, f: F) -> Vec<Result<R, RankPanic>>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    let (hub, comms) = match kind {
        TransportKind::Local => (None, Communicator::create_world(world)),
        TransportKind::Socket => {
            let (hub, comms) = transport::socket::create_socket_world(world);
            (Some(hub), comms)
        }
    };
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                let probe = Communicator::sibling(&comm);
                scope.spawn(move || {
                    let rank = comm.rank();
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm))).map_err(
                        |payload| {
                            probe.mark_failed();
                            RankPanic { rank, message: panic_message(payload.as_ref()) }
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread died outside catch_unwind"))
            .collect()
    });
    drop(hub);
    results
}

/// [`try_run_ranks_on`] on the local (thread) transport.
pub fn try_run_ranks<F, R>(world: usize, f: F) -> Vec<Result<R, RankPanic>>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    try_run_ranks_on(TransportKind::Local, world, f)
}

/// Spawn `world` ranks on the chosen transport, give rank `r` the rank-`r`
/// communicator, and collect the per-rank results in rank order.
///
/// # Panics
/// If any rank's closure panics, every rank's failure is reported with its
/// rank id and payload (surviving ranks abort their in-flight collectives
/// rather than hanging).
pub fn run_ranks_on<F, R>(kind: TransportKind, world: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    let results = try_run_ranks_on(kind, world, f);
    let mut out = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => failures.push(format!("rank {}: {}", p.rank, p.message)),
        }
    }
    assert!(failures.is_empty(), "rank thread panicked — {}", failures.join("; "));
    out
}

/// [`run_ranks_on`] on the local (thread) transport.
pub fn run_ranks<F, R>(world: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    run_ranks_on(TransportKind::Local, world, f)
}

/// Run `f` on a watchdog thread and panic if it exceeds `limit`: the guard
/// that turns an accidental rendezvous deadlock into a fast test failure
/// instead of a hung `cargo test`. Panics from `f` propagate unchanged.
///
/// # Thread lifecycle
///
/// On the happy path (result delivered in time) and on the propagated-panic
/// path the guard thread is **joined** before this function returns — no
/// thread outlives the call. Only the timeout path leaks the thread, by
/// construction: the worker is stuck in whatever deadlock tripped the
/// deadline, a join would hang the very watchdog that exists to avoid
/// hanging, and the process teardown reaps it. That leak is bounded to one
/// thread per tripped deadline, and a tripped deadline is already a test
/// failure.
pub fn with_deadline<R, F>(limit: Duration, f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let guard = std::thread::Builder::new()
        .name("deadline-guard".into())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("cannot spawn deadline-guard thread");
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = guard.join();
            r
        }
        Err(RecvTimeoutError::Disconnected) => match guard.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("guarded closure neither sent a result nor panicked"),
        },
        Err(RecvTimeoutError::Timeout) => {
            // The stuck worker thread is leaked; the process will reap it.
            panic!("test exceeded its {limit:?} deadline — likely a rendezvous deadlock")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    const BOTH: [TransportKind; 2] = [TransportKind::Local, TransportKind::Socket];

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 4, |c| c.all_gather(&[c.rank() as f32 * 10.0, 1.0]));
            for r in &out {
                assert_eq!(r, &[0.0, 1.0, 10.0, 1.0, 20.0, 1.0, 30.0, 1.0], "{kind}");
            }
        }
    }

    #[test]
    fn all_gather_single_rank_is_identity() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 1, |c| c.all_gather(&[1.0, 2.0]));
            assert_eq!(out[0], vec![1.0, 2.0], "{kind}");
        }
    }

    #[test]
    fn all_reduce_sums_identically_on_every_rank() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 8, |c| c.all_reduce(&[c.rank() as f32, 1.0]));
            let expect = vec![28.0, 8.0];
            for r in &out {
                assert_eq!(r, &expect, "{kind}");
            }
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_shard() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 4, |c| {
                // Every rank contributes [r; 8] (2 per shard).
                let v = vec![c.rank() as f32; 8];
                c.reduce_scatter(&v)
            });
            // Sum over ranks = 0+1+2+3 = 6 in every position.
            for r in &out {
                assert_eq!(r, &[6.0, 6.0], "{kind}");
            }
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let world = 8;
        let data: Vec<Vec<f32>> =
            (0..world).map(|r| (0..16).map(|i| (r * 31 + i) as f32 * 0.25).collect()).collect();
        let via_ar = run_ranks(world, |c| c.all_reduce(&data[c.rank()]));
        let via_rs_ag = run_ranks(world, |c| {
            let mine = c.reduce_scatter(&data[c.rank()]);
            c.all_gather(&mine)
        });
        assert_eq!(via_ar, via_rs_ag);
    }

    #[test]
    fn broadcast_distributes_roots_buffer() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 4, |c| {
                let local = vec![c.rank() as f32; 3];
                c.broadcast(2, &local)
            });
            for r in &out {
                assert_eq!(r, &[2.0, 2.0, 2.0], "{kind}");
            }
        }
    }

    #[test]
    fn coalesced_all_gather_matches_sequential_calls() {
        let world = 4;
        let mk = |r: usize| (vec![r as f32], vec![r as f32 + 0.5, r as f32 - 0.5]);
        let coalesced = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            c.all_gather_coalesced(&[&a, &b])
        });
        let sequential = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            vec![c.all_gather(&a), c.all_gather(&b)]
        });
        assert_eq!(coalesced, sequential);
    }

    #[test]
    fn coalesced_reduce_scatter_matches_sequential_calls() {
        let world = 4;
        let mk = |r: usize| {
            let a: Vec<f32> = (0..8).map(|i| (r + i) as f32).collect();
            let b: Vec<f32> = (0..4).map(|i| (r * i) as f32).collect();
            (a, b)
        };
        let coalesced = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            c.reduce_scatter_coalesced(&[&a, &b])
        });
        let sequential = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            vec![c.reduce_scatter(&a), c.reduce_scatter(&b)]
        });
        assert_eq!(coalesced, sequential);
    }

    #[test]
    fn split_partitions_ranks_by_color() {
        for kind in BOTH {
            // 8 ranks → partition groups of 2 consecutive ranks (Figure 2).
            let out = run_ranks_on(kind, 8, |mut c| {
                let color = (c.rank() / 2) as i64;
                let sub = c.split(color, c.rank() as i64);
                let gathered = sub.all_gather(&[c.rank() as f32]);
                (sub.rank(), sub.world(), gathered)
            });
            for (r, (sub_rank, sub_world, gathered)) in out.iter().enumerate() {
                assert_eq!(*sub_world, 2, "{kind}");
                assert_eq!(*sub_rank, r % 2, "{kind}");
                let base = (r / 2 * 2) as f32;
                assert_eq!(gathered, &vec![base, base + 1.0], "{kind}");
            }
        }
    }

    #[test]
    fn split_replication_groups_stride() {
        // Replication groups: ranks with equal (rank % 2), as in Figure 2.
        let out = run_ranks(8, |mut c| {
            let color = (c.rank() % 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            sub.all_gather(&[c.rank() as f32])
        });
        assert_eq!(out[0], vec![0.0, 2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 3.0, 5.0, 7.0]);
        assert_eq!(out[5], vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn split_with_negative_colors_and_keys() {
        // The metadata travels as i64 bit-halves; negative values must
        // survive both transports exactly.
        for kind in BOTH {
            let out = run_ranks_on(kind, 4, |mut c| {
                let color = if c.rank() < 2 { -7i64 } else { i64::MIN };
                let sub = c.split(color, -(c.rank() as i64));
                sub.all_gather(&[c.rank() as f32])
            });
            // Negative keys reverse the order within each pair.
            assert_eq!(out[0], vec![1.0, 0.0], "{kind}");
            assert_eq!(out[3], vec![3.0, 2.0], "{kind}");
        }
    }

    #[test]
    fn consecutive_splits_are_independent() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 4, |mut c| {
                let pairs = c.split((c.rank() / 2) as i64, 0);
                let stripes = c.split((c.rank() % 2) as i64, 0);
                (pairs.all_gather(&[c.rank() as f32]), stripes.all_gather(&[c.rank() as f32]))
            });
            assert_eq!(out[0].0, vec![0.0, 1.0], "{kind}");
            assert_eq!(out[0].1, vec![0.0, 2.0], "{kind}");
            assert_eq!(out[3].0, vec![2.0, 3.0], "{kind}");
            assert_eq!(out[3].1, vec![1.0, 3.0], "{kind}");
        }
    }

    #[test]
    fn determinism_across_runs_and_transports() {
        let run = |kind| {
            run_ranks_on(kind, 8, |c| {
                let v: Vec<f32> = (0..64).map(|i| ((c.rank() * 997 + i) as f32).sin()).collect();
                let r = c.all_reduce(&v);
                let s = c.reduce_scatter(&r);
                c.all_gather(&s)
            })
        };
        let a = run(TransportKind::Local);
        let b = run(TransportKind::Local);
        // Bitwise identical, every rank, every run.
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        for r in &a[1..] {
            assert_eq!(r, &a[0]);
        }
        // And the socket transport computes the exact same bits: the folds
        // run rank-side on both, the wire preserves bit patterns.
        let s = run(TransportKind::Socket);
        assert_eq!(a, s, "socket transport must be bit-identical to local");
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn mismatched_all_gather_lengths_panic() {
        run_ranks(2, |c| {
            let v = vec![0.0; c.rank() + 1];
            c.all_gather(&v)
        });
    }

    #[test]
    fn repeated_collectives_reuse_slots_safely() {
        for kind in BOTH {
            let out = run_ranks_on(kind, 4, |c| {
                let mut acc = 0.0;
                for round in 0..50 {
                    let v = vec![(c.rank() + round) as f32];
                    acc += c.all_reduce(&v)[0];
                }
                acc
            });
            // Each round sums to 4*round + 6.
            let expect: f32 = (0..50).map(|r| (4 * r + 6) as f32).sum();
            for r in out {
                assert_eq!(r, expect, "{kind}");
            }
        }
    }

    #[test]
    fn transport_kind_is_observable_on_the_handle() {
        for kind in BOTH {
            let seen = run_ranks_on(kind, 2, |mut c| {
                let sub = c.split(0, c.rank() as i64);
                (c.transport(), sub.transport())
            });
            for (world_kind, sub_kind) in seen {
                assert_eq!(world_kind, kind);
                assert_eq!(sub_kind, kind, "children inherit the transport");
            }
        }
    }

    // ---- failure semantics -------------------------------------------------

    #[test]
    fn killed_rank_aborts_every_surviving_collective() {
        // The acceptance-criteria scenario: rank 2 of 4 dies mid-collective;
        // every survivor's all_gather returns an abort within the configured
        // bound instead of hanging — on both transports.
        for kind in BOTH {
            with_deadline(Duration::from_secs(30), move || {
                let started = Instant::now();
                let results = try_run_ranks_on(kind, 4, |c| {
                    c.set_timeout(Duration::from_secs(5));
                    if c.rank() == 2 {
                        panic!("injected fault: rank 2 dies mid-collective");
                    }
                    c.try_all_gather(&[c.rank() as f32])
                });
                let elapsed = started.elapsed();
                assert!(
                    elapsed < Duration::from_secs(5),
                    "survivors must abort well before the rendezvous timeout, took {elapsed:?}"
                );
                for (rank, r) in results.iter().enumerate() {
                    match (rank, r) {
                        (2, Err(p)) => {
                            assert_eq!(p.rank, 2);
                            assert!(p.message.contains("injected fault"), "{}", p.message);
                        }
                        (2, Ok(_)) => panic!("rank 2 must be reported as panicked"),
                        (_, Ok(collective)) => {
                            assert_eq!(
                                collective,
                                &Err(CommError::RankFailed { rank: 2 }),
                                "survivor {rank} must observe the failure on {kind}"
                            );
                        }
                        (_, Err(p)) => panic!("survivor {rank} must not panic: {}", p.message),
                    }
                }
            });
        }
    }

    #[test]
    fn absent_rank_is_detected_by_timeout() {
        // A rank that silently walks away (no panic) is caught by the
        // rendezvous deadline instead of hanging the group — both
        // transports.
        for kind in BOTH {
            with_deadline(Duration::from_secs(30), move || {
                let results = try_run_ranks_on(kind, 3, |c| {
                    c.set_timeout(Duration::from_millis(200));
                    if c.rank() == 1 {
                        return Ok(Vec::new()); // never joins the collective
                    }
                    c.try_all_reduce(&[1.0])
                });
                for (rank, r) in results.into_iter().enumerate() {
                    let collective = r.expect("no thread panics in this scenario");
                    if rank == 1 {
                        assert_eq!(collective, Ok(Vec::new()));
                    } else {
                        assert!(
                            matches!(collective, Err(CommError::Timeout { .. })),
                            "rank {rank} must time out on {kind}, got {collective:?}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn poisoned_group_fails_fast_afterwards() {
        for kind in BOTH {
            with_deadline(Duration::from_secs(30), move || {
                let results = try_run_ranks_on(kind, 2, |c| {
                    c.set_timeout(Duration::from_secs(5));
                    if c.rank() == 0 {
                        panic!("boom");
                    }
                    let first = c.try_all_gather(&[1.0]);
                    // Once poisoned, later collectives fail immediately (no
                    // new timeout wait) with the same error.
                    let started = Instant::now();
                    let second = c.try_all_gather(&[2.0]);
                    (first, second, started.elapsed())
                });
                let (first, second, elapsed) =
                    results[1].as_ref().expect("rank 1 must not panic").clone();
                assert_eq!(first, Err(CommError::RankFailed { rank: 0 }), "{kind}");
                assert_eq!(second, Err(CommError::RankFailed { rank: 0 }), "{kind}");
                assert!(elapsed < Duration::from_secs(1), "fail-fast, not a fresh wait");
            });
        }
    }

    #[test]
    fn failure_poisons_sub_communicators() {
        // A failure on the world group must unblock ranks waiting inside a
        // *sub*-communicator created by split — both transports.
        for kind in BOTH {
            with_deadline(Duration::from_secs(30), move || {
                let results = try_run_ranks_on(kind, 4, |mut c| {
                    c.set_timeout(Duration::from_secs(5));
                    let pair = c.split((c.rank() / 2) as i64, c.rank() as i64);
                    if c.rank() == 3 {
                        panic!("dies after split");
                    }
                    // Rank 2 is in the same pair as the casualty and would
                    // hang forever without poison propagation; ranks 0/1
                    // complete.
                    pair.try_all_gather(&[c.rank() as f32])
                });
                match &results[2] {
                    Ok(Err(CommError::RankFailed { rank: 3 })) => {}
                    other => {
                        panic!("rank 2 must observe rank 3's failure on {kind}, got {other:?}")
                    }
                }
            });
        }
    }

    #[test]
    fn remove_rank_rebuilds_a_working_group() {
        for kind in BOTH {
            with_deadline(Duration::from_secs(30), move || {
                let results = try_run_ranks_on(kind, 4, |mut c| {
                    c.set_timeout(Duration::from_secs(5));
                    if c.rank() == 1 {
                        panic!("casualty");
                    }
                    // Survivors: observe the failure, then shrink and
                    // continue.
                    let err = c.try_all_reduce(&[1.0]).expect_err("must abort");
                    let failed = match err {
                        CommError::RankFailed { rank } => rank,
                        CommError::PeerDisconnected { rank } => rank,
                        other => panic!("expected a rank failure, got {other}"),
                    };
                    let shrunk = c.remove_rank(failed).expect("rebuild must succeed");
                    let gathered =
                        shrunk.try_all_gather(&[c.rank() as f32]).expect("shrunk group works");
                    (shrunk.rank(), shrunk.world(), gathered)
                });
                for (rank, r) in results.into_iter().enumerate() {
                    if rank == 1 {
                        assert!(r.is_err());
                        continue;
                    }
                    let (new_rank, new_world, gathered) = r.expect("survivors must not panic");
                    assert_eq!(new_world, 3, "{kind}");
                    assert_eq!(new_rank, rank - usize::from(rank > 1), "{kind}");
                    // Old-world ranks 0, 2, 3 in order.
                    assert_eq!(gathered, vec![0.0, 2.0, 3.0], "{kind}");
                }
            });
        }
    }

    #[test]
    fn remove_rank_world_of_two_leaves_singleton() {
        for kind in BOTH {
            with_deadline(Duration::from_secs(30), move || {
                let results = try_run_ranks_on(kind, 2, |mut c| {
                    c.set_timeout(Duration::from_millis(500));
                    if c.rank() == 0 {
                        panic!("casualty");
                    }
                    let _ = c.try_all_reduce(&[1.0]).expect_err("must abort");
                    let solo = c.remove_rank(0).expect("rebuild to singleton");
                    solo.try_all_gather(&[7.0]).expect("singleton collective is local")
                });
                assert_eq!(results[1].as_ref().expect("survivor ok"), &vec![7.0], "{kind}");
            });
        }
    }

    #[test]
    fn run_ranks_reports_rank_id_and_payload() {
        let err = std::panic::catch_unwind(|| {
            run_ranks(3, |c| {
                if c.rank() == 1 {
                    panic!("specific payload {}", 41 + 1);
                }
                c.try_barrier()
            })
        })
        .expect_err("harness must propagate the panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains("specific payload 42"), "{msg}");
    }

    #[test]
    fn with_deadline_passes_results_and_panics_through() {
        assert_eq!(with_deadline(Duration::from_secs(5), || 7usize), 7);
        let err = std::panic::catch_unwind(|| {
            with_deadline(Duration::from_secs(5), || panic!("inner failure"))
        })
        .expect_err("panic must propagate");
        assert_eq!(panic_message(err.as_ref()), "inner failure");
    }

    #[test]
    fn with_deadline_trips_on_hang() {
        let err = std::panic::catch_unwind(|| {
            with_deadline(Duration::from_millis(100), || {
                std::thread::sleep(Duration::from_secs(600));
            })
        })
        .expect_err("deadline must trip");
        assert!(panic_message(err.as_ref()).contains("deadline"), "wrong panic");
    }

    // ---- socket-transport specifics ---------------------------------------

    #[test]
    fn socket_transport_works_over_unix_domain_sockets() {
        with_deadline(Duration::from_secs(30), || {
            let path = std::env::temp_dir().join(format!("mics-hub-{}.sock", std::process::id()));
            let addr = format!("unix:{}", path.display());
            let hub = Hub::spawn(&addr).expect("bind unix hub");
            let world = 3;
            let out = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..world)
                    .map(|rank| {
                        let addr = hub.addr().to_string();
                        scope.spawn(move || {
                            let comm = connect_world(SocketWorldConfig::new(addr, rank, world))
                                .expect("connect over unix socket");
                            comm.all_gather(&[rank as f32])
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
            });
            for r in &out {
                assert_eq!(r, &[0.0, 1.0, 2.0]);
            }
        });
    }

    #[test]
    fn connect_retries_until_the_hub_appears() {
        // The worker starts before its hub: the retry policy must carry it
        // over the gap instead of failing on the first refused connection.
        with_deadline(Duration::from_secs(30), || {
            // Reserve an address, then free it so the first attempts fail.
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            drop(listener);
            let addr2 = addr.clone();
            let worker = std::thread::spawn(move || {
                let mut cfg = SocketWorldConfig::new(addr2, 0, 1);
                cfg.retry = RetryPolicy {
                    max_attempts: 100,
                    initial_backoff: Duration::from_millis(5),
                    multiplier: 1.2,
                    max_backoff: Duration::from_millis(50),
                };
                let comm = connect_world(cfg).expect("retry must bridge the startup gap");
                comm.all_gather(&[42.0])
            });
            std::thread::sleep(Duration::from_millis(300));
            let _hub = Hub::spawn(&addr).expect("bind the reserved address");
            assert_eq!(worker.join().unwrap(), vec![42.0]);
        });
    }

    #[test]
    fn connect_gives_up_after_bounded_retries() {
        // Nothing ever listens here: the policy must give up with Io, not
        // spin forever.
        let mut cfg = SocketWorldConfig::new("127.0.0.1:9", 0, 2); // discard port
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 1.0,
            max_backoff: Duration::from_millis(1),
        };
        match connect_world(cfg) {
            Err(CommError::Io { .. }) => {}
            other => panic!("expected Io after bounded retries, got {other:?}"),
        }
    }

    #[test]
    fn silent_peer_is_expired_by_hub_heartbeat() {
        // A peer that connects and then wedges (alive, but never pings) is
        // expired by the hub's heartbeat grace; the healthy rank's
        // collective aborts with PeerDisconnected well before its own
        // (much longer) rendezvous deadline.
        with_deadline(Duration::from_secs(30), || {
            let hub =
                Hub::spawn_with_grace("127.0.0.1:0", Duration::from_millis(400)).expect("bind hub");
            let addr = hub.addr().to_string();
            // The wedged peer: says hello, then goes silent.
            let wedged = transport::socket::Stream::connect(&addr).expect("connect raw");
            {
                let mut w = std::io::BufWriter::new(wedged.try_clone().unwrap());
                transport::socket::write_frame(
                    &mut w,
                    &transport::socket::Frame::Hello { rank: 1, world: 2 },
                )
                .expect("hello");
            }
            let comm = connect_world(SocketWorldConfig::new(addr, 0, 2)).expect("connect rank 0");
            comm.set_timeout(Duration::from_secs(20));
            let started = Instant::now();
            let got = comm.try_all_gather(&[0.0]);
            let elapsed = started.elapsed();
            assert_eq!(got, Err(CommError::PeerDisconnected { rank: 1 }));
            assert!(
                elapsed < Duration::from_secs(5),
                "heartbeat must beat the 20s logical deadline, took {elapsed:?}"
            );
            drop(wedged);
        });
    }

    #[test]
    fn clean_goodbye_does_not_poison_survivors() {
        // A rank that disconnects *cleanly* (dropping the handle sends a
        // goodbye) must not trip the teardown detector on its peers.
        with_deadline(Duration::from_secs(30), || {
            let (hub, comms) = transport::socket::create_socket_world(2);
            let mut it = comms.into_iter();
            let c0 = it.next().unwrap();
            let c1 = it.next().unwrap();
            let t = std::thread::spawn(move || c1.all_gather(&[1.0]));
            assert_eq!(c0.all_gather(&[0.0]), vec![0.0, 1.0]);
            t.join().unwrap(); // c1 dropped at thread end → clean goodbye
            std::thread::sleep(Duration::from_millis(300));
            assert!(c0.failure().is_none(), "clean goodbye must not poison");
            drop(hub);
        });
    }
}
