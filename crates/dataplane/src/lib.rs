//! An in-process, shared-memory data plane that stands in for NCCL.
//!
//! Each simulated device is an OS thread holding a [`Communicator`] handle.
//! Collectives are rendezvous operations over real `f32` buffers, so the
//! *data-layout contracts* of the paper's algorithms — most importantly the
//! 3-stage hierarchical all-gather of §3.3 and the coalesced communication
//! APIs of §4 — are executed and tested for real, not merely cost-modelled.
//!
//! Determinism: reductions fold contributions in fixed rank order, so every
//! rank computes bit-identical results, and repeated runs are bit-identical
//! regardless of thread scheduling. This is what lets the fidelity
//! experiment (paper §5.4, Figure 15) compare loss curves between
//! synchronization schedules down to floating-point equality.
//!
//! # Example
//!
//! ```
//! use mics_dataplane::run_ranks;
//!
//! let results = run_ranks(4, |comm| {
//!     let contribution = vec![comm.rank() as f32];
//!     comm.all_gather(&contribution)
//! });
//! for r in &results {
//!     assert_eq!(r, &[0.0, 1.0, 2.0, 3.0]);
//! }
//! ```

#![warn(missing_docs)]

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

pub mod hierarchical;

pub use hierarchical::{
    hierarchical_all_gather, hierarchical_reduce_scatter, naive_two_stage_all_gather,
};

/// Sense-reversing rendezvous barrier.
#[derive(Debug)]
struct Barrier {
    lock: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl Barrier {
    fn new() -> Self {
        Barrier { lock: Mutex::new(BarrierState { arrived: 0, generation: 0 }), cv: Condvar::new() }
    }

    fn wait(&self, world: usize) {
        let mut st = self.lock.lock();
        st.arrived += 1;
        if st.arrived == world {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
        } else {
            let gen = st.generation;
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
        }
    }
}

/// Shared state of one communicator group.
#[derive(Debug)]
struct Inner {
    world: usize,
    barrier: Barrier,
    /// Single-buffer deposit slots, one per rank.
    slots: Mutex<Vec<Option<Vec<f32>>>>,
    /// Multi-buffer deposit slots for the coalesced APIs.
    multi_slots: Mutex<Vec<Vec<Vec<f32>>>>,
    /// Metadata slots used by `split`.
    meta: Mutex<Vec<Option<(i64, i64)>>>,
    /// Sub-communicators created by `split`, keyed by (call index, color).
    children: Mutex<HashMap<(u64, i64), Arc<Inner>>>,
}

impl Inner {
    fn new(world: usize) -> Self {
        Inner {
            world,
            barrier: Barrier::new(),
            slots: Mutex::new(vec![None; world]),
            multi_slots: Mutex::new(vec![Vec::new(); world]),
            meta: Mutex::new(vec![None; world]),
            children: Mutex::new(HashMap::new()),
        }
    }
}

/// A rank's handle to a communicator group (analogous to an MPI
/// communicator / NCCL communicator).
///
/// All collective methods must be called by **every** rank of the group, in
/// the same program order — the usual SPMD contract. Violations deadlock
/// (caught by the test harness timeouts) or panic on shape mismatch.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    inner: Arc<Inner>,
    /// Number of `split` calls made so far (local mirror of a value that is
    /// identical across ranks by the SPMD contract).
    split_calls: u64,
}

impl Communicator {
    /// Create the world group: one handle per rank.
    pub fn create_world(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world must be non-empty");
        let inner = Arc::new(Inner::new(world));
        (0..world)
            .map(|rank| Communicator { rank, inner: Arc::clone(&inner), split_calls: 0 })
            .collect()
    }

    /// This handle's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world(&self) -> usize {
        self.inner.world
    }

    /// Block until every rank of the group arrives.
    pub fn barrier(&self) {
        self.inner.barrier.wait(self.inner.world);
    }

    fn deposit(&self, data: Vec<f32>) {
        self.inner.slots.lock()[self.rank] = Some(data);
    }

    /// Gather equal-length contributions from all ranks, concatenated in
    /// rank order. Returns `world × len` elements on every rank.
    pub fn all_gather(&self, contribution: &[f32]) -> Vec<f32> {
        self.deposit(contribution.to_vec());
        self.barrier();
        let out = {
            let slots = self.inner.slots.lock();
            let len0 = slots[0].as_ref().expect("missing contribution").len();
            let mut out = Vec::with_capacity(len0 * self.inner.world);
            for (r, s) in slots.iter().enumerate() {
                let s = s.as_ref().expect("missing contribution");
                assert_eq!(s.len(), len0, "rank {r} contributed a different length");
                out.extend_from_slice(s);
            }
            out
        };
        self.barrier();
        out
    }

    /// Reduce (sum) equal-length contributions of `world × shard` elements
    /// and scatter: rank `r` receives the reduced shard `r`.
    ///
    /// The fold is in fixed rank order, so results are deterministic and
    /// identical across ranks.
    pub fn reduce_scatter(&self, contribution: &[f32]) -> Vec<f32> {
        let world = self.inner.world;
        assert!(
            contribution.len().is_multiple_of(world),
            "reduce_scatter input length {} not divisible by world {world}",
            contribution.len()
        );
        let shard = contribution.len() / world;
        self.deposit(contribution.to_vec());
        self.barrier();
        let out = {
            let slots = self.inner.slots.lock();
            let mut out = vec![0.0f32; shard];
            let base = self.rank * shard;
            for s in slots.iter() {
                let s = s.as_ref().expect("missing contribution");
                assert_eq!(s.len(), contribution.len(), "mismatched lengths");
                for i in 0..shard {
                    out[i] += s[base + i];
                }
            }
            out
        };
        self.barrier();
        out
    }

    /// Sum equal-length contributions across all ranks; every rank receives
    /// the full reduced buffer (deterministic rank-order fold).
    pub fn all_reduce(&self, contribution: &[f32]) -> Vec<f32> {
        self.deposit(contribution.to_vec());
        self.barrier();
        let out = {
            let slots = self.inner.slots.lock();
            let mut out = vec![0.0f32; contribution.len()];
            for s in slots.iter() {
                let s = s.as_ref().expect("missing contribution");
                assert_eq!(s.len(), out.len(), "mismatched lengths");
                for (o, x) in out.iter_mut().zip(s.iter()) {
                    *o += *x;
                }
            }
            out
        };
        self.barrier();
        out
    }

    /// Broadcast `data` from `root` to every rank. Non-root ranks pass their
    /// (ignored) local buffer for shape symmetry.
    pub fn broadcast(&self, root: usize, data: &[f32]) -> Vec<f32> {
        assert!(root < self.inner.world, "root out of range");
        if self.rank == root {
            self.deposit(data.to_vec());
        }
        self.barrier();
        let out = {
            let slots = self.inner.slots.lock();
            slots[root].as_ref().expect("root did not deposit").clone()
        };
        self.barrier();
        out
    }

    /// The `all_gather_coalesced` API of paper §4: gather a *batch* of
    /// buffers with one rendezvous instead of one per buffer, avoiding the
    /// per-call overhead and interleaving copies of the naive approach.
    /// Entry `i` of the result is the rank-order concatenation of every
    /// rank's `i`-th buffer.
    pub fn all_gather_coalesced(&self, parts: &[&[f32]]) -> Vec<Vec<f32>> {
        self.inner.multi_slots.lock()[self.rank] = parts.iter().map(|p| p.to_vec()).collect();
        self.barrier();
        let out = {
            let slots = self.inner.multi_slots.lock();
            let nparts = slots[0].len();
            let mut out = Vec::with_capacity(nparts);
            for part in 0..nparts {
                let len0 = slots[0][part].len();
                let mut buf = Vec::with_capacity(len0 * self.inner.world);
                for (r, s) in slots.iter().enumerate() {
                    assert_eq!(
                        s.len(),
                        nparts,
                        "rank {r} batched a different number of buffers"
                    );
                    assert_eq!(s[part].len(), len0, "rank {r} part {part} length mismatch");
                    buf.extend_from_slice(&s[part]);
                }
                out.push(buf);
            }
            out
        };
        self.barrier();
        out
    }

    /// The `reduce_scatter_coalesced` API of paper §4: batch of independent
    /// reduce-scatters with a single rendezvous. Entry `i` of the result is
    /// this rank's reduced shard of batch element `i`.
    pub fn reduce_scatter_coalesced(&self, parts: &[&[f32]]) -> Vec<Vec<f32>> {
        let world = self.inner.world;
        for (i, p) in parts.iter().enumerate() {
            assert!(
                p.len() % world == 0,
                "reduce_scatter_coalesced part {i} length {} not divisible by {world}",
                p.len()
            );
        }
        self.inner.multi_slots.lock()[self.rank] = parts.iter().map(|p| p.to_vec()).collect();
        self.barrier();
        let out = {
            let slots = self.inner.multi_slots.lock();
            let nparts = slots[0].len();
            let mut out = Vec::with_capacity(nparts);
            for part in 0..nparts {
                let full = slots[0][part].len();
                let shard = full / world;
                let base = self.rank * shard;
                let mut buf = vec![0.0f32; shard];
                for s in slots.iter() {
                    assert_eq!(s[part].len(), full, "part {part} length mismatch");
                    for i in 0..shard {
                        buf[i] += s[part][base + i];
                    }
                }
                out.push(buf);
            }
            out
        };
        self.barrier();
        out
    }

    /// Split the group into disjoint sub-groups, MPI `comm_split` style:
    /// ranks passing the same `color` join one sub-group; `key` orders ranks
    /// within it (ties broken by parent rank). Every rank of the parent must
    /// call `split` collectively.
    ///
    /// ```
    /// use mics_dataplane::run_ranks;
    /// // Figure 2: partition groups of 2 consecutive ranks.
    /// let out = run_ranks(4, |mut comm| {
    ///     let group = comm.split((comm.rank() / 2) as i64, comm.rank() as i64);
    ///     group.all_gather(&[comm.rank() as f32])
    /// });
    /// assert_eq!(out[0], vec![0.0, 1.0]);
    /// assert_eq!(out[3], vec![2.0, 3.0]);
    /// ```
    pub fn split(&mut self, color: i64, key: i64) -> Communicator {
        let call = self.split_calls;
        self.split_calls += 1;
        // Exchange (color, key) via the metadata slots.
        self.inner.meta.lock()[self.rank] = Some((color, key));
        self.barrier();
        let (new_rank, group_size) = {
            let meta = self.inner.meta.lock();
            let mut members: Vec<(i64, usize)> = meta
                .iter()
                .enumerate()
                .filter_map(|(r, m)| {
                    let (c, k) = m.expect("missing split metadata");
                    (c == color).then_some((k, r))
                })
                .collect();
            members.sort_unstable();
            let new_rank =
                members.iter().position(|&(_, r)| r == self.rank).expect("rank not in own group");
            (new_rank, members.len())
        };
        // First member to arrive creates the child group's shared state.
        let child_inner = {
            let mut children = self.inner.children.lock();
            Arc::clone(
                children
                    .entry((call, color))
                    .or_insert_with(|| Arc::new(Inner::new(group_size))),
            )
        };
        // Everyone must have fetched their child before meta is reused.
        self.barrier();
        Communicator { rank: new_rank, inner: child_inner, split_calls: 0 }
    }
}

/// Spawn `world` scoped threads, give thread `r` the rank-`r` communicator,
/// and collect the per-rank results in rank order.
pub fn run_ranks<F, R>(world: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    let comms = Communicator::create_world(world);
    let mut results: Vec<Option<R>> = (0..world).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for comm in comms {
            let f = &f;
            handles.push(scope.spawn(move || f(comm)));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank thread panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let out = run_ranks(4, |c| c.all_gather(&[c.rank() as f32 * 10.0, 1.0]));
        for r in &out {
            assert_eq!(r, &[0.0, 1.0, 10.0, 1.0, 20.0, 1.0, 30.0, 1.0]);
        }
    }

    #[test]
    fn all_gather_single_rank_is_identity() {
        let out = run_ranks(1, |c| c.all_gather(&[1.0, 2.0]));
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn all_reduce_sums_identically_on_every_rank() {
        let out = run_ranks(8, |c| c.all_reduce(&[c.rank() as f32, 1.0]));
        let expect = vec![28.0, 8.0];
        for r in &out {
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_shard() {
        let out = run_ranks(4, |c| {
            // Every rank contributes [r, r, r, r, r, r, r, r] (2 per shard).
            let v = vec![c.rank() as f32; 8];
            c.reduce_scatter(&v)
        });
        // Sum over ranks = 0+1+2+3 = 6 in every position.
        for r in &out {
            assert_eq!(r, &[6.0, 6.0]);
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let world = 8;
        let data: Vec<Vec<f32>> =
            (0..world).map(|r| (0..16).map(|i| (r * 31 + i) as f32 * 0.25).collect()).collect();
        let via_ar = run_ranks(world, |c| c.all_reduce(&data[c.rank()]));
        let via_rs_ag = run_ranks(world, |c| {
            let mine = c.reduce_scatter(&data[c.rank()]);
            c.all_gather(&mine)
        });
        assert_eq!(via_ar, via_rs_ag);
    }

    #[test]
    fn broadcast_distributes_roots_buffer() {
        let out = run_ranks(4, |c| {
            let local = vec![c.rank() as f32; 3];
            c.broadcast(2, &local)
        });
        for r in &out {
            assert_eq!(r, &[2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn coalesced_all_gather_matches_sequential_calls() {
        let world = 4;
        let mk = |r: usize| (vec![r as f32], vec![r as f32 + 0.5, r as f32 - 0.5]);
        let coalesced = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            c.all_gather_coalesced(&[&a, &b])
        });
        let sequential = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            vec![c.all_gather(&a), c.all_gather(&b)]
        });
        assert_eq!(coalesced, sequential);
    }

    #[test]
    fn coalesced_reduce_scatter_matches_sequential_calls() {
        let world = 4;
        let mk = |r: usize| {
            let a: Vec<f32> = (0..8).map(|i| (r + i) as f32).collect();
            let b: Vec<f32> = (0..4).map(|i| (r * i) as f32).collect();
            (a, b)
        };
        let coalesced = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            c.reduce_scatter_coalesced(&[&a, &b])
        });
        let sequential = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            vec![c.reduce_scatter(&a), c.reduce_scatter(&b)]
        });
        assert_eq!(coalesced, sequential);
    }

    #[test]
    fn split_partitions_ranks_by_color() {
        // 8 ranks → partition groups of 2 consecutive ranks (Figure 2).
        let out = run_ranks(8, |mut c| {
            let color = (c.rank() / 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            let gathered = sub.all_gather(&[c.rank() as f32]);
            (sub.rank(), sub.world(), gathered)
        });
        for (r, (sub_rank, sub_world, gathered)) in out.iter().enumerate() {
            assert_eq!(*sub_world, 2);
            assert_eq!(*sub_rank, r % 2);
            let base = (r / 2 * 2) as f32;
            assert_eq!(gathered, &vec![base, base + 1.0]);
        }
    }

    #[test]
    fn split_replication_groups_stride() {
        // Replication groups: ranks with equal (rank % 2), as in Figure 2.
        let out = run_ranks(8, |mut c| {
            let color = (c.rank() % 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            sub.all_gather(&[c.rank() as f32])
        });
        assert_eq!(out[0], vec![0.0, 2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 3.0, 5.0, 7.0]);
        assert_eq!(out[5], vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn consecutive_splits_are_independent() {
        let out = run_ranks(4, |mut c| {
            let pairs = c.split((c.rank() / 2) as i64, 0);
            let stripes = c.split((c.rank() % 2) as i64, 0);
            (pairs.all_gather(&[c.rank() as f32]), stripes.all_gather(&[c.rank() as f32]))
        });
        assert_eq!(out[0].0, vec![0.0, 1.0]);
        assert_eq!(out[0].1, vec![0.0, 2.0]);
        assert_eq!(out[3].0, vec![2.0, 3.0]);
        assert_eq!(out[3].1, vec![1.0, 3.0]);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            run_ranks(8, |c| {
                let v: Vec<f32> = (0..64).map(|i| ((c.rank() * 997 + i) as f32).sin()).collect();
                let r = c.all_reduce(&v);
                let s = c.reduce_scatter(&r);
                c.all_gather(&s)
            })
        };
        let a = run();
        let b = run();
        // Bitwise identical, every rank, every run.
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        for r in &a[1..] {
            assert_eq!(r, &a[0]);
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn mismatched_all_gather_lengths_panic() {
        run_ranks(2, |c| {
            let v = vec![0.0; c.rank() + 1];
            c.all_gather(&v)
        });
    }

    #[test]
    fn repeated_collectives_reuse_slots_safely() {
        let out = run_ranks(4, |c| {
            let mut acc = 0.0;
            for round in 0..50 {
                let v = vec![(c.rank() + round) as f32];
                acc += c.all_reduce(&v)[0];
            }
            acc
        });
        // Each round sums to 4*round + 6.
        let expect: f32 = (0..50).map(|r| (4 * r + 6) as f32).sum();
        for r in out {
            assert_eq!(r, expect);
        }
    }
}
