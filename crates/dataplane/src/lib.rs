//! An in-process, shared-memory data plane that stands in for NCCL.
//!
//! Each simulated device is an OS thread holding a [`Communicator`] handle.
//! Collectives are rendezvous operations over real `f32` buffers, so the
//! *data-layout contracts* of the paper's algorithms — most importantly the
//! 3-stage hierarchical all-gather of §3.3 and the coalesced communication
//! APIs of §4 — are executed and tested for real, not merely cost-modelled.
//!
//! Determinism: reductions fold contributions in fixed rank order, so every
//! rank computes bit-identical results, and repeated runs are bit-identical
//! regardless of thread scheduling. This is what lets the fidelity
//! experiment (paper §5.4, Figure 15) compare loss curves between
//! synchronization schedules down to floating-point equality.
//!
//! # Failure semantics
//!
//! MiCS targets the public cloud, where ranks die mid-run. A rendezvous
//! collective must therefore be *abortable*: when a rank fails, every peer's
//! in-flight collective returns [`CommError::RankFailed`] within a bounded
//! time instead of hanging. Two detection paths feed the same poison state:
//!
//! - **Explicit failure:** a rank thread that panics (see [`try_run_ranks`])
//!   marks its communicator — and, transitively, every sub-communicator
//!   created from it — as failed. Peers blocked in a rendezvous are woken
//!   immediately.
//! - **Timeout:** every rendezvous wait carries a deadline (configured with
//!   [`Communicator::set_timeout`]). A rank that never shows up is detected
//!   when the wait expires, which breaks the group's current epoch and
//!   returns [`CommError::Timeout`] to all waiters.
//!
//! A poisoned group never recovers; survivors rebuild a smaller group with
//! [`Communicator::remove_rank`] and continue there (the data plane analogue
//! of re-initializing NCCL communicators after shrink).
//!
//! The `try_*` collectives surface failures as `Result`; the plain methods
//! keep the original infallible signatures and panic on abort, which in a
//! [`run_ranks`] harness cascades into an orderly whole-world teardown.
//!
//! # Example
//!
//! ```
//! use mics_dataplane::run_ranks;
//!
//! let results = run_ranks(4, |comm| {
//!     let contribution = vec![comm.rank() as f32];
//!     comm.all_gather(&contribution)
//! });
//! for r in &results {
//!     assert_eq!(r, &[0.0, 1.0, 2.0, 3.0]);
//! }
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub mod hierarchical;
pub mod nonblocking;
pub mod quantized;

pub use hierarchical::{
    hierarchical_all_gather, hierarchical_reduce_scatter, naive_two_stage_all_gather,
    try_hierarchical_all_gather, try_hierarchical_reduce_scatter,
};
pub use nonblocking::{
    start_hierarchical_all_gather, start_hierarchical_reduce_scatter, CollectiveHandle,
    ASYNC_QUEUE_DEPTH,
};
pub use quantized::{
    quantized_all_gather, quantized_all_reduce, quantized_hierarchical_all_gather,
    quantized_hierarchical_reduce_scatter, quantized_reduce_scatter,
};

/// Rendezvous waits detect an absent rank after this long unless
/// [`Communicator::set_timeout`] overrides it. Generous compared to the
/// microseconds a healthy rendezvous takes, so only a genuinely dead or
/// deadlocked peer trips it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a collective aborted instead of completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// A peer was reported dead (panicked rank thread). The id is the rank
    /// as known to the communicator where the failure was first observed —
    /// for failures propagated from a parent group, its world rank.
    RankFailed {
        /// Failed rank id.
        rank: usize,
    },
    /// A peer never arrived at the rendezvous within the configured bound.
    Timeout {
        /// How long this rank waited before giving up.
        waited: Duration,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout { waited } => {
                write!(f, "rendezvous timed out after {waited:?}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Lock that survives a peer thread having panicked while holding the
/// guard: the protected state is plain data (deposit slots, counters) that
/// is always left consistent at the end of each statement, so the std
/// poison flag carries no information the barrier's own poison state
/// doesn't already capture.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Sense-reversing rendezvous barrier with failure detection.
///
/// `generation` is the failure-detection epoch: it advances only when all
/// `world` ranks arrive. A failure (explicit or timeout) permanently breaks
/// the epoch: `broken` is set, every current waiter is woken, and every
/// later wait fails fast.
#[derive(Debug)]
struct Barrier {
    lock: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    broken: Option<CommError>,
}

impl Barrier {
    fn new() -> Self {
        Barrier {
            lock: Mutex::new(BarrierState { arrived: 0, generation: 0, broken: None }),
            cv: Condvar::new(),
        }
    }

    fn wait(&self, world: usize, timeout: Duration) -> Result<(), CommError> {
        let mut st = lock(&self.lock);
        if let Some(e) = st.broken {
            return Err(e);
        }
        st.arrived += 1;
        if st.arrived == world {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        let deadline = Instant::now() + timeout;
        while st.generation == gen {
            if let Some(e) = st.broken {
                return Err(e);
            }
            let now = Instant::now();
            if now >= deadline {
                let e = CommError::Timeout { waited: timeout };
                st.broken = Some(e);
                self.cv.notify_all();
                return Err(e);
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
        }
        Ok(())
    }

    fn poison(&self, error: CommError) {
        let mut st = lock(&self.lock);
        if st.broken.is_none() {
            st.broken = Some(error);
        }
        self.cv.notify_all();
    }

    fn broken(&self) -> Option<CommError> {
        lock(&self.lock).broken
    }
}

/// Shared state of one communicator group.
#[derive(Debug)]
struct Inner {
    world: usize,
    barrier: Barrier,
    /// Single-buffer deposit slots, one per rank.
    slots: Mutex<Vec<Option<Vec<f32>>>>,
    /// Multi-buffer deposit slots for the coalesced APIs.
    multi_slots: Mutex<Vec<Vec<Vec<f32>>>>,
    /// Metadata slots used by `split`.
    meta: Mutex<Vec<Option<(i64, i64)>>>,
    /// Sub-communicators created by `split`, keyed by (call index, color).
    children: Mutex<HashMap<(u64, i64), Arc<Inner>>>,
    /// Shrunk groups created by `remove_rank`, keyed by (rebuild epoch,
    /// removed rank).
    rebuilds: Mutex<HashMap<(u64, usize), Arc<Inner>>>,
    /// Rendezvous deadline in nanoseconds, shared by the whole group.
    timeout_nanos: AtomicU64,
}

impl Inner {
    fn new(world: usize, timeout: Duration) -> Self {
        Inner {
            world,
            barrier: Barrier::new(),
            slots: Mutex::new(vec![None; world]),
            multi_slots: Mutex::new(vec![Vec::new(); world]),
            meta: Mutex::new(vec![None; world]),
            children: Mutex::new(HashMap::new()),
            rebuilds: Mutex::new(HashMap::new()),
            timeout_nanos: AtomicU64::new(timeout.as_nanos() as u64),
        }
    }

    fn timeout(&self) -> Duration {
        Duration::from_nanos(self.timeout_nanos.load(Ordering::Relaxed))
    }

    /// Poison this group and every descendant (splits and rebuilds) so no
    /// surviving rank can block on a rendezvous the failed rank will never
    /// join. `rank` is this group's id for the failed rank; descendants
    /// report the same id (their members may not even contain it — the
    /// poison is conservative by design).
    fn mark_failed(&self, rank: usize) {
        self.barrier.poison(CommError::RankFailed { rank });
        for child in lock(&self.children).values() {
            child.mark_failed(rank);
        }
        for rebuilt in lock(&self.rebuilds).values() {
            rebuilt.mark_failed(rank);
        }
    }
}

/// A rank's handle to a communicator group (analogous to an MPI
/// communicator / NCCL communicator).
///
/// All collective methods must be called by **every** rank of the group, in
/// the same program order — the usual SPMD contract. Violations of the
/// contract surface as [`CommError::Timeout`] (a rank at a different
/// rendezvous never arrives at this one) or panic on shape mismatch.
#[derive(Debug)]
pub struct Communicator {
    rank: usize,
    inner: Arc<Inner>,
    /// Number of `split` calls made so far (local mirror of a value that is
    /// identical across ranks by the SPMD contract).
    split_calls: u64,
    /// Number of `remove_rank` calls made so far (same SPMD mirror).
    rebuild_epoch: u64,
    /// Lazily-spawned progress thread for the non-blocking collectives
    /// (see [`nonblocking`]); `None` until the first `start_*` call.
    engine: Option<nonblocking::Engine>,
}

impl Communicator {
    /// A second handle to the same (rank, group) — the progress thread's
    /// identity in the [`nonblocking`] engine. Never exposed: two handles
    /// issuing collectives concurrently would corrupt the rendezvous, so
    /// the engine is the only caller and serializes all use.
    pub(crate) fn sibling(of: &Communicator) -> Communicator {
        Communicator {
            rank: of.rank,
            inner: Arc::clone(&of.inner),
            split_calls: 0,
            rebuild_epoch: 0,
            engine: None,
        }
    }
    /// Create the world group: one handle per rank.
    pub fn create_world(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world must be non-empty");
        let inner = Arc::new(Inner::new(world, DEFAULT_TIMEOUT));
        (0..world)
            .map(|rank| Communicator {
                rank,
                inner: Arc::clone(&inner),
                split_calls: 0,
                rebuild_epoch: 0,
                engine: None,
            })
            .collect()
    }

    /// This handle's rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn world(&self) -> usize {
        self.inner.world
    }

    /// Set the failure-detection bound for rendezvous waits, group-wide
    /// (shared state; any rank's call applies to all, and sub-groups created
    /// afterwards inherit it).
    pub fn set_timeout(&self, timeout: Duration) {
        self.inner.timeout_nanos.store(timeout.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The failure that poisoned this group, if any — without blocking.
    pub fn failure(&self) -> Option<CommError> {
        self.inner.barrier.broken()
    }

    /// Report this rank as failed to the whole group, waking every peer
    /// blocked in a rendezvous. Called automatically by [`try_run_ranks`]
    /// when a rank thread panics.
    pub fn mark_failed(&self) {
        self.inner.mark_failed(self.rank);
    }

    /// Block until every rank of the group arrives, or the group fails.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.inner.barrier.wait(self.inner.world, self.inner.timeout())
    }

    /// Block until every rank of the group arrives.
    ///
    /// # Panics
    /// Panics if the group fails while waiting (see [`Self::try_barrier`]).
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("collective aborted: {e}"));
    }

    fn deposit(&self, data: Vec<f32>) {
        lock(&self.inner.slots)[self.rank] = Some(data);
    }

    /// Fallible [`Self::all_gather`]: aborts with the failure instead of
    /// completing when a peer dies or never arrives.
    pub fn try_all_gather(&self, contribution: &[f32]) -> Result<Vec<f32>, CommError> {
        let mut out = Vec::new();
        self.try_all_gather_into(contribution, &mut out)?;
        Ok(out)
    }

    /// [`Self::try_all_gather`] into a caller-provided buffer: `out` is
    /// cleared and filled with the `world × len` gathered elements. The
    /// buffer's capacity is reused across calls, which is what lets a hot
    /// training loop double-buffer its parameter gathers with zero
    /// steady-state allocation.
    pub fn try_all_gather_into(
        &self,
        contribution: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), CommError> {
        self.deposit(contribution.to_vec());
        self.try_barrier()?;
        {
            let slots = lock(&self.inner.slots);
            let len0 = slots[0].as_ref().expect("missing contribution").len();
            out.clear();
            out.reserve(len0 * self.inner.world);
            for (r, s) in slots.iter().enumerate() {
                let s = s.as_ref().expect("missing contribution");
                assert_eq!(s.len(), len0, "rank {r} contributed a different length");
                out.extend_from_slice(s);
            }
        }
        self.try_barrier()?;
        Ok(())
    }

    /// Gather equal-length contributions from all ranks, concatenated in
    /// rank order. Returns `world × len` elements on every rank.
    pub fn all_gather(&self, contribution: &[f32]) -> Vec<f32> {
        self.try_all_gather(contribution).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::reduce_scatter`].
    pub fn try_reduce_scatter(&self, contribution: &[f32]) -> Result<Vec<f32>, CommError> {
        let world = self.inner.world;
        assert!(
            contribution.len().is_multiple_of(world),
            "reduce_scatter input length {} not divisible by world {world}",
            contribution.len()
        );
        let shard = contribution.len() / world;
        self.deposit(contribution.to_vec());
        self.try_barrier()?;
        let out = {
            let slots = lock(&self.inner.slots);
            let mut out = vec![0.0f32; shard];
            let base = self.rank * shard;
            for s in slots.iter() {
                let s = s.as_ref().expect("missing contribution");
                assert_eq!(s.len(), contribution.len(), "mismatched lengths");
                for i in 0..shard {
                    out[i] += s[base + i];
                }
            }
            out
        };
        self.try_barrier()?;
        Ok(out)
    }

    /// Reduce (sum) equal-length contributions of `world × shard` elements
    /// and scatter: rank `r` receives the reduced shard `r`.
    ///
    /// The fold is in fixed rank order, so results are deterministic and
    /// identical across ranks.
    pub fn reduce_scatter(&self, contribution: &[f32]) -> Vec<f32> {
        self.try_reduce_scatter(contribution).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::all_reduce`].
    pub fn try_all_reduce(&self, contribution: &[f32]) -> Result<Vec<f32>, CommError> {
        self.deposit(contribution.to_vec());
        self.try_barrier()?;
        let out = {
            let slots = lock(&self.inner.slots);
            let mut out = vec![0.0f32; contribution.len()];
            for s in slots.iter() {
                let s = s.as_ref().expect("missing contribution");
                assert_eq!(s.len(), out.len(), "mismatched lengths");
                for (o, x) in out.iter_mut().zip(s.iter()) {
                    *o += *x;
                }
            }
            out
        };
        self.try_barrier()?;
        Ok(out)
    }

    /// Sum equal-length contributions across all ranks; every rank receives
    /// the full reduced buffer (deterministic rank-order fold).
    pub fn all_reduce(&self, contribution: &[f32]) -> Vec<f32> {
        self.try_all_reduce(contribution).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::broadcast`].
    pub fn try_broadcast(&self, root: usize, data: &[f32]) -> Result<Vec<f32>, CommError> {
        assert!(root < self.inner.world, "root out of range");
        if self.rank == root {
            self.deposit(data.to_vec());
        }
        self.try_barrier()?;
        let out = {
            let slots = lock(&self.inner.slots);
            slots[root].as_ref().expect("root did not deposit").clone()
        };
        self.try_barrier()?;
        Ok(out)
    }

    /// Broadcast `data` from `root` to every rank. Non-root ranks pass their
    /// (ignored) local buffer for shape symmetry.
    pub fn broadcast(&self, root: usize, data: &[f32]) -> Vec<f32> {
        self.try_broadcast(root, data).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::all_gather_coalesced`].
    pub fn try_all_gather_coalesced(&self, parts: &[&[f32]]) -> Result<Vec<Vec<f32>>, CommError> {
        lock(&self.inner.multi_slots)[self.rank] = parts.iter().map(|p| p.to_vec()).collect();
        self.try_barrier()?;
        let out = {
            let slots = lock(&self.inner.multi_slots);
            let nparts = slots[0].len();
            let mut out = Vec::with_capacity(nparts);
            for part in 0..nparts {
                let len0 = slots[0][part].len();
                let mut buf = Vec::with_capacity(len0 * self.inner.world);
                for (r, s) in slots.iter().enumerate() {
                    assert_eq!(s.len(), nparts, "rank {r} batched a different number of buffers");
                    assert_eq!(s[part].len(), len0, "rank {r} part {part} length mismatch");
                    buf.extend_from_slice(&s[part]);
                }
                out.push(buf);
            }
            out
        };
        self.try_barrier()?;
        Ok(out)
    }

    /// The `all_gather_coalesced` API of paper §4: gather a *batch* of
    /// buffers with one rendezvous instead of one per buffer, avoiding the
    /// per-call overhead and interleaving copies of the naive approach.
    /// Entry `i` of the result is the rank-order concatenation of every
    /// rank's `i`-th buffer.
    pub fn all_gather_coalesced(&self, parts: &[&[f32]]) -> Vec<Vec<f32>> {
        self.try_all_gather_coalesced(parts).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::reduce_scatter_coalesced`].
    pub fn try_reduce_scatter_coalesced(
        &self,
        parts: &[&[f32]],
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let world = self.inner.world;
        for (i, p) in parts.iter().enumerate() {
            assert!(
                p.len().is_multiple_of(world),
                "reduce_scatter_coalesced part {i} length {} not divisible by {world}",
                p.len()
            );
        }
        lock(&self.inner.multi_slots)[self.rank] = parts.iter().map(|p| p.to_vec()).collect();
        self.try_barrier()?;
        let out = {
            let slots = lock(&self.inner.multi_slots);
            let nparts = slots[0].len();
            let mut out = Vec::with_capacity(nparts);
            for part in 0..nparts {
                let full = slots[0][part].len();
                let shard = full / world;
                let base = self.rank * shard;
                let mut buf = vec![0.0f32; shard];
                for s in slots.iter() {
                    assert_eq!(s[part].len(), full, "part {part} length mismatch");
                    for i in 0..shard {
                        buf[i] += s[part][base + i];
                    }
                }
                out.push(buf);
            }
            out
        };
        self.try_barrier()?;
        Ok(out)
    }

    /// The `reduce_scatter_coalesced` API of paper §4: batch of independent
    /// reduce-scatters with a single rendezvous. Entry `i` of the result is
    /// this rank's reduced shard of batch element `i`.
    pub fn reduce_scatter_coalesced(&self, parts: &[&[f32]]) -> Vec<Vec<f32>> {
        self.try_reduce_scatter_coalesced(parts)
            .unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Fallible [`Self::split`].
    pub fn try_split(&mut self, color: i64, key: i64) -> Result<Communicator, CommError> {
        let call = self.split_calls;
        self.split_calls += 1;
        // Exchange (color, key) via the metadata slots.
        lock(&self.inner.meta)[self.rank] = Some((color, key));
        self.try_barrier()?;
        let (new_rank, group_size) = {
            let meta = lock(&self.inner.meta);
            let mut members: Vec<(i64, usize)> = meta
                .iter()
                .enumerate()
                .filter_map(|(r, m)| {
                    let (c, k) = m.expect("missing split metadata");
                    (c == color).then_some((k, r))
                })
                .collect();
            members.sort_unstable();
            let new_rank =
                members.iter().position(|&(_, r)| r == self.rank).expect("rank not in own group");
            (new_rank, members.len())
        };
        // First member to arrive creates the child group's shared state.
        let child_inner = {
            let mut children = lock(&self.inner.children);
            Arc::clone(
                children
                    .entry((call, color))
                    .or_insert_with(|| Arc::new(Inner::new(group_size, self.inner.timeout()))),
            )
        };
        // Everyone must have fetched their child before meta is reused.
        self.try_barrier()?;
        Ok(Communicator {
            rank: new_rank,
            inner: child_inner,
            split_calls: 0,
            rebuild_epoch: 0,
            engine: None,
        })
    }

    /// Split the group into disjoint sub-groups, MPI `comm_split` style:
    /// ranks passing the same `color` join one sub-group; `key` orders ranks
    /// within it (ties broken by parent rank). Every rank of the parent must
    /// call `split` collectively.
    ///
    /// ```
    /// use mics_dataplane::run_ranks;
    /// // Figure 2: partition groups of 2 consecutive ranks.
    /// let out = run_ranks(4, |mut comm| {
    ///     let group = comm.split((comm.rank() / 2) as i64, comm.rank() as i64);
    ///     group.all_gather(&[comm.rank() as f32])
    /// });
    /// assert_eq!(out[0], vec![0.0, 1.0]);
    /// assert_eq!(out[3], vec![2.0, 3.0]);
    /// ```
    pub fn split(&mut self, color: i64, key: i64) -> Communicator {
        self.try_split(color, key).unwrap_or_else(|e| panic!("collective aborted: {e}"))
    }

    /// Rebuild the group without rank `removed`, after that rank failed:
    /// the shrink/rebuild step of recovery. Every *surviving* rank must call
    /// this collectively with the same `removed` id; each receives a handle
    /// to a fresh group of `world() - 1` ranks in which surviving ranks keep
    /// their relative order (`rank' = rank - (rank > removed)`).
    ///
    /// The old group stays poisoned; only the new handles are usable. If a
    /// further rank dies before reaching this rendezvous, the rebuild itself
    /// fails with [`CommError::Timeout`] and can be retried with the next
    /// casualty removed as well.
    pub fn remove_rank(&mut self, removed: usize) -> Result<Communicator, CommError> {
        assert!(removed < self.inner.world, "removed rank out of range");
        assert_ne!(self.rank, removed, "a removed rank cannot join the rebuilt group");
        let epoch = self.rebuild_epoch;
        self.rebuild_epoch += 1;
        let new_world = self.inner.world - 1;
        let new_rank = self.rank - usize::from(self.rank > removed);
        let rebuilt = {
            let mut rebuilds = lock(&self.inner.rebuilds);
            Arc::clone(
                rebuilds
                    .entry((epoch, removed))
                    .or_insert_with(|| Arc::new(Inner::new(new_world, self.inner.timeout()))),
            )
        };
        // Rendezvous on the *new* barrier — the old one is poisoned. This is
        // also the liveness check that all survivors made it here.
        rebuilt.barrier.wait(new_world, rebuilt.timeout())?;
        Ok(Communicator {
            rank: new_rank,
            inner: rebuilt,
            split_calls: 0,
            rebuild_epoch: 0,
            engine: None,
        })
    }
}

/// One rank's panic, as reported by [`try_run_ranks`].
#[derive(Debug)]
pub struct RankPanic {
    /// The world rank whose closure panicked.
    pub rank: usize,
    /// The panic payload rendered as a string.
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Like [`run_ranks`], but a panicking rank becomes an `Err` entry instead
/// of tearing down the harness — the panic is caught, the world group (and
/// every sub-group) is poisoned so surviving ranks abort their collectives
/// within the configured timeout, and survivors' return values are kept.
pub fn try_run_ranks<F, R>(world: usize, f: F) -> Vec<Result<R, RankPanic>>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    let comms = Communicator::create_world(world);
    let world_inner = Arc::clone(&comms[0].inner);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                let inner = Arc::clone(&world_inner);
                scope.spawn(move || {
                    let rank = comm.rank();
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm))).map_err(
                        |payload| {
                            inner.mark_failed(rank);
                            RankPanic { rank, message: panic_message(payload.as_ref()) }
                        },
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread died outside catch_unwind"))
            .collect()
    })
}

/// Spawn `world` scoped threads, give thread `r` the rank-`r` communicator,
/// and collect the per-rank results in rank order.
///
/// # Panics
/// If any rank's closure panics, every rank's failure is reported with its
/// rank id and payload (surviving ranks abort their in-flight collectives
/// rather than hanging).
pub fn run_ranks<F, R>(world: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Sync,
    R: Send,
{
    let results = try_run_ranks(world, f);
    let mut out = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => failures.push(format!("rank {}: {}", p.rank, p.message)),
        }
    }
    assert!(failures.is_empty(), "rank thread panicked — {}", failures.join("; "));
    out
}

/// Run `f` on a watchdog thread and panic if it exceeds `limit`: the guard
/// that turns an accidental rendezvous deadlock into a fast test failure
/// instead of a hung `cargo test`. Panics from `f` propagate unchanged.
///
/// # Thread lifecycle
///
/// On the happy path (result delivered in time) and on the propagated-panic
/// path the guard thread is **joined** before this function returns — no
/// thread outlives the call. Only the timeout path leaks the thread, by
/// construction: the worker is stuck in whatever deadlock tripped the
/// deadline, a join would hang the very watchdog that exists to avoid
/// hanging, and the process teardown reaps it. That leak is bounded to one
/// thread per tripped deadline, and a tripped deadline is already a test
/// failure.
pub fn with_deadline<R, F>(limit: Duration, f: F) -> R
where
    R: Send + 'static,
    F: FnOnce() -> R + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let guard = std::thread::Builder::new()
        .name("deadline-guard".into())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("cannot spawn deadline-guard thread");
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = guard.join();
            r
        }
        Err(RecvTimeoutError::Disconnected) => match guard.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("guarded closure neither sent a result nor panicked"),
        },
        Err(RecvTimeoutError::Timeout) => {
            // The stuck worker thread is leaked; the process will reap it.
            panic!("test exceeded its {limit:?} deadline — likely a rendezvous deadlock")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let out = run_ranks(4, |c| c.all_gather(&[c.rank() as f32 * 10.0, 1.0]));
        for r in &out {
            assert_eq!(r, &[0.0, 1.0, 10.0, 1.0, 20.0, 1.0, 30.0, 1.0]);
        }
    }

    #[test]
    fn all_gather_single_rank_is_identity() {
        let out = run_ranks(1, |c| c.all_gather(&[1.0, 2.0]));
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn all_reduce_sums_identically_on_every_rank() {
        let out = run_ranks(8, |c| c.all_reduce(&[c.rank() as f32, 1.0]));
        let expect = vec![28.0, 8.0];
        for r in &out {
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_shard() {
        let out = run_ranks(4, |c| {
            // Every rank contributes [r, r, r, r, r, r, r, r] (2 per shard).
            let v = vec![c.rank() as f32; 8];
            c.reduce_scatter(&v)
        });
        // Sum over ranks = 0+1+2+3 = 6 in every position.
        for r in &out {
            assert_eq!(r, &[6.0, 6.0]);
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        let world = 8;
        let data: Vec<Vec<f32>> =
            (0..world).map(|r| (0..16).map(|i| (r * 31 + i) as f32 * 0.25).collect()).collect();
        let via_ar = run_ranks(world, |c| c.all_reduce(&data[c.rank()]));
        let via_rs_ag = run_ranks(world, |c| {
            let mine = c.reduce_scatter(&data[c.rank()]);
            c.all_gather(&mine)
        });
        assert_eq!(via_ar, via_rs_ag);
    }

    #[test]
    fn broadcast_distributes_roots_buffer() {
        let out = run_ranks(4, |c| {
            let local = vec![c.rank() as f32; 3];
            c.broadcast(2, &local)
        });
        for r in &out {
            assert_eq!(r, &[2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn coalesced_all_gather_matches_sequential_calls() {
        let world = 4;
        let mk = |r: usize| (vec![r as f32], vec![r as f32 + 0.5, r as f32 - 0.5]);
        let coalesced = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            c.all_gather_coalesced(&[&a, &b])
        });
        let sequential = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            vec![c.all_gather(&a), c.all_gather(&b)]
        });
        assert_eq!(coalesced, sequential);
    }

    #[test]
    fn coalesced_reduce_scatter_matches_sequential_calls() {
        let world = 4;
        let mk = |r: usize| {
            let a: Vec<f32> = (0..8).map(|i| (r + i) as f32).collect();
            let b: Vec<f32> = (0..4).map(|i| (r * i) as f32).collect();
            (a, b)
        };
        let coalesced = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            c.reduce_scatter_coalesced(&[&a, &b])
        });
        let sequential = run_ranks(world, |c| {
            let (a, b) = mk(c.rank());
            vec![c.reduce_scatter(&a), c.reduce_scatter(&b)]
        });
        assert_eq!(coalesced, sequential);
    }

    #[test]
    fn split_partitions_ranks_by_color() {
        // 8 ranks → partition groups of 2 consecutive ranks (Figure 2).
        let out = run_ranks(8, |mut c| {
            let color = (c.rank() / 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            let gathered = sub.all_gather(&[c.rank() as f32]);
            (sub.rank(), sub.world(), gathered)
        });
        for (r, (sub_rank, sub_world, gathered)) in out.iter().enumerate() {
            assert_eq!(*sub_world, 2);
            assert_eq!(*sub_rank, r % 2);
            let base = (r / 2 * 2) as f32;
            assert_eq!(gathered, &vec![base, base + 1.0]);
        }
    }

    #[test]
    fn split_replication_groups_stride() {
        // Replication groups: ranks with equal (rank % 2), as in Figure 2.
        let out = run_ranks(8, |mut c| {
            let color = (c.rank() % 2) as i64;
            let sub = c.split(color, c.rank() as i64);
            sub.all_gather(&[c.rank() as f32])
        });
        assert_eq!(out[0], vec![0.0, 2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 3.0, 5.0, 7.0]);
        assert_eq!(out[5], vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn consecutive_splits_are_independent() {
        let out = run_ranks(4, |mut c| {
            let pairs = c.split((c.rank() / 2) as i64, 0);
            let stripes = c.split((c.rank() % 2) as i64, 0);
            (pairs.all_gather(&[c.rank() as f32]), stripes.all_gather(&[c.rank() as f32]))
        });
        assert_eq!(out[0].0, vec![0.0, 1.0]);
        assert_eq!(out[0].1, vec![0.0, 2.0]);
        assert_eq!(out[3].0, vec![2.0, 3.0]);
        assert_eq!(out[3].1, vec![1.0, 3.0]);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            run_ranks(8, |c| {
                let v: Vec<f32> = (0..64).map(|i| ((c.rank() * 997 + i) as f32).sin()).collect();
                let r = c.all_reduce(&v);
                let s = c.reduce_scatter(&r);
                c.all_gather(&s)
            })
        };
        let a = run();
        let b = run();
        // Bitwise identical, every rank, every run.
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        for r in &a[1..] {
            assert_eq!(r, &a[0]);
        }
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn mismatched_all_gather_lengths_panic() {
        run_ranks(2, |c| {
            let v = vec![0.0; c.rank() + 1];
            c.all_gather(&v)
        });
    }

    #[test]
    fn repeated_collectives_reuse_slots_safely() {
        let out = run_ranks(4, |c| {
            let mut acc = 0.0;
            for round in 0..50 {
                let v = vec![(c.rank() + round) as f32];
                acc += c.all_reduce(&v)[0];
            }
            acc
        });
        // Each round sums to 4*round + 6.
        let expect: f32 = (0..50).map(|r| (4 * r + 6) as f32).sum();
        for r in out {
            assert_eq!(r, expect);
        }
    }

    // ---- failure semantics -------------------------------------------------

    #[test]
    fn killed_rank_aborts_every_surviving_collective() {
        // The acceptance-criteria scenario: rank 2 of 4 dies mid-collective;
        // every survivor's all_gather returns Err(RankFailed) within the
        // configured bound instead of hanging.
        with_deadline(Duration::from_secs(20), || {
            let started = Instant::now();
            let results = try_run_ranks(4, |c| {
                c.set_timeout(Duration::from_secs(5));
                if c.rank() == 2 {
                    panic!("injected fault: rank 2 dies mid-collective");
                }
                c.try_all_gather(&[c.rank() as f32])
            });
            let elapsed = started.elapsed();
            assert!(
                elapsed < Duration::from_secs(5),
                "survivors must abort well before the rendezvous timeout, took {elapsed:?}"
            );
            for (rank, r) in results.iter().enumerate() {
                match (rank, r) {
                    (2, Err(p)) => {
                        assert_eq!(p.rank, 2);
                        assert!(p.message.contains("injected fault"), "{}", p.message);
                    }
                    (2, Ok(_)) => panic!("rank 2 must be reported as panicked"),
                    (_, Ok(collective)) => {
                        assert_eq!(
                            collective,
                            &Err(CommError::RankFailed { rank: 2 }),
                            "survivor {rank} must observe the failure"
                        );
                    }
                    (_, Err(p)) => panic!("survivor {rank} must not panic: {}", p.message),
                }
            }
        });
    }

    #[test]
    fn absent_rank_is_detected_by_timeout() {
        // A rank that silently walks away (no panic) is caught by the
        // rendezvous deadline instead of hanging the group.
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(3, |c| {
                c.set_timeout(Duration::from_millis(200));
                if c.rank() == 1 {
                    return Ok(Vec::new()); // never joins the collective
                }
                c.try_all_reduce(&[1.0])
            });
            for (rank, r) in results.into_iter().enumerate() {
                let collective = r.expect("no thread panics in this scenario");
                if rank == 1 {
                    assert_eq!(collective, Ok(Vec::new()));
                } else {
                    assert!(
                        matches!(collective, Err(CommError::Timeout { .. })),
                        "rank {rank} must time out, got {collective:?}"
                    );
                }
            }
        });
    }

    #[test]
    fn poisoned_group_fails_fast_afterwards() {
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(2, |c| {
                c.set_timeout(Duration::from_secs(5));
                if c.rank() == 0 {
                    panic!("boom");
                }
                let first = c.try_all_gather(&[1.0]);
                // Once poisoned, later collectives fail immediately (no new
                // timeout wait) with the same error.
                let started = Instant::now();
                let second = c.try_all_gather(&[2.0]);
                (first, second, started.elapsed())
            });
            let (first, second, elapsed) =
                results[1].as_ref().expect("rank 1 must not panic").clone();
            assert_eq!(first, Err(CommError::RankFailed { rank: 0 }));
            assert_eq!(second, Err(CommError::RankFailed { rank: 0 }));
            assert!(elapsed < Duration::from_secs(1), "fail-fast, not a fresh wait");
        });
    }

    #[test]
    fn failure_poisons_sub_communicators() {
        // A failure on the world group must unblock ranks waiting inside a
        // *sub*-communicator created by split.
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(4, |mut c| {
                c.set_timeout(Duration::from_secs(5));
                let pair = c.split((c.rank() / 2) as i64, c.rank() as i64);
                if c.rank() == 3 {
                    panic!("dies after split");
                }
                // Ranks 2 is in the same pair as the casualty and would hang
                // forever without poison propagation; ranks 0/1 complete.
                pair.try_all_gather(&[c.rank() as f32])
            });
            match &results[2] {
                Ok(Err(CommError::RankFailed { rank: 3 })) => {}
                other => panic!("rank 2 must observe rank 3's failure, got {other:?}"),
            }
        });
    }

    #[test]
    fn remove_rank_rebuilds_a_working_group() {
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(4, |mut c| {
                c.set_timeout(Duration::from_secs(5));
                if c.rank() == 1 {
                    panic!("casualty");
                }
                // Survivors: observe the failure, then shrink and continue.
                let err = c.try_all_reduce(&[1.0]).expect_err("must abort");
                let failed = match err {
                    CommError::RankFailed { rank } => rank,
                    other => panic!("expected RankFailed, got {other}"),
                };
                let shrunk = c.remove_rank(failed).expect("rebuild must succeed");
                let gathered =
                    shrunk.try_all_gather(&[c.rank() as f32]).expect("shrunk group works");
                (shrunk.rank(), shrunk.world(), gathered)
            });
            for (rank, r) in results.into_iter().enumerate() {
                if rank == 1 {
                    assert!(r.is_err());
                    continue;
                }
                let (new_rank, new_world, gathered) = r.expect("survivors must not panic");
                assert_eq!(new_world, 3);
                assert_eq!(new_rank, rank - usize::from(rank > 1));
                // Old-world ranks 0, 2, 3 in order.
                assert_eq!(gathered, vec![0.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn remove_rank_world_of_two_leaves_singleton() {
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(2, |mut c| {
                c.set_timeout(Duration::from_millis(500));
                if c.rank() == 0 {
                    panic!("casualty");
                }
                let _ = c.try_all_reduce(&[1.0]).expect_err("must abort");
                let solo = c.remove_rank(0).expect("rebuild to singleton");
                solo.try_all_gather(&[7.0]).expect("singleton collective is local")
            });
            assert_eq!(results[1].as_ref().expect("survivor ok"), &vec![7.0]);
        });
    }

    #[test]
    fn run_ranks_reports_rank_id_and_payload() {
        let err = std::panic::catch_unwind(|| {
            run_ranks(3, |c| {
                if c.rank() == 1 {
                    panic!("specific payload {}", 41 + 1);
                }
                c.try_barrier()
            })
        })
        .expect_err("harness must propagate the panic");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains("specific payload 42"), "{msg}");
    }

    #[test]
    fn with_deadline_passes_results_and_panics_through() {
        assert_eq!(with_deadline(Duration::from_secs(5), || 7usize), 7);
        let err = std::panic::catch_unwind(|| {
            with_deadline(Duration::from_secs(5), || panic!("inner failure"))
        })
        .expect_err("panic must propagate");
        assert_eq!(panic_message(err.as_ref()), "inner failure");
    }

    #[test]
    fn with_deadline_trips_on_hang() {
        let err = std::panic::catch_unwind(|| {
            with_deadline(Duration::from_millis(100), || {
                std::thread::sleep(Duration::from_secs(600));
            })
        })
        .expect_err("deadline must trip");
        assert!(panic_message(err.as_ref()).contains("deadline"), "wrong panic");
    }
}
