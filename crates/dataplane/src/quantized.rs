//! Quantized collectives on the real data plane — the execution half of the
//! compressed-communication subsystem (`mics-compress` provides the
//! kernels, `mics-collectives::compress` the α–β prices).
//!
//! Every collective here moves *encoded word streams* (see
//! `Quantized::to_words`) through the ordinary rendezvous collectives, so
//! the failure semantics are inherited wholesale: a dead or absent rank
//! aborts the quantized collective with the same [`CommError`] its fp32
//! counterpart would return, and poison propagates through the same barrier
//! state. The `try_*` variants surface that as `Result`; the plain wrappers
//! panic like the rest of the data plane.
//!
//! Two styles, mirroring ZeRO++:
//!
//! * **qwZ (weight gather):** quantize once, transport codes, dequantize at
//!   the receiver — [`try_quantized_all_gather`] and the 3-stage
//!   [`try_quantized_hierarchical_all_gather`], which moves encoded chunks
//!   through stages 1–3 and is therefore *bit-identical* to the flat
//!   quantized gather (codes are copied, never re-derived).
//! * **qgZ (gradient reduce):** gradients must be summed, and summing codes
//!   is meaningless — each hop dequantizes, reduces in fp32, and
//!   requantizes for the next hop. The hierarchical
//!   [`try_quantized_hierarchical_reduce_scatter`] performs exactly two
//!   quantized hops (intra-node, then inter-node), which bounds the
//!   accumulated error at 2 half-steps per element instead of `O(p)`.

use crate::{CommError, Communicator};
use mics_collectives::HierarchicalLayout;
use mics_compress::{dequantize, quantize, QuantScheme, Quantized};

/// Fallible quantized all-gather: every rank's `contribution` is quantized,
/// the encoded words are gathered, and each rank dequantizes all `world`
/// shards. Equal `contribution.len()` on every rank, as with
/// [`Communicator::all_gather`].
pub fn try_quantized_all_gather(
    comm: &Communicator,
    contribution: &[f32],
    scheme: QuantScheme,
) -> Result<Vec<f32>, CommError> {
    let len = contribution.len();
    let words = quantize(contribution, scheme).to_words();
    let gathered = comm.try_all_gather(&words)?;
    let per = scheme.encoded_words(len);
    let mut out = Vec::with_capacity(len * comm.world());
    for r in 0..comm.world() {
        let q = Quantized::from_words(&gathered[r * per..(r + 1) * per], len, scheme);
        out.extend(dequantize(&q));
    }
    Ok(out)
}

/// Panicking wrapper over [`try_quantized_all_gather`].
pub fn quantized_all_gather(
    comm: &Communicator,
    contribution: &[f32],
    scheme: QuantScheme,
) -> Vec<f32> {
    try_quantized_all_gather(comm, contribution, scheme)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

/// Fallible quantized reduce-scatter over one hop: each rank quantizes its
/// full `world × shard` buffer, the encoded words are exchanged, and each
/// rank dequantizes every peer's copy of *its own* shard and sums in fixed
/// rank order (deterministic, like the fp32 collective).
pub fn try_quantized_reduce_scatter(
    comm: &Communicator,
    contribution: &[f32],
    scheme: QuantScheme,
) -> Result<Vec<f32>, CommError> {
    let world = comm.world();
    assert!(
        contribution.len().is_multiple_of(world),
        "reduce_scatter input length {} not divisible by world {world}",
        contribution.len()
    );
    let len = contribution.len();
    let shard = len / world;
    let words = quantize(contribution, scheme).to_words();
    let gathered = comm.try_all_gather(&words)?;
    let per = scheme.encoded_words(len);
    let base = comm.rank() * shard;
    let mut out = vec![0.0f32; shard];
    for r in 0..world {
        let q = Quantized::from_words(&gathered[r * per..(r + 1) * per], len, scheme);
        let deq = dequantize(&q);
        for (o, x) in out.iter_mut().zip(deq[base..base + shard].iter()) {
            *o += *x;
        }
    }
    Ok(out)
}

/// Panicking wrapper over [`try_quantized_reduce_scatter`].
pub fn quantized_reduce_scatter(
    comm: &Communicator,
    contribution: &[f32],
    scheme: QuantScheme,
) -> Vec<f32> {
    try_quantized_reduce_scatter(comm, contribution, scheme)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

/// Fallible quantized all-reduce (one quantized hop): exchange encoded
/// buffers, dequantize all, sum in rank order. Every rank computes the
/// identical result.
pub fn try_quantized_all_reduce(
    comm: &Communicator,
    contribution: &[f32],
    scheme: QuantScheme,
) -> Result<Vec<f32>, CommError> {
    let len = contribution.len();
    let words = quantize(contribution, scheme).to_words();
    let gathered = comm.try_all_gather(&words)?;
    let per = scheme.encoded_words(len);
    let mut out = vec![0.0f32; len];
    for r in 0..comm.world() {
        let q = Quantized::from_words(&gathered[r * per..(r + 1) * per], len, scheme);
        let deq = dequantize(&q);
        for (o, x) in out.iter_mut().zip(deq.iter()) {
            *o += *x;
        }
    }
    Ok(out)
}

/// Panicking wrapper over [`try_quantized_all_reduce`].
pub fn quantized_all_reduce(
    comm: &Communicator,
    contribution: &[f32],
    scheme: QuantScheme,
) -> Vec<f32> {
    try_quantized_all_reduce(comm, contribution, scheme)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

/// Fallible quantized 3-stage hierarchical all-gather (§3.3 geometry, qwZ
/// payloads): this rank's shard is quantized **once**; stage 1 gathers
/// encoded chunks along the inter-node channel, stage 2 re-arranges whole
/// encoded chunks into their final positions, stage 3 fills in node peers'
/// chunks with one coalesced intra-node gather of encoded chunks; only then
/// is everything dequantized. Because codes travel unmodified, the result
/// is bit-identical to [`try_quantized_all_gather`] over the whole group.
///
/// `channel`/`node`/`layout` exactly as in
/// [`crate::hierarchical::hierarchical_all_gather`].
pub fn try_quantized_hierarchical_all_gather(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    shard: &[f32],
    scheme: QuantScheme,
) -> Result<Vec<f32>, CommError> {
    assert_eq!(channel.world(), layout.nodes(), "channel size must equal node count");
    assert_eq!(node.world(), layout.per_node(), "node group size must equal k");
    let chunk = shard.len();
    let cw = scheme.encoded_words(chunk);
    let p = layout.participants();
    let local = node.rank();
    let group_rank = channel.rank() * layout.per_node() + local;

    // Quantize this rank's chunk once; all further movement is on codes.
    let words = quantize(shard, scheme).to_words();

    // Stage 1: inter-node all-gather of encoded chunks along the channel.
    let stage1 = channel.try_all_gather(&words)?;
    debug_assert_eq!(stage1.len(), layout.nodes() * cw);

    // Stage 2: re-arrange whole encoded chunks into their final slots.
    let mut enc = vec![0.0f32; p * cw];
    for slot in 0..layout.nodes() {
        let dest = layout.stage2_destination(group_rank, slot);
        enc[dest * cw..(dest + 1) * cw].copy_from_slice(&stage1[slot * cw..(slot + 1) * cw]);
    }

    // Stage 3: p/k batched intra-node all-gathers of encoded chunks.
    let parts: Vec<Vec<f32>> = (0..layout.nodes())
        .map(|j| {
            let idx = j * layout.per_node() + local;
            enc[idx * cw..(idx + 1) * cw].to_vec()
        })
        .collect();
    let part_refs: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
    let gathered = node.try_all_gather_coalesced(&part_refs)?;
    for (j, span) in gathered.iter().enumerate() {
        debug_assert_eq!(span.len(), layout.per_node() * cw);
        let base = j * layout.per_node() * cw;
        enc[base..base + span.len()].copy_from_slice(span);
    }

    // Dequantize the p encoded chunks into the flat fp32 result.
    let mut out = Vec::with_capacity(p * chunk);
    for r in 0..p {
        let q = Quantized::from_words(&enc[r * cw..(r + 1) * cw], chunk, scheme);
        out.extend(dequantize(&q));
    }
    Ok(out)
}

/// Panicking wrapper over [`try_quantized_hierarchical_all_gather`].
pub fn quantized_hierarchical_all_gather(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    shard: &[f32],
    scheme: QuantScheme,
) -> Vec<f32> {
    try_quantized_hierarchical_all_gather(channel, node, layout, shard, scheme)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

/// Fallible quantized hierarchical reduce-scatter — the qgZ-style 2-hop
/// gradient reduce. Hop 1 (intra-node): each rank quantizes its `p/k`
/// spans, the node exchanges encoded spans with one coalesced gather, and
/// each rank dequantizes peers' contributions and reduces its interleaved
/// chunks in fp32. Hop 2 (inter-node): the node-partial sums are
/// *requantized* and reduced along the channel the same way. Exactly two
/// quantized hops touch each element, so the error stays bounded by two
/// half-steps regardless of `p`.
pub fn try_quantized_hierarchical_reduce_scatter(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    full: &[f32],
    scheme: QuantScheme,
) -> Result<Vec<f32>, CommError> {
    assert_eq!(channel.world(), layout.nodes(), "channel size must equal node count");
    assert_eq!(node.world(), layout.per_node(), "node group size must equal k");
    let p = layout.participants();
    assert!(full.len().is_multiple_of(p), "input must be p equal chunks");
    let chunk = full.len() / p;
    let k = layout.per_node();
    let local = node.rank();

    // Hop 1: quantize each k-chunk span, exchange within the node with one
    // coalesced gather of encoded spans, dequantize-reduce this rank's
    // interleaved chunk of each span.
    let span_len = k * chunk;
    let sw = scheme.encoded_words(span_len);
    let spans: Vec<Vec<f32>> = (0..layout.nodes())
        .map(|j| quantize(&full[j * span_len..(j + 1) * span_len], scheme).to_words())
        .collect();
    let span_refs: Vec<&[f32]> = spans.iter().map(|s| s.as_slice()).collect();
    let exchanged = node.try_all_gather_coalesced(&span_refs)?;

    let mut stage1 = Vec::with_capacity(layout.nodes() * chunk);
    for exchanged_span in exchanged.iter() {
        debug_assert_eq!(exchanged_span.len(), k * sw);
        let mut acc = vec![0.0f32; chunk];
        let base = local * chunk;
        for peer in 0..k {
            let q = Quantized::from_words(
                &exchanged_span[peer * sw..(peer + 1) * sw],
                span_len,
                scheme,
            );
            let deq = dequantize(&q);
            for (o, x) in acc.iter_mut().zip(deq[base..base + chunk].iter()) {
                *o += *x;
            }
        }
        stage1.extend(acc);
    }

    // Hop 2: requantize the node-partial sums and reduce-scatter them along
    // the inter-node channel (second and final quantized hop).
    try_quantized_reduce_scatter(channel, &stage1, scheme)
}

/// Panicking wrapper over [`try_quantized_hierarchical_reduce_scatter`].
pub fn quantized_hierarchical_reduce_scatter(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    full: &[f32],
    scheme: QuantScheme,
) -> Vec<f32> {
    try_quantized_hierarchical_reduce_scatter(channel, node, layout, full, scheme)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::split_hierarchical;
    use crate::{run_ranks, try_run_ranks, with_deadline};
    use mics_compress::round_trip;
    use proptest::prelude::*;
    use std::time::Duration;

    const SCHEMES: [QuantScheme; 3] =
        [QuantScheme::F16, QuantScheme::Int8 { block: 128 }, QuantScheme::Int4 { block: 32 }];

    fn payload(rank: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| ((rank * 977 + i * 31) as f32 * 0.0713).sin() * 2.0).collect()
    }

    #[test]
    fn quantized_all_gather_equals_per_rank_round_trips() {
        // The gather is exact on *quantized* data: the result must equal the
        // concatenation of each rank's local round-trip.
        for scheme in SCHEMES {
            let world = 4;
            let len = 200;
            let out = run_ranks(world, move |c| {
                quantized_all_gather(&c, &payload(c.rank(), len), scheme)
            });
            let expect: Vec<f32> =
                (0..world).flat_map(|r| round_trip(&payload(r, len), scheme)).collect();
            for r in &out {
                assert_eq!(r, &expect, "{scheme:?}");
            }
        }
    }

    #[test]
    fn quantized_all_gather_world_one_is_local_round_trip() {
        let out = run_ranks(1, |c| quantized_all_gather(&c, &payload(0, 50), QuantScheme::int8()));
        assert_eq!(out[0], round_trip(&payload(0, 50), QuantScheme::int8()));
    }

    #[test]
    fn quantized_all_gather_empty_buffers() {
        let out = run_ranks(3, |c| quantized_all_gather(&c, &[], QuantScheme::int4()));
        for r in &out {
            assert!(r.is_empty());
        }
    }

    #[test]
    fn quantized_reduce_scatter_close_to_fp32() {
        let world = 4;
        let len = 64;
        let q = run_ranks(world, move |c| {
            quantized_reduce_scatter(&c, &payload(c.rank(), len), QuantScheme::int8())
        });
        let f = run_ranks(world, move |c| c.reduce_scatter(&payload(c.rank(), len)));
        // One quantized hop: error ≤ Σ_r bound_r ≈ world · scale/2.
        let bound: f32 = (0..world)
            .map(|r| mics_compress::quantize(&payload(r, len), QuantScheme::int8()).error_bound())
            .sum();
        for (qs, fs) in q.iter().zip(f.iter()) {
            for (a, b) in qs.iter().zip(fs.iter()) {
                assert!((a - b).abs() <= bound, "|{a} - {b}| > {bound}");
            }
        }
    }

    #[test]
    fn quantized_all_reduce_identical_on_every_rank() {
        let world = 5;
        let out = run_ranks(world, move |c| {
            quantized_all_reduce(&c, &payload(c.rank(), 90), QuantScheme::int8())
        });
        for r in &out[1..] {
            assert_eq!(r, &out[0]);
        }
        // And it equals the sum of the round-tripped contributions exactly
        // (rank-order fold of dequantized values).
        let mut expect = vec![0.0f32; 90];
        for r in 0..world {
            for (o, x) in expect.iter_mut().zip(round_trip(&payload(r, 90), QuantScheme::int8())) {
                *o += x;
            }
        }
        assert_eq!(out[0], expect);
    }

    #[test]
    fn hierarchical_quantized_gather_bit_equals_flat_quantized_gather() {
        // The tentpole data-layout claim, compressed edition: moving encoded
        // chunks through the 3 stages must reproduce the flat quantized
        // gather bit-for-bit.
        for scheme in SCHEMES {
            let (nodes, k, chunk) = (3usize, 2usize, 37usize);
            let p = nodes * k;
            let layout = HierarchicalLayout::new(p, k).unwrap();
            let hier = run_ranks(p, move |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                quantized_hierarchical_all_gather(
                    &channel,
                    &node,
                    &layout,
                    &payload(rank, chunk),
                    scheme,
                )
            });
            let flat =
                run_ranks(p, move |c| quantized_all_gather(&c, &payload(c.rank(), chunk), scheme));
            assert_eq!(hier, flat, "{scheme:?}");
        }
    }

    #[test]
    fn hierarchical_quantized_reduce_scatter_two_hops_stay_bounded() {
        let (nodes, k, chunk) = (2usize, 4usize, 16usize);
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        let scheme = QuantScheme::int8();
        let hier = run_ranks(p, move |mut comm| {
            let rank = comm.rank();
            let (channel, node) = split_hierarchical(&mut comm, &layout);
            quantized_hierarchical_reduce_scatter(
                &channel,
                &node,
                &layout,
                &payload(rank, p * chunk),
                scheme,
            )
        });
        let flat = run_ranks(p, move |c| c.reduce_scatter(&payload(c.rank(), p * chunk)));
        // Hop 1 contributes Σ_r bound_r; hop 2 adds one more quantization of
        // the (k×-larger) node partials: double the hop-1 budget is a safe,
        // still-tight envelope for "2 quantized hops".
        let bound: f32 = 2.0
            * (0..p)
                .map(|r| {
                    mics_compress::quantize(&payload(r, p * chunk), scheme).error_bound() * k as f32
                })
                .sum::<f32>();
        for (h, f) in hier.iter().zip(flat.iter()) {
            for (a, b) in h.iter().zip(f.iter()) {
                assert!((a - b).abs() <= bound, "|{a} - {b}| > {bound}");
            }
        }
    }

    #[test]
    fn f16_gather_is_bit_exact_for_f16_data() {
        // Parameters already cast to f16 (minidl's quantize=true) travel a
        // f16 wire losslessly.
        let world = 4;
        let len = 100;
        let data = move |r: usize| -> Vec<f32> { round_trip(&payload(r, len), QuantScheme::F16) };
        let q =
            run_ranks(world, move |c| quantized_all_gather(&c, &data(c.rank()), QuantScheme::F16));
        let f = run_ranks(world, move |c| c.all_gather(&data(c.rank())));
        assert_eq!(q, f);
    }

    #[test]
    fn killed_rank_aborts_quantized_collectives() {
        // Same rendezvous/abort semantics as the fp32 collectives (PR 1).
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(4, |c| {
                c.set_timeout(Duration::from_secs(5));
                if c.rank() == 2 {
                    panic!("injected fault");
                }
                try_quantized_all_gather(&c, &payload(c.rank(), 64), QuantScheme::int8())
            });
            for (rank, r) in results.iter().enumerate() {
                if rank == 2 {
                    assert!(r.is_err());
                } else {
                    assert_eq!(
                        r.as_ref().expect("survivors don't panic").as_ref().unwrap_err(),
                        &CommError::RankFailed { rank: 2 },
                        "survivor {rank}"
                    );
                }
            }
        });
    }

    #[test]
    fn killed_rank_aborts_quantized_hierarchical_collectives() {
        with_deadline(Duration::from_secs(20), || {
            let layout = HierarchicalLayout::new(4, 2).unwrap();
            let results = try_run_ranks(4, move |mut c| {
                c.set_timeout(Duration::from_secs(5));
                let (channel, node) = split_hierarchical(&mut c, &layout);
                if c.rank() == 3 {
                    panic!("dies after split");
                }
                try_quantized_hierarchical_all_gather(
                    &channel,
                    &node,
                    &layout,
                    &payload(c.rank(), 8),
                    QuantScheme::int4(),
                )
            });
            for (rank, r) in results.iter().enumerate() {
                if rank == 3 {
                    assert!(r.is_err());
                } else {
                    let collective = r.as_ref().expect("survivors don't panic");
                    assert!(
                        matches!(collective, Err(CommError::RankFailed { rank: 3 })),
                        "survivor {rank}: {collective:?}"
                    );
                }
            }
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// "Quantized hierarchical all-gather == flat quantized all-gather
        /// after dequant" — bit-exactly, for every (p, k) geometry and
        /// scheme (the ISSUE's ε is 0 here because codes travel verbatim).
        #[test]
        fn prop_hierarchical_equals_flat_for_all_geometries(
            nodes in 2usize..4,
            k in 1usize..4,
            chunk in 0usize..40,
            which in 0usize..3,
        ) {
            let p = nodes * k;
            prop_assume!(p > k);
            let scheme = SCHEMES[which];
            let layout = HierarchicalLayout::new(p, k).unwrap();
            let hier = run_ranks(p, move |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                quantized_hierarchical_all_gather(
                    &channel, &node, &layout, &payload(rank, chunk), scheme,
                )
            });
            let flat = run_ranks(p, move |c| {
                quantized_all_gather(&c, &payload(c.rank(), chunk), scheme)
            });
            prop_assert_eq!(hier, flat);
        }

        /// The 2-hop quantized reduce stays within the analytic error
        /// envelope of the flat fp32 reduce-scatter for every geometry.
        #[test]
        fn prop_hierarchical_reduce_close_to_fp32(
            nodes in 2usize..4,
            k in 1usize..4,
            chunk in 1usize..6,
        ) {
            let p = nodes * k;
            prop_assume!(p > k);
            let layout = HierarchicalLayout::new(p, k).unwrap();
            let scheme = QuantScheme::int8();
            let hier = run_ranks(p, move |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                quantized_hierarchical_reduce_scatter(
                    &channel, &node, &layout, &payload(rank, p * chunk), scheme,
                )
            });
            let flat = run_ranks(p, move |c| {
                c.reduce_scatter(&payload(c.rank(), p * chunk))
            });
            let bound: f32 = 2.0 * (0..p).map(|r| {
                mics_compress::quantize(&payload(r, p * chunk), scheme).error_bound() * k as f32
            }).sum::<f32>();
            for (h, f) in hier.iter().zip(flat.iter()) {
                for (a, b) in h.iter().zip(f.iter()) {
                    prop_assert!((a - b).abs() <= bound, "|{} - {}| > {}", a, b, bound);
                }
            }
        }
    }
}
