//! Non-blocking collectives: the §4 overlap engine for the real data plane.
//!
//! Every [`Communicator`] can issue collectives asynchronously through
//! [`Communicator::start_all_gather`] and friends. The first `start_*` call
//! lazily spawns a dedicated **comm-progress thread** for that communicator
//! (one per rank per group, mirroring NCCL's per-communicator proxy
//! thread). Submitted operations execute there in submission order against
//! a private fork of the handle, so the SPMD ordering contract is preserved
//! as long as every rank submits the same sequence — exactly the contract
//! the blocking API already imposes. The rank thread keeps computing and
//! collects the result later through [`CollectiveHandle::wait`].
//!
//! The submission queue is **bounded** ([`ASYNC_QUEUE_DEPTH`]): a rank that
//! races ahead of its own progress thread blocks on submission rather than
//! queueing unbounded work, which is the backpressure that keeps prefetch
//! windows honest.
//!
//! # Failure semantics
//!
//! The engine reuses the rendezvous/abort machinery of the blocking path
//! unchanged: a submitted operation that observes a dead or absent peer
//! completes with [`CommError::RankFailed`] / [`CommError::Timeout`], and
//! that error is delivered at [`CollectiveHandle::wait`] — never as a panic
//! on the progress thread. Every outstanding handle of a poisoned group
//! resolves; none hang (the rendezvous deadline still fires on the progress
//! thread). Dropping a communicator with operations still queued does not
//! join the progress thread — it finishes (or aborts) the queued work in
//! the background and exits; see [`Communicator::quiesce`] for a
//! deterministic shutdown.
//!
//! Quantized and hierarchical collectives compose: the `start_quantized_*`
//! methods wrap the [`crate::quantized`] wire formats, and
//! [`start_hierarchical_all_gather`] runs the 3-stage §3.3 algorithm on the
//! progress thread of the inter-node channel.

use crate::hierarchical::{try_hierarchical_all_gather, try_hierarchical_reduce_scatter};
use crate::quantized::{
    try_quantized_all_gather, try_quantized_all_reduce, try_quantized_reduce_scatter,
};
use crate::{CommError, Communicator};
use mics_collectives::HierarchicalLayout;
use mics_compress::QuantScheme;
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum operations queued per communicator before submission blocks.
pub const ASYNC_QUEUE_DEPTH: usize = 16;

type Job = Box<dyn FnOnce(&Communicator) + Send>;

/// The per-communicator progress thread and its submission queue.
pub(crate) struct Engine {
    tx: Option<SyncSender<Job>>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("running", &self.worker.is_some()).finish()
    }
}

impl Engine {
    fn spawn(peer: Communicator) -> Engine {
        let (tx, rx) = sync_channel::<Job>(ASYNC_QUEUE_DEPTH);
        let worker = std::thread::Builder::new()
            .name(format!("comm-progress-{}", peer.rank()))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job(&peer);
                }
            })
            .expect("cannot spawn comm-progress thread");
        Engine { tx: Some(tx), worker: Some(worker) }
    }

    fn submit(&self, job: Job) {
        // A send can only fail if the worker died, which means a submitted
        // operation panicked; the corresponding handle surfaces that.
        let _ = self.tx.as_ref().expect("engine already quiesced").send(job);
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the queue so the worker exits once the queued work drains.
        // Deliberately no `join`: during a rank-thread panic the world may
        // not be poisoned yet, and joining here would deadlock behind a
        // rendezvous the dying rank will never complete. The worker exits
        // on its own once the group's poison (or timeout) resolves its
        // remaining jobs.
        self.tx = None;
    }
}

/// An in-flight asynchronous collective. Obtain the result — or the abort
/// reason — with [`CollectiveHandle::wait`]; the operation keeps making
/// progress whether or not anyone is waiting.
#[derive(Debug)]
pub struct CollectiveHandle<T> {
    rx: Receiver<(Result<T, CommError>, Duration)>,
    probe: Communicator,
}

impl<T> CollectiveHandle<T> {
    /// Block until the collective completes and return its result. A rank
    /// failure or rendezvous timeout anywhere in the group surfaces here as
    /// `Err`, exactly as it would from the blocking `try_*` call.
    pub fn wait(self) -> Result<T, CommError> {
        self.wait_timed().0
    }

    /// Like [`CollectiveHandle::wait`], but also reports how long the
    /// progress thread was busy executing this operation (rendezvous wait
    /// included) — the comm-lane busy time the overlap metrics aggregate.
    ///
    /// The wait itself is bounded by the group's
    /// [`Communicator::set_timeout`] — scaled by the queue depth, since up
    /// to [`ASYNC_QUEUE_DEPTH`] earlier operations may legitimately run
    /// (each with its own rendezvous deadline) before this one. Without
    /// this bound, a timeout configured *after* submission would never
    /// reach an already-blocked wait, and a wedged progress thread would
    /// hang the rank thread forever.
    pub fn wait_timed(self) -> (Result<T, CommError>, Duration) {
        let budget = self.probe.timeout().saturating_mul(ASYNC_QUEUE_DEPTH as u32 + 2);
        match self.rx.recv_timeout(budget) {
            Ok(done) => done,
            // The worker died without delivering: a submitted operation
            // panicked (shape-mismatch assertions live in the collectives).
            // If the group is poisoned, deliver that; otherwise propagate
            // the programming error.
            Err(RecvTimeoutError::Disconnected) => match self.probe.failure() {
                Some(e) => (Err(e), Duration::ZERO),
                None => panic!("comm-progress thread died without a group failure"),
            },
            // The progress thread outlived every deadline that could have
            // saved it (stuck outside the rendezvous machinery): give up
            // with the group failure if one exists, else a timeout.
            Err(RecvTimeoutError::Timeout) => {
                let err = self.probe.failure().unwrap_or(CommError::Timeout { waited: budget });
                (Err(err), Duration::ZERO)
            }
        }
    }
}

impl Communicator {
    /// A private second handle to the same (rank, group): the progress
    /// thread's identity. Safe only because the engine serializes its use.
    pub(crate) fn fork(&self) -> Communicator {
        Communicator::sibling(self)
    }

    /// Submit an arbitrary fallible collective for asynchronous execution
    /// on this communicator's progress thread. The closure receives the
    /// progress thread's fork of this handle; every rank of the group must
    /// submit the same operation in the same order (the SPMD contract,
    /// unchanged). Building block for the `start_*` conveniences and for
    /// composites that span several communicators.
    pub fn start_collective<T, F>(&mut self, op: F) -> CollectiveHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&Communicator) -> Result<T, CommError> + Send + 'static,
    {
        if self.engine.is_none() {
            self.engine = Some(Engine::spawn(self.fork()));
        }
        let probe = self.fork();
        let (txr, rxr) = sync_channel(1);
        let job: Job = Box::new(move |comm| {
            let started = Instant::now();
            let result = op(comm);
            let _ = txr.send((result, started.elapsed()));
        });
        self.engine.as_ref().unwrap().submit(job);
        CollectiveHandle { rx: rxr, probe }
    }

    /// Non-blocking [`Communicator::try_all_gather`].
    pub fn start_all_gather(&mut self, contribution: &[f32]) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| c.try_all_gather(&data))
    }

    /// Non-blocking all-gather into a caller-provided buffer: `out` travels
    /// to the progress thread, is filled with the gathered result, and
    /// returns through the handle — no per-call result allocation, which is
    /// what lets a training loop double-buffer parameter gathers.
    pub fn start_all_gather_into(
        &mut self,
        contribution: &[f32],
        mut out: Vec<f32>,
    ) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| {
            c.try_all_gather_into(&data, &mut out)?;
            Ok(out)
        })
    }

    /// Non-blocking [`Communicator::try_reduce_scatter`].
    pub fn start_reduce_scatter(&mut self, contribution: &[f32]) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| c.try_reduce_scatter(&data))
    }

    /// Non-blocking [`Communicator::try_all_reduce`].
    pub fn start_all_reduce(&mut self, contribution: &[f32]) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| c.try_all_reduce(&data))
    }

    /// Non-blocking quantized all-gather (ZeRO++-style wire format).
    pub fn start_quantized_all_gather(
        &mut self,
        contribution: &[f32],
        scheme: QuantScheme,
    ) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| try_quantized_all_gather(c, &data, scheme))
    }

    /// Non-blocking quantized reduce-scatter.
    pub fn start_quantized_reduce_scatter(
        &mut self,
        contribution: &[f32],
        scheme: QuantScheme,
    ) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| try_quantized_reduce_scatter(c, &data, scheme))
    }

    /// Non-blocking quantized all-reduce.
    pub fn start_quantized_all_reduce(
        &mut self,
        contribution: &[f32],
        scheme: QuantScheme,
    ) -> CollectiveHandle<Vec<f32>> {
        let data = contribution.to_vec();
        self.start_collective(move |c| try_quantized_all_reduce(c, &data, scheme))
    }

    /// Deterministic engine shutdown: close the submission queue and join
    /// the progress thread after it drains. Call once every outstanding
    /// handle has been waited; a queue with stuck work would block here
    /// until the group's rendezvous deadline aborts it.
    pub fn quiesce(&mut self) {
        if let Some(mut engine) = self.engine.take() {
            engine.tx = None;
            if let Some(worker) = engine.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// Non-blocking 3-stage hierarchical all-gather (§3.3), on the channel
/// communicator's progress thread. `channel`/`node`/`layout`/`shard` are as
/// in [`crate::hierarchical::hierarchical_all_gather`]; with a `scheme` the
/// shards travel block-quantized through both stages (the
/// [`crate::quantized::try_quantized_hierarchical_all_gather`] wire).
pub fn start_hierarchical_all_gather(
    channel: &mut Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    shard: &[f32],
    scheme: Option<QuantScheme>,
) -> CollectiveHandle<Vec<f32>> {
    let node = node.fork();
    let layout = *layout;
    let data = shard.to_vec();
    channel.start_collective(move |ch| match scheme {
        Some(s) => {
            crate::quantized::try_quantized_hierarchical_all_gather(ch, &node, &layout, &data, s)
        }
        None => try_hierarchical_all_gather(ch, &node, &layout, &data),
    })
}

/// Non-blocking hierarchical reduce-scatter — the gradient-direction dual,
/// on the node communicator's progress thread (stage 1 runs intra-node).
pub fn start_hierarchical_reduce_scatter(
    node: &mut Communicator,
    channel: &Communicator,
    layout: &HierarchicalLayout,
    full: &[f32],
) -> CollectiveHandle<Vec<f32>> {
    let channel = channel.fork();
    let layout = *layout;
    let data = full.to_vec();
    node.start_collective(move |nd| try_hierarchical_reduce_scatter(&channel, nd, &layout, &data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchical::split_hierarchical;
    use crate::{run_ranks, try_run_ranks, with_deadline};
    use proptest::prelude::*;

    #[test]
    fn async_all_gather_matches_blocking() {
        let out = run_ranks(4, |mut c| {
            let handle = c.start_all_gather(&[c.rank() as f32, 1.0]);
            handle.wait().unwrap()
        });
        for r in &out {
            assert_eq!(r, &[0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 3.0, 1.0]);
        }
    }

    #[test]
    fn pipelined_handles_complete_in_submission_order() {
        // Several collectives in flight at once; the progress thread must
        // execute them in submission order so the rendezvous stay matched.
        let out = run_ranks(3, |mut c| {
            let rank = c.rank() as f32;
            let h1 = c.start_all_reduce(&[rank]);
            let h2 = c.start_all_reduce(&[rank * 10.0]);
            let h3 = c.start_reduce_scatter(&[rank; 3]);
            (h1.wait().unwrap(), h2.wait().unwrap(), h3.wait().unwrap())
        });
        for (r, (a, b, s)) in out.iter().enumerate() {
            assert_eq!(a, &[3.0]);
            assert_eq!(b, &[30.0]);
            let _ = (r, s);
            assert_eq!(s, &[3.0]);
        }
    }

    #[test]
    fn wait_timed_reports_comm_lane_busy_time() {
        let out = run_ranks(2, |mut c| {
            let h = c.start_all_gather(&[c.rank() as f32]);
            let (r, busy) = h.wait_timed();
            r.unwrap();
            busy
        });
        // The rendezvous took *some* measurable slice of progress-thread
        // time on at least one rank (both 0 would mean nothing ran).
        assert!(out.iter().all(|d| *d < Duration::from_secs(5)));
    }

    #[test]
    fn quantized_async_matches_blocking_quantized() {
        use mics_compress::QuantScheme;
        let scheme = QuantScheme::F16;
        let expect = run_ranks(4, |c| {
            crate::quantized::quantized_all_gather(&c, &[c.rank() as f32 * 0.5; 6], scheme)
        });
        let got = run_ranks(4, |mut c| {
            let h = c.start_quantized_all_gather(&[c.rank() as f32 * 0.5; 6], scheme);
            h.wait().unwrap()
        });
        assert_eq!(expect, got);
    }

    #[test]
    fn hierarchical_async_matches_flat_gather() {
        let layout = HierarchicalLayout::new(4, 2).unwrap();
        let out = run_ranks(4, move |mut comm| {
            let rank = comm.rank();
            let (mut channel, node) = split_hierarchical(&mut comm, &layout);
            let shard = vec![rank as f32; 3];
            let flat = comm.all_gather(&shard);
            let h = start_hierarchical_all_gather(&mut channel, &node, &layout, &shard, None);
            let hier = h.wait().unwrap();
            assert_eq!(flat, hier);
            hier
        });
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn rendezvous_deadline_fires_at_wait() {
        // Rank 1 never submits the matching collective and exits cleanly;
        // rank 0's in-flight gather must abort with Timeout at wait() —
        // the deadline guard still fires on the progress thread.
        with_deadline(Duration::from_secs(20), || {
            let results = try_run_ranks(2, |mut c| {
                c.set_timeout(Duration::from_millis(200));
                if c.rank() == 0 {
                    let h = c.start_all_gather(&[0.0]);
                    h.wait()
                } else {
                    Ok(Vec::new())
                }
            });
            match &results[0] {
                Ok(Err(CommError::Timeout { .. })) => {}
                other => panic!("rank 0 must time out at wait(), got {other:?}"),
            }
        });
    }

    #[test]
    fn set_timeout_bounds_wait_even_for_wedged_ops() {
        // Regression: the timeout is configured *after* the operation is
        // submitted, and the operation wedges outside the rendezvous
        // machinery (so no rendezvous deadline will save it). wait() must
        // still return within the scaled budget instead of blocking until
        // the wedge clears.
        with_deadline(Duration::from_secs(20), || {
            run_ranks(2, |mut c| {
                let h: CollectiveHandle<Vec<f32>> = c.start_collective(|_| {
                    std::thread::sleep(Duration::from_secs(8));
                    Ok(Vec::new())
                });
                c.set_timeout(Duration::from_millis(100));
                let started = Instant::now();
                let r = h.wait();
                let elapsed = started.elapsed();
                assert!(matches!(r, Err(CommError::Timeout { .. })), "got {r:?}");
                assert!(
                    elapsed < Duration::from_secs(5),
                    "wait must honor the configured timeout, took {elapsed:?}"
                );
            });
        });
    }

    #[test]
    fn quiesce_joins_the_progress_thread() {
        run_ranks(2, |mut c| {
            let h = c.start_all_reduce(&[1.0]);
            assert_eq!(h.wait().unwrap(), vec![2.0]);
            c.quiesce(); // returns promptly: queue drained, worker joined
        });
    }

    /// Satellite: a rank failing while ≥1 async collective is in flight
    /// delivers `RankFailed` at **every** outstanding `wait()` — no hang,
    /// no double-panic — across plain/quantized/hierarchical variants.
    fn abort_under_overlap(world: usize, inflight: usize, variant: usize) {
        use mics_compress::QuantScheme;
        with_deadline(Duration::from_secs(30), move || {
            let killer = world - 1;
            let layout = HierarchicalLayout::new(world, 2);
            let results = try_run_ranks(world, move |mut c| {
                c.set_timeout(Duration::from_secs(5));
                // The hierarchical split is itself collective, so it runs
                // before the fault — the async gathers are what must abort.
                let hier = (variant == 2).then(|| {
                    let layout = layout.expect("hierarchical needs p = nodes × k");
                    let (channel, node) = split_hierarchical(&mut c, &layout);
                    (channel, node, layout)
                });
                if c.rank() == killer {
                    panic!("injected fault: rank dies with collectives in flight");
                }
                let mut hier = hier;
                let handles: Vec<CollectiveHandle<Vec<f32>>> = (0..inflight)
                    .map(|i| {
                        let data = vec![c.rank() as f32 + i as f32; 4];
                        match &mut hier {
                            None if variant == 0 => c.start_all_gather(&data),
                            None => c.start_quantized_all_reduce(&data, QuantScheme::F16),
                            Some((channel, node, layout)) => start_hierarchical_all_gather(
                                channel,
                                node,
                                layout,
                                &data,
                                Some(QuantScheme::F16),
                            ),
                        }
                    })
                    .collect();
                handles.into_iter().map(CollectiveHandle::wait).collect::<Vec<_>>()
            });
            for (rank, r) in results.iter().enumerate() {
                if rank == killer {
                    assert!(r.is_err(), "the killer must be reported as panicked");
                    continue;
                }
                let waits = r.as_ref().unwrap_or_else(|p| {
                    panic!("survivor {rank} must not panic (no double-panic): {}", p.message)
                });
                assert_eq!(waits.len(), inflight);
                for (i, w) in waits.iter().enumerate() {
                    match w {
                        Err(CommError::RankFailed { .. }) => {}
                        other => panic!(
                            "survivor {rank} handle {i} must abort with RankFailed, got {other:?}"
                        ),
                    }
                }
            }
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_abort_under_overlap(
            world in 2usize..5,
            inflight in 1usize..4,
            variant in 0usize..3,
        ) {
            // The hierarchical variant needs a p = nodes × 2 geometry.
            let world = if variant == 2 { 4 } else { world };
            abort_under_overlap(world, inflight, variant);
        }
    }
}
