//! The real 3-stage hierarchical all-gather of paper §3.3 / Figure 4,
//! executed on actual buffers.
//!
//! The caller provides two sub-communicators of the partition group,
//! obtained with [`Communicator::split`]:
//!
//! * `channel`: this rank's **inter-node channel** — the ranks with the same
//!   within-node index on each node of the group (`p/k` members, one per
//!   node, ordered by node).
//! * `node`: this rank's **intra-node group** — the `k` ranks of its node,
//!   ordered by within-node index.
//!
//! Stage 1 all-gathers shards over `channel` (in a real cluster these `k`
//! channels run in parallel over the NICs). Stage 2 re-arranges the gathered
//! chunks into their final positions, fixing the memory-discontiguity the
//! paper illustrates with the `[C0, C2, C1, C3]` example. Stage 3 launches
//! `p/k` intra-node all-gathers *as one coalesced batch* to fill in the
//! chunks owned by node peers.

use crate::{CommError, Communicator};
use mics_collectives::HierarchicalLayout;

/// Gather the partition group's `p` shards into the full buffer using the
/// 3-stage hierarchical algorithm.
///
/// * `shard` — this rank's chunk (all ranks must pass equal lengths).
/// * `layout` — the `(p, k)` geometry; `channel.world()` must equal
///   `layout.nodes()` and `node.world()` must equal `layout.per_node()`.
///
/// Returns the `p × shard.len()` gathered buffer in flat rank order — the
/// same result a flat `all_gather` over the whole partition group produces.
pub fn hierarchical_all_gather(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    shard: &[f32],
) -> Vec<f32> {
    try_hierarchical_all_gather(channel, node, layout, shard)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

/// Fallible [`hierarchical_all_gather`]: aborts with the failure instead of
/// panicking when a peer dies or never arrives — the form the non-blocking
/// engine ([`crate::nonblocking`]) runs on its progress thread.
pub fn try_hierarchical_all_gather(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    shard: &[f32],
) -> Result<Vec<f32>, CommError> {
    assert_eq!(channel.world(), layout.nodes(), "channel size must equal node count");
    assert_eq!(node.world(), layout.per_node(), "node group size must equal k");
    let chunk = shard.len();
    let p = layout.participants();
    let local = node.rank();
    let group_rank = channel.rank() * layout.per_node() + local;

    // Stage 1: inter-node all-gather along the channel. Afterwards this
    // rank holds chunks [local, k + local, 2k + local, …] in node order.
    let stage1 = channel.try_all_gather(shard)?;
    debug_assert_eq!(stage1.len(), layout.nodes() * chunk);

    // Stage 2: re-arrange into the final buffer. Chunk in stage-1 slot `j`
    // belongs at output chunk index `j·k + local`.
    let mut out = vec![0.0f32; p * chunk];
    for slot in 0..layout.nodes() {
        let dest = layout.stage2_destination(group_rank, slot);
        out[dest * chunk..(dest + 1) * chunk]
            .copy_from_slice(&stage1[slot * chunk..(slot + 1) * chunk]);
    }

    // Stage 3: p/k batched intra-node all-gathers. Call `j` exchanges the
    // node's chunks for output span [j·k, (j+1)·k).
    let parts: Vec<Vec<f32>> = (0..layout.nodes())
        .map(|j| {
            let idx = j * layout.per_node() + local;
            out[idx * chunk..(idx + 1) * chunk].to_vec()
        })
        .collect();
    let part_refs: Vec<&[f32]> = parts.iter().map(|p| p.as_slice()).collect();
    let gathered = node.try_all_gather_coalesced(&part_refs)?;
    for (j, span) in gathered.iter().enumerate() {
        debug_assert_eq!(span.len(), layout.per_node() * chunk);
        let base = j * layout.per_node() * chunk;
        out[base..base + span.len()].copy_from_slice(span);
    }
    Ok(out)
}

/// The *incorrect* two-stage variant the paper warns about: gather along the
/// channel, then directly all-gather the stage-1 buffers within the node,
/// skipping the re-arrangement. Produces the wrong chunk order
/// (`[C0, C2, C1, C3]` for `p = 4, k = 2`). Kept as an executable
/// counter-example.
pub fn naive_two_stage_all_gather(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    shard: &[f32],
) -> Vec<f32> {
    assert_eq!(channel.world(), layout.nodes());
    assert_eq!(node.world(), layout.per_node());
    let stage1 = channel.all_gather(shard);
    node.all_gather(&stage1)
}

/// The gradient-direction dual of [`hierarchical_all_gather`]: reduce each
/// rank's full `p × chunk` gradient buffer so that every rank ends with its
/// own chunk summed over the whole partition group, using two stages:
///
/// 1. **Batched intra-node reduce-scatters** (one per `k`-chunk span of the
///    output, issued through the §4 coalesced API): after this stage, the
///    rank at node `j`, local `c` holds the node-partial sums of chunks
///    `[c, k + c, 2k + c, …]` — the same interleaved layout stage 1 of the
///    all-gather produces, which is already channel order.
/// 2. **Inter-node reduce-scatter** along the channel: member `j` of the
///    channel receives the fully reduced chunk `j·k + c`, which is exactly
///    this rank's shard.
///
/// The summation order (intra-node first, then across nodes) is a
/// re-association of the flat reduce-scatter's rank-order fold, so results
/// agree exactly for exactly-representable data and to fp-rounding
/// tolerance otherwise.
pub fn hierarchical_reduce_scatter(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    full: &[f32],
) -> Vec<f32> {
    try_hierarchical_reduce_scatter(channel, node, layout, full)
        .unwrap_or_else(|e| panic!("collective aborted: {e}"))
}

/// Fallible [`hierarchical_reduce_scatter`], for the non-blocking engine.
pub fn try_hierarchical_reduce_scatter(
    channel: &Communicator,
    node: &Communicator,
    layout: &HierarchicalLayout,
    full: &[f32],
) -> Result<Vec<f32>, CommError> {
    assert_eq!(channel.world(), layout.nodes(), "channel size must equal node count");
    assert_eq!(node.world(), layout.per_node(), "node group size must equal k");
    let p = layout.participants();
    assert!(full.len().is_multiple_of(p), "input must be p equal chunks");
    let chunk = full.len() / p;
    let k = layout.per_node();

    // Stage 1: one intra-node reduce-scatter per k-chunk span, batched.
    let spans: Vec<&[f32]> =
        (0..layout.nodes()).map(|j| &full[j * k * chunk..(j + 1) * k * chunk]).collect();
    let partials = node.try_reduce_scatter_coalesced(&spans)?;
    // partials[j] = node-partial sum of chunk j·k + local — already in
    // channel (node) order; concatenate and reduce across nodes.
    let mut stage1 = Vec::with_capacity(layout.nodes() * chunk);
    for part in &partials {
        debug_assert_eq!(part.len(), chunk);
        stage1.extend_from_slice(part);
    }

    // Stage 2: inter-node reduce-scatter along the channel.
    channel.try_reduce_scatter(&stage1)
}

/// Convenience: split a partition-group communicator of `p = nodes × k`
/// ranks into the `(channel, node)` pair [`hierarchical_all_gather`] needs.
/// Collective over `group`.
pub fn split_hierarchical(
    group: &mut Communicator,
    layout: &HierarchicalLayout,
) -> (Communicator, Communicator) {
    assert_eq!(group.world(), layout.participants(), "group size must equal p");
    let rank = group.rank();
    let channel = group.split(layout.local_of(rank) as i64, layout.node_of(rank) as i64);
    let node = group.split(layout.node_of(rank) as i64, layout.local_of(rank) as i64);
    (channel, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_ranks;
    use proptest::prelude::*;

    /// Run hierarchical all-gather on `nodes × k` thread-ranks where rank r
    /// contributes `chunk` elements encoding (rank, element index).
    fn run_hier(nodes: usize, k: usize, chunk: usize, naive: bool) -> Vec<Vec<f32>> {
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        run_ranks(p, move |mut comm| {
            let rank = comm.rank();
            let (channel, node) = split_hierarchical(&mut comm, &layout);
            let shard: Vec<f32> = (0..chunk).map(|i| (rank * 1000 + i) as f32).collect();
            if naive {
                naive_two_stage_all_gather(&channel, &node, &layout, &shard)
            } else {
                hierarchical_all_gather(&channel, &node, &layout, &shard)
            }
        })
    }

    fn flat_reference(p: usize, chunk: usize) -> Vec<f32> {
        (0..p).flat_map(|r| (0..chunk).map(move |i| (r * 1000 + i) as f32)).collect()
    }

    #[test]
    fn paper_example_two_nodes_two_gpus() {
        let out = run_hier(2, 2, 3, false);
        let expect = flat_reference(4, 3);
        for r in &out {
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn naive_variant_reproduces_papers_wrong_layout() {
        // p = 4, k = 2, chunk = 1: naive concatenation gives [C0, C2, C1, C3].
        let out = run_hier(2, 2, 1, true);
        assert_eq!(out[0], vec![0.0, 2000.0, 1000.0, 3000.0]);
    }

    #[test]
    fn four_nodes_eight_gpus() {
        let out = run_hier(4, 8, 2, false);
        let expect = flat_reference(32, 2);
        for r in &out {
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn matches_flat_all_gather_bitwise() {
        let nodes = 3;
        let k = 4;
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        let chunk = 7;
        let hier = run_ranks(p, |mut comm| {
            let rank = comm.rank();
            let (channel, node) = split_hierarchical(&mut comm, &layout);
            let shard: Vec<f32> = (0..chunk).map(|i| ((rank * 31 + i) as f32).sin()).collect();
            hierarchical_all_gather(&channel, &node, &layout, &shard)
        });
        let flat = run_ranks(p, |comm| {
            let rank = comm.rank();
            let shard: Vec<f32> = (0..chunk).map(|i| ((rank * 31 + i) as f32).sin()).collect();
            comm.all_gather(&shard)
        });
        assert_eq!(hier, flat);
    }

    #[test]
    fn hierarchical_reduce_scatter_matches_flat_on_integers() {
        // Integer-valued data sums exactly regardless of association order,
        // so the two algorithms must agree bitwise.
        for (nodes, k) in [(2usize, 2usize), (2, 4), (3, 2), (2, 8)] {
            let p = nodes * k;
            let layout = HierarchicalLayout::new(p, k).unwrap();
            let chunk = 3;
            let input = move |rank: usize| -> Vec<f32> {
                (0..p * chunk).map(|i| ((rank * 7 + i * 3) % 23) as f32).collect()
            };
            let hier = run_ranks(p, move |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                hierarchical_reduce_scatter(&channel, &node, &layout, &input(rank))
            });
            let flat = run_ranks(p, move |comm| {
                let rank = comm.rank();
                comm.reduce_scatter(&input(rank))
            });
            assert_eq!(hier, flat, "p={p} k={k}");
        }
    }

    #[test]
    fn reduce_scatter_then_gather_is_hierarchical_all_reduce() {
        // Composing the two hierarchical primitives reproduces all-reduce.
        let (nodes, k) = (2usize, 4usize);
        let p = nodes * k;
        let layout = HierarchicalLayout::new(p, k).unwrap();
        let chunk = 5;
        let input = move |rank: usize| -> Vec<f32> {
            (0..p * chunk).map(|i| ((rank * 13 + i) % 17) as f32).collect()
        };
        let composed = run_ranks(p, move |mut comm| {
            let rank = comm.rank();
            let (channel, node) = split_hierarchical(&mut comm, &layout);
            let mine = hierarchical_reduce_scatter(&channel, &node, &layout, &input(rank));
            hierarchical_all_gather(&channel, &node, &layout, &mine)
        });
        let reference = run_ranks(p, move |comm| {
            let rank = comm.rank();
            comm.all_reduce(&input(rank))
        });
        assert_eq!(composed, reference);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Property: for every geometry the hierarchical gather equals the
        /// flat reference layout.
        #[test]
        fn hierarchical_correct_for_all_geometries(
            nodes in 2usize..5,
            k in 1usize..5,
            chunk in 1usize..9,
        ) {
            let p = nodes * k;
            prop_assume!(p > k);
            let out = run_hier(nodes, k, chunk, false);
            let expect = flat_reference(p, chunk);
            for r in &out {
                prop_assert_eq!(r, &expect);
            }
        }

        /// Property: hierarchical reduce-scatter agrees with the flat one to
        /// fp-rounding tolerance for arbitrary float data.
        #[test]
        fn hierarchical_reduce_scatter_close_for_floats(
            nodes in 2usize..4,
            k in 1usize..5,
            chunk in 1usize..5,
        ) {
            let p = nodes * k;
            prop_assume!(p > k);
            let layout = HierarchicalLayout::new(p, k).unwrap();
            let input = move |rank: usize| -> Vec<f32> {
                (0..p * chunk).map(|i| ((rank * 131 + i * 29) as f32 * 0.01).sin()).collect()
            };
            let hier = run_ranks(p, move |mut comm| {
                let rank = comm.rank();
                let (channel, node) = split_hierarchical(&mut comm, &layout);
                hierarchical_reduce_scatter(&channel, &node, &layout, &input(rank))
            });
            let flat = run_ranks(p, move |comm| {
                let rank = comm.rank();
                comm.reduce_scatter(&input(rank))
            });
            for (h, f) in hier.iter().zip(flat.iter()) {
                for (a, b) in h.iter().zip(f.iter()) {
                    prop_assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0));
                }
            }
        }
    }
}
