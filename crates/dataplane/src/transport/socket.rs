//! The socket transport: each rank owns one framed connection (TCP or
//! Unix-domain) to a [`super::hub::Hub`] switchboard, and every collective
//! lowers to a sequenced exchange *on the wire*.
//!
//! # Wire model
//!
//! All traffic is length-prefixed frames (`Frame`): a `u32` little-endian
//! payload length, then a tag byte and the fields. Payload buffers travel
//! as raw `f32` bit patterns, so streams that are really encoded blocks —
//! the `mics-compress` wire format the quantized collectives gather — cross
//! the socket bit-exactly, exactly as they cross the shared-memory
//! transport.
//!
//! A collective exchange is: every member sends
//! `Exchange { group, seq, … }` carrying its batch; the hub holds them
//! until all `world` members of that `(group, seq)` arrived, then answers
//! each member with every member's batch in member order. All reduction
//! arithmetic stays rank-side (above the transport), which is what keeps
//! results bit-identical between transports.
//!
//! # Failure domains
//!
//! This transport is what gives a rank a *real* failure domain. Three
//! detection paths feed the same poison state the local transport uses:
//!
//! * **Teardown** — a SIGKILLed rank's socket closes; the hub sees EOF
//!   without a `Bye` and broadcasts `WorldPoison(PeerDisconnected)`.
//! * **Heartbeat** — every connection pings (`HEARTBEAT_INTERVAL`, 100 ms); a
//!   wedged peer (alive but silent past the grace) is treated as gone, in
//!   both directions: the hub expires silent ranks, and a rank whose hub
//!   goes silent fails itself with [`CommError::Io`].
//! * **Deadline** — the logical timeout of the local transport, unchanged:
//!   a member whose exchange outwaits [`crate::Communicator::set_timeout`]
//!   aborts the group at the hub, which wakes every other waiter with the
//!   same `Timeout` error.
//!
//! Connection setup runs under a bounded [`super::RetryPolicy`] so workers
//! may start before their hub finishes binding. Backpressure is physical:
//! a sender is bounded by the kernel socket buffer plus the hub's bounded
//! per-connection send queue.

use super::hub::Hub;
use super::{Backend, ChildKey, Parts, RetryPolicy, TransportKind};
use crate::{lock, CommError, Communicator, DEFAULT_TIMEOUT};
use mics_trace::Arg;
use std::collections::HashMap;
use std::io::{BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Process name every socket-transport trace event records under.
pub const DATAPLANE_PROCESS: &str = "dataplane";

/// The process-wide registry of socket-transport counters: per-rank
/// cumulative wire bytes (`socket.rank{N}.tx_bytes` / `.rx_bytes`) and the
/// in-flight exchange depth gauge (`socket.rank{N}.pending`). Counters are
/// always maintained (one atomic op per frame); trace *events* for them are
/// only recorded while [`mics_trace::global`] is enabled.
pub fn socket_counters() -> &'static mics_trace::Counters {
    static COUNTERS: OnceLock<mics_trace::Counters> = OnceLock::new();
    COUNTERS.get_or_init(mics_trace::Counters::new)
}

/// Group id of the world communicator; sub-group ids are derived hashes.
pub(crate) const WORLD_GROUP: u64 = 0;

/// Upper bound on a single frame's payload — a corrupted length prefix must
/// fail the connection, not attempt a giant allocation.
const MAX_FRAME: usize = 1 << 28;

/// How often each side of a connection sends a liveness ping.
pub(crate) const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// How long a rank tolerates a silent hub before declaring the connection
/// dead (endpoint side of the heartbeat path). Overridable per connection
/// via [`SocketWorldConfig::heartbeat_grace`].
pub const DEFAULT_HEARTBEAT_GRACE: Duration = Duration::from_secs(10);

/// A connected byte stream of either flavor behind one interface.
#[derive(Debug)]
pub(crate) enum Stream {
    /// TCP (addresses like `127.0.0.1:7000`), with Nagle disabled — frames
    /// are latency-sensitive rendezvous traffic.
    Tcp(TcpStream),
    /// Unix-domain (addresses like `unix:/tmp/mics.sock`).
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(addr: &str) -> std::io::Result<Stream> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(Stream::Unix(UnixStream::connect(path)?))
        } else {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        }
    }

    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

// ---- frame codec -----------------------------------------------------------

/// Everything that crosses a rank↔hub connection.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Frame {
    /// First frame of a connection: this rank's world identity.
    Hello {
        /// World rank of the connecting process.
        rank: u64,
        /// Expected world size.
        world: u64,
    },
    /// One member's half of a sequenced exchange.
    Exchange {
        /// Group id (world = [`WORLD_GROUP`], children are derived hashes).
        group: u64,
        /// Per-group collective sequence number (SPMD-mirrored).
        seq: u64,
        /// Member count of the group — how many halves complete the call.
        world: u64,
        /// This rank's member index within the group.
        member: u64,
        /// The deposited batch.
        parts: Parts,
    },
    /// A member gave up on a group (deadline expired): poison it hub-wide.
    Abort {
        /// Poisoned group id.
        group: u64,
        /// The error every other waiter should observe.
        err: CommError,
    },
    /// Explicit failure report (panicking rank): poison the whole world.
    Failed {
        /// World rank of the failed process.
        rank: u64,
    },
    /// Liveness probe (both directions use the same pair).
    Ping,
    /// Liveness answer.
    Pong,
    /// Clean goodbye: the peer is leaving on purpose, do not poison.
    Bye,
    /// Hub → rank: the completed exchange, every member's batch in member
    /// order.
    Reply {
        /// Group id the exchange ran on.
        group: u64,
        /// Sequence number being answered.
        seq: u64,
        /// `all[m]` is member `m`'s batch.
        all: Vec<Parts>,
    },
    /// Hub → rank: one group is poisoned (member abort).
    GroupPoison {
        /// Poisoned group id.
        group: u64,
        /// The originating error.
        err: CommError,
    },
    /// Hub → rank: a process-level failure; every existing group is
    /// poisoned (groups created afterwards — rebuilds — start fresh).
    WorldPoison {
        /// The originating error.
        err: CommError,
    },
}

/// io::ErrorKind values with a stable wire code (index); anything else
/// decodes as `Other`.
const WIRE_KINDS: &[std::io::ErrorKind] = &[
    std::io::ErrorKind::NotFound,
    std::io::ErrorKind::PermissionDenied,
    std::io::ErrorKind::ConnectionRefused,
    std::io::ErrorKind::ConnectionReset,
    std::io::ErrorKind::ConnectionAborted,
    std::io::ErrorKind::NotConnected,
    std::io::ErrorKind::AddrInUse,
    std::io::ErrorKind::AddrNotAvailable,
    std::io::ErrorKind::BrokenPipe,
    std::io::ErrorKind::InvalidInput,
    std::io::ErrorKind::InvalidData,
    std::io::ErrorKind::TimedOut,
    std::io::ErrorKind::WriteZero,
    std::io::ErrorKind::Interrupted,
    std::io::ErrorKind::UnexpectedEof,
    std::io::ErrorKind::Other,
];

fn err_to_wire(e: CommError) -> (u8, u64) {
    match e {
        CommError::RankFailed { rank } => (0, rank as u64),
        CommError::Timeout { waited } => (1, waited.as_nanos() as u64),
        CommError::Io { kind } => {
            let idx = WIRE_KINDS.iter().position(|&k| k == kind).unwrap_or(WIRE_KINDS.len() - 1);
            (2, idx as u64)
        }
        CommError::PeerDisconnected { rank } => (3, rank as u64),
    }
}

fn err_from_wire(code: u8, arg: u64) -> std::io::Result<CommError> {
    Ok(match code {
        0 => CommError::RankFailed { rank: arg as usize },
        1 => CommError::Timeout { waited: Duration::from_nanos(arg) },
        2 => CommError::Io {
            kind: WIRE_KINDS.get(arg as usize).copied().unwrap_or(std::io::ErrorKind::Other),
        },
        3 => CommError::PeerDisconnected { rank: arg as usize },
        other => return Err(bad_wire(format!("unknown error code {other}"))),
    })
}

fn bad_wire(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_parts(buf: &mut Vec<u8>, parts: &[Vec<f32>]) {
    put_u32(buf, parts.len() as u32);
    for p in parts {
        put_u32(buf, p.len() as u32);
        for x in p {
            put_u32(buf, x.to_bits());
        }
    }
}

fn put_err(buf: &mut Vec<u8>, err: CommError) {
    let (code, arg) = err_to_wire(err);
    buf.push(code);
    put_u64(buf, arg);
}

/// Encode `frame` as one length-prefixed wire message.
pub(crate) fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut b = vec![0u8; 4]; // length prefix patched below
    match frame {
        Frame::Hello { rank, world } => {
            b.push(1);
            put_u64(&mut b, *rank);
            put_u64(&mut b, *world);
        }
        Frame::Exchange { group, seq, world, member, parts } => {
            b.push(2);
            put_u64(&mut b, *group);
            put_u64(&mut b, *seq);
            put_u64(&mut b, *world);
            put_u64(&mut b, *member);
            put_parts(&mut b, parts);
        }
        Frame::Abort { group, err } => {
            b.push(3);
            put_u64(&mut b, *group);
            put_err(&mut b, *err);
        }
        Frame::Failed { rank } => {
            b.push(4);
            put_u64(&mut b, *rank);
        }
        Frame::Ping => b.push(5),
        Frame::Pong => b.push(6),
        Frame::Bye => b.push(7),
        Frame::Reply { group, seq, all } => {
            b.push(10);
            put_u64(&mut b, *group);
            put_u64(&mut b, *seq);
            put_u32(&mut b, all.len() as u32);
            for parts in all {
                put_parts(&mut b, parts);
            }
        }
        Frame::GroupPoison { group, err } => {
            b.push(11);
            put_u64(&mut b, *group);
            put_err(&mut b, *err);
        }
        Frame::WorldPoison { err } => {
            b.push(12);
            put_err(&mut b, *err);
        }
    }
    let len = (b.len() - 4) as u32;
    b[..4].copy_from_slice(&len.to_le_bytes());
    b
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(bad_wire("truncated frame".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> std::io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn parts(&mut self) -> std::io::Result<Parts> {
        let nparts = self.u32()? as usize;
        let mut parts = Vec::with_capacity(nparts.min(1 << 16));
        for _ in 0..nparts {
            let len = self.u32()? as usize;
            let raw = self.take(len.checked_mul(4).ok_or_else(|| bad_wire("overflow".into()))?)?;
            parts.push(
                raw.chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
                    .collect(),
            );
        }
        Ok(parts)
    }
    fn err(&mut self) -> std::io::Result<CommError> {
        let code = self.u8()?;
        let arg = self.u64()?;
        err_from_wire(code, arg)
    }
}

/// Read one frame off `r`, blocking. An EOF at a frame boundary surfaces as
/// `UnexpectedEof`.
pub(crate) fn read_frame(r: &mut impl Read) -> std::io::Result<Frame> {
    read_frame_sized(r).map(|(frame, _)| frame)
}

/// [`read_frame`] plus the wire size consumed (payload + 4-byte prefix),
/// for the receive-byte counters.
pub(crate) fn read_frame_sized(r: &mut impl Read) -> std::io::Result<(Frame, u64)> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(bad_wire(format!("bad frame length {len}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut c = Cursor { buf: &payload, pos: 0 };
    let frame = match c.u8()? {
        1 => Frame::Hello { rank: c.u64()?, world: c.u64()? },
        2 => Frame::Exchange {
            group: c.u64()?,
            seq: c.u64()?,
            world: c.u64()?,
            member: c.u64()?,
            parts: c.parts()?,
        },
        3 => Frame::Abort { group: c.u64()?, err: c.err()? },
        4 => Frame::Failed { rank: c.u64()? },
        5 => Frame::Ping,
        6 => Frame::Pong,
        7 => Frame::Bye,
        10 => {
            let group = c.u64()?;
            let seq = c.u64()?;
            let n = c.u32()? as usize;
            let mut all = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                all.push(c.parts()?);
            }
            Frame::Reply { group, seq, all }
        }
        11 => Frame::GroupPoison { group: c.u64()?, err: c.err()? },
        12 => Frame::WorldPoison { err: c.err()? },
        other => return Err(bad_wire(format!("unknown frame tag {other}"))),
    };
    if c.pos != payload.len() {
        return Err(bad_wire("trailing bytes in frame".into()));
    }
    Ok((frame, len as u64 + 4))
}

/// Write one frame to `w` and flush.
pub(crate) fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

// ---- rank-side endpoint ----------------------------------------------------

/// Where the reader thread delivers one in-flight exchange's outcome.
type ReplySlot = SyncSender<Result<Vec<Parts>, CommError>>;

/// One rank's connection to the hub, shared by every group multiplexed over
/// it. Holds the pending-exchange table the reader thread resolves into.
pub(crate) struct Endpoint {
    writer: Mutex<BufWriter<Stream>>,
    /// A second OS handle to the same socket, kept to force-shutdown the
    /// blocked reader when the endpoint is dropped.
    raw: Stream,
    world_rank: usize,
    /// In-flight exchanges keyed `(group, seq)`; the reader thread resolves
    /// each with the reply or the poison that ends it.
    pending: Mutex<HashMap<(u64, u64), ReplySlot>>,
    /// Every live group on this connection, so hub-announced poisons reach
    /// group state even when no exchange is in flight.
    groups: Mutex<HashMap<u64, Weak<SocketGroup>>>,
    /// Connection-level failure (I/O error, silent hub): terminal.
    failed: Mutex<Option<CommError>>,
    last_inbound: Mutex<Instant>,
    heartbeat_grace: Duration,
    /// Cumulative bytes written to the wire (`socket.rank{N}.tx_bytes`).
    tx_bytes: mics_trace::Counter,
    /// Cumulative bytes read off the wire (`socket.rank{N}.rx_bytes`).
    rx_bytes: mics_trace::Counter,
    /// Gauge: in-flight exchanges awaiting a hub reply.
    pending_depth: mics_trace::Counter,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("world_rank", &self.world_rank)
            .field("failed", &*lock(&self.failed))
            .finish()
    }
}

impl Endpoint {
    fn failure(&self) -> Option<CommError> {
        *lock(&self.failed)
    }

    fn send(&self, frame: &Frame) -> Result<(), CommError> {
        if let Some(e) = self.failure() {
            return Err(e);
        }
        let bytes = encode_frame(frame);
        let mut w = lock(&self.writer);
        match w.write_all(&bytes).and_then(|()| w.flush()) {
            Ok(()) => {
                // Sample and record while still holding the writer lock:
                // otherwise two senders can emit the cumulative tx series
                // out of order (higher total first), which violates the
                // trace's monotone-counter invariant.
                let total = self.tx_bytes.add(bytes.len() as u64);
                let rec = mics_trace::global();
                if rec.is_enabled() {
                    let track = format!("rank{} tx bytes", self.world_rank);
                    rec.counter(DATAPLANE_PROCESS, &track, &track, total as f64);
                }
                drop(w);
                Ok(())
            }
            Err(e) => {
                let err = CommError::Io { kind: e.kind() };
                drop(w);
                self.fail_connection(err);
                Err(err)
            }
        }
    }

    /// Record the pending-map depth on the gauge (and, when tracing, as a
    /// counter track) after a mutation.
    fn note_pending_depth(&self, depth: usize) {
        self.pending_depth.set(depth as u64);
        let rec = mics_trace::global();
        if rec.is_enabled() {
            let track = format!("rank{} in-flight exchanges", self.world_rank);
            rec.counter(DATAPLANE_PROCESS, &track, &track, depth as f64);
        }
    }

    /// Terminal connection failure: record it, poison every group, resolve
    /// every in-flight exchange.
    fn fail_connection(&self, err: CommError) {
        {
            let mut failed = lock(&self.failed);
            if failed.is_some() {
                return;
            }
            *failed = Some(err);
        }
        mics_trace::global().instant(
            DATAPLANE_PROCESS,
            &format!("rank{}", self.world_rank),
            "rank poisoned",
            "fault",
            vec![("error", Arg::from(format!("{err:?}")))],
        );
        self.poison_groups(err);
        self.fail_pending(err, None);
    }

    /// Poison every currently-registered group (the process-level failure
    /// path). Groups registered afterwards — rebuilds — start fresh.
    fn poison_groups(&self, err: CommError) {
        for g in lock(&self.groups).values().filter_map(Weak::upgrade) {
            g.poison_tree(err);
        }
    }

    /// Resolve in-flight exchanges with `err` — all of them, or only one
    /// group's.
    fn fail_pending(&self, err: CommError, only_group: Option<u64>) {
        let depth = {
            let mut pending = lock(&self.pending);
            let keys: Vec<(u64, u64)> = pending
                .keys()
                .filter(|(g, _)| only_group.is_none_or(|og| og == *g))
                .copied()
                .collect();
            for k in keys {
                if let Some(tx) = pending.remove(&k) {
                    let _ = tx.send(Err(err));
                }
            }
            pending.len()
        };
        self.note_pending_depth(depth);
    }

    fn register_group(&self, group: &Arc<SocketGroup>) {
        let mut groups = lock(&self.groups);
        groups.retain(|_, w| w.strong_count() > 0);
        groups.insert(group.id, Arc::downgrade(group));
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Best-effort clean goodbye so the hub does not poison survivors,
        // then force the reader thread off its blocking read.
        if self.failure().is_none() {
            let mut w = lock(&self.writer);
            let _ = write_frame(&mut *w, &Frame::Bye);
        }
        self.raw.shutdown();
    }
}

fn reader_loop(mut stream: Stream, ep: Weak<Endpoint>) {
    loop {
        let (frame, nbytes) = match read_frame_sized(&mut stream) {
            Ok(f) => f,
            Err(e) => {
                if let Some(ep) = ep.upgrade() {
                    ep.fail_connection(CommError::Io { kind: e.kind() });
                }
                return;
            }
        };
        let Some(ep) = ep.upgrade() else { return };
        *lock(&ep.last_inbound) = Instant::now();
        let total = ep.rx_bytes.add(nbytes);
        let rec = mics_trace::global();
        if rec.is_enabled() {
            let track = format!("rank{} rx bytes", ep.world_rank);
            rec.counter(DATAPLANE_PROCESS, &track, &track, total as f64);
        }
        match frame {
            Frame::Reply { group, seq, all } => {
                let (slot, depth) = {
                    let mut pending = lock(&ep.pending);
                    let slot = pending.remove(&(group, seq));
                    (slot, pending.len())
                };
                if let Some(tx) = slot {
                    let _ = tx.send(Ok(all));
                }
                ep.note_pending_depth(depth);
            }
            Frame::GroupPoison { group, err } => {
                if let Some(g) = lock(&ep.groups).get(&group).and_then(Weak::upgrade) {
                    g.poison_tree(err);
                }
                ep.fail_pending(err, Some(group));
            }
            Frame::WorldPoison { err } => {
                ep.poison_groups(err);
                ep.fail_pending(err, None);
            }
            Frame::Ping => {
                let _ = ep.send(&Frame::Pong);
            }
            Frame::Pong => {}
            // Rank-bound traffic only; anything else is a protocol error.
            other => {
                let _ = other;
                ep.fail_connection(CommError::Io { kind: std::io::ErrorKind::InvalidData });
                return;
            }
        }
    }
}

fn heartbeat_loop(ep: Weak<Endpoint>) {
    loop {
        std::thread::sleep(HEARTBEAT_INTERVAL);
        let Some(ep) = ep.upgrade() else { return };
        if ep.failure().is_some() {
            return;
        }
        if lock(&ep.last_inbound).elapsed() > ep.heartbeat_grace {
            mics_trace::global().instant(
                DATAPLANE_PROCESS,
                &format!("rank{}", ep.world_rank),
                "heartbeat missed",
                "fault",
                vec![("grace_ms", Arg::from(ep.heartbeat_grace.as_millis() as u64))],
            );
            ep.fail_connection(CommError::Io { kind: std::io::ErrorKind::TimedOut });
            return;
        }
        if ep.send(&Frame::Ping).is_err() {
            return;
        }
    }
}

// ---- socket-backed group ---------------------------------------------------

/// One communicator group as seen by this rank over its hub connection.
#[derive(Debug)]
pub(crate) struct SocketGroup {
    id: u64,
    world: usize,
    /// Per-group collective counter; identical across ranks by the SPMD
    /// contract, which is what lets the hub match halves by `(group, seq)`.
    seq: AtomicU64,
    timeout_nanos: AtomicU64,
    broken: Mutex<Option<CommError>>,
    children: Mutex<HashMap<ChildKey, Arc<SocketGroup>>>,
    ep: Arc<Endpoint>,
}

impl SocketGroup {
    fn new(id: u64, world: usize, timeout: Duration, ep: Arc<Endpoint>) -> Arc<SocketGroup> {
        let g = Arc::new(SocketGroup {
            id,
            world,
            seq: AtomicU64::new(0),
            timeout_nanos: AtomicU64::new(timeout.as_nanos() as u64),
            broken: Mutex::new(None),
            children: Mutex::new(HashMap::new()),
            ep: Arc::clone(&ep),
        });
        ep.register_group(&g);
        g
    }

    pub(crate) fn world(&self) -> usize {
        self.world
    }

    pub(crate) fn timeout(&self) -> Duration {
        Duration::from_nanos(self.timeout_nanos.load(Ordering::Relaxed))
    }

    pub(crate) fn set_timeout(&self, timeout: Duration) {
        self.timeout_nanos.store(timeout.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn failure(&self) -> Option<CommError> {
        let broken = *lock(&self.broken);
        broken.or_else(|| self.ep.failure())
    }

    /// Poison this group and every descendant (first error wins). Stops at
    /// nodes that are already broken: their unbroken children can only be
    /// post-failure rebuilds (the original poison visited everything that
    /// existed at the time), and those deliberately start fresh. Without the
    /// stop, a stale `GroupPoison`/`WorldPoison` frame processed after
    /// `remove_rank` would re-poison the rebuilt group through its parent.
    pub(crate) fn poison_tree(&self, err: CommError) {
        {
            let mut broken = lock(&self.broken);
            if broken.is_some() {
                return;
            }
            *broken = Some(err);
        }
        for child in lock(&self.children).values() {
            child.poison_tree(err);
        }
    }

    /// Explicit failure report: poison locally and tell the hub, which
    /// relays a `WorldPoison` to every connected peer.
    pub(crate) fn mark_failed(&self, rank: usize) {
        self.poison_tree(CommError::RankFailed { rank });
        let _ = self.ep.send(&Frame::Failed { rank: rank as u64 });
    }

    /// The sequenced exchange over the wire: send this member's batch, wait
    /// (deadline-bounded) for the hub's assembled reply.
    pub(crate) fn exchange(&self, rank: usize, parts: &[&[f32]]) -> Result<Vec<Parts>, CommError> {
        if let Some(e) = self.failure() {
            return Err(e);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        let depth = {
            let mut pending = lock(&self.ep.pending);
            pending.insert((self.id, seq), tx);
            pending.len()
        };
        self.ep.note_pending_depth(depth);
        let frame = Frame::Exchange {
            group: self.id,
            seq,
            world: self.world as u64,
            member: rank as u64,
            parts: parts.iter().map(|p| p.to_vec()).collect(),
        };
        if let Err(e) = self.ep.send(&frame) {
            let depth = {
                let mut pending = lock(&self.ep.pending);
                pending.remove(&(self.id, seq));
                pending.len()
            };
            self.ep.note_pending_depth(depth);
            return Err(e);
        }
        let timeout = self.timeout();
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                let depth = {
                    let mut pending = lock(&self.ep.pending);
                    pending.remove(&(self.id, seq));
                    pending.len()
                };
                self.ep.note_pending_depth(depth);
                let e = CommError::Timeout { waited: timeout };
                self.poison_tree(e);
                // Tell the hub so the peers already waiting on this group
                // wake with the same error instead of each burning its own
                // deadline.
                let _ = self.ep.send(&Frame::Abort { group: self.id, err: e });
                Err((*lock(&self.broken)).unwrap_or(e))
            }
            Err(RecvTimeoutError::Disconnected) => Err(self
                .failure()
                .unwrap_or(CommError::Io { kind: std::io::ErrorKind::BrokenPipe })),
        }
    }

    /// Create (or fetch) the child group for `key`. The id is a
    /// deterministic hash of the parent id and the key, so every member's
    /// process derives the same identity with no extra coordination.
    pub(crate) fn child(self: &Arc<Self>, key: ChildKey, world: usize) -> Arc<SocketGroup> {
        let mut children = lock(&self.children);
        Arc::clone(children.entry(key).or_insert_with(|| {
            SocketGroup::new(child_id(self.id, key), world, self.timeout(), Arc::clone(&self.ep))
        }))
    }
}

/// FNV-1a over (parent id, key): the derived group identity.
fn child_id(parent: u64, key: ChildKey) -> u64 {
    let (tag, a, b) = match key {
        ChildKey::Split { call, color } => (1u8, call, color as u64),
        ChildKey::Rebuild { epoch, removed } => (2u8, epoch, removed as u64),
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &x in bytes {
            h ^= u64::from(x);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&parent.to_le_bytes());
    eat(&[tag]);
    eat(&a.to_le_bytes());
    eat(&b.to_le_bytes());
    h
}

// ---- public entry points ---------------------------------------------------

/// Everything a worker process needs to join a socket world.
#[derive(Debug, Clone)]
pub struct SocketWorldConfig {
    /// Rendezvous address: `host:port` for TCP or `unix:<path>`.
    pub addr: String,
    /// This process's world rank.
    pub rank: usize,
    /// World size.
    pub world: usize,
    /// Initial rendezvous deadline (later adjustable with
    /// [`Communicator::set_timeout`]).
    pub timeout: Duration,
    /// Connection-setup retry policy.
    pub retry: RetryPolicy,
    /// How long to tolerate a silent hub before failing the connection.
    pub heartbeat_grace: Duration,
}

impl SocketWorldConfig {
    /// Defaults for everything but the identity: [`DEFAULT_TIMEOUT`],
    /// [`RetryPolicy::default`], [`DEFAULT_HEARTBEAT_GRACE`].
    pub fn new(addr: impl Into<String>, rank: usize, world: usize) -> Self {
        SocketWorldConfig {
            addr: addr.into(),
            rank,
            world,
            timeout: DEFAULT_TIMEOUT,
            retry: RetryPolicy::default(),
            heartbeat_grace: DEFAULT_HEARTBEAT_GRACE,
        }
    }
}

/// Join a socket world: connect to the hub (under the retry policy), say
/// hello, and return this rank's world [`Communicator`]. The first
/// collective is the first rendezvous — like the local transport, creation
/// itself does not block on peers.
pub fn connect_world(cfg: SocketWorldConfig) -> Result<Communicator, CommError> {
    assert!(cfg.world > 0, "world must be non-empty");
    assert!(cfg.rank < cfg.world, "rank out of range");
    let stream = cfg
        .retry
        .run(|| Stream::connect(&cfg.addr))
        .map_err(|e| CommError::Io { kind: e.kind() })?;
    let reader = stream.try_clone().map_err(|e| CommError::Io { kind: e.kind() })?;
    let raw = stream.try_clone().map_err(|e| CommError::Io { kind: e.kind() })?;
    let counters = socket_counters();
    let ep = Arc::new(Endpoint {
        writer: Mutex::new(BufWriter::new(stream)),
        raw,
        world_rank: cfg.rank,
        pending: Mutex::new(HashMap::new()),
        groups: Mutex::new(HashMap::new()),
        failed: Mutex::new(None),
        last_inbound: Mutex::new(Instant::now()),
        heartbeat_grace: cfg.heartbeat_grace,
        tx_bytes: counters.counter(&format!("socket.rank{}.tx_bytes", cfg.rank)),
        rx_bytes: counters.counter(&format!("socket.rank{}.rx_bytes", cfg.rank)),
        pending_depth: counters.counter(&format!("socket.rank{}.pending", cfg.rank)),
    });
    ep.send(&Frame::Hello { rank: cfg.rank as u64, world: cfg.world as u64 })?;
    let weak = Arc::downgrade(&ep);
    std::thread::Builder::new()
        .name(format!("mics-sock-rx-{}", cfg.rank))
        .spawn(move || reader_loop(reader, weak))
        .expect("cannot spawn socket reader thread");
    let weak = Arc::downgrade(&ep);
    std::thread::Builder::new()
        .name(format!("mics-sock-hb-{}", cfg.rank))
        .spawn(move || heartbeat_loop(weak))
        .expect("cannot spawn heartbeat thread");
    let group = SocketGroup::new(WORLD_GROUP, cfg.world, cfg.timeout, ep);
    Ok(Communicator::from_backend(cfg.rank, Backend::Socket(group)))
}

/// Spawn an in-process hub on an ephemeral loopback port and connect
/// `world` ranks to it — the socket analogue of
/// [`Communicator::create_world`], used by the thread harness
/// ([`crate::run_ranks_on`]). Returns the hub (keep it alive) and the
/// communicators.
pub(crate) fn create_socket_world(world: usize) -> (Hub, Vec<Communicator>) {
    let hub = Hub::spawn("127.0.0.1:0").expect("cannot start in-process hub");
    let addr = hub.addr().to_string();
    let comms = (0..world)
        .map(|rank| {
            connect_world(SocketWorldConfig::new(addr.clone(), rank, world))
                .expect("cannot connect rank to in-process hub")
        })
        .collect();
    (hub, comms)
}

/// Which transport created a communicator (used by harnesses and tests to
/// assert parity).
pub(crate) fn kind_of(backend: &Backend) -> TransportKind {
    match backend {
        Backend::Local(_) => TransportKind::Local,
        Backend::Socket(_) => TransportKind::Socket,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_codec() {
        let frames = vec![
            Frame::Hello { rank: 3, world: 8 },
            Frame::Exchange {
                group: 42,
                seq: 7,
                world: 4,
                member: 2,
                parts: vec![vec![1.0, -2.5, f32::from_bits(0x7fc0_0001)], vec![], vec![0.0]],
            },
            Frame::Abort {
                group: 9,
                err: CommError::Timeout { waited: Duration::from_millis(250) },
            },
            Frame::Failed { rank: 5 },
            Frame::Ping,
            Frame::Pong,
            Frame::Bye,
            Frame::Reply { group: 1, seq: 0, all: vec![vec![vec![7.25]], vec![]] },
            Frame::GroupPoison { group: 2, err: CommError::RankFailed { rank: 1 } },
            Frame::WorldPoison { err: CommError::PeerDisconnected { rank: 0 } },
            Frame::WorldPoison { err: CommError::Io { kind: std::io::ErrorKind::ConnectionReset } },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let mut r = &bytes[..];
            let back = read_frame(&mut r).expect("decode");
            // Compare bit patterns (NaN payloads must survive the wire).
            assert_eq!(format!("{back:?}"), format!("{frame:?}"));
            assert!(r.is_empty(), "frame must consume all bytes");
        }
    }

    #[test]
    fn payload_bits_survive_the_wire_exactly() {
        // The quantized collectives ship encoded blocks as f32 bit patterns;
        // the codec must be a bijection on bits, NaNs included.
        let words: Vec<f32> =
            [0x0000_0000u32, 0xffff_ffff, 0x7fc0_0000, 0x7f80_0001, 0x8000_0000, 0xdead_beef]
                .iter()
                .map(|&b| f32::from_bits(b))
                .collect();
        let frame =
            Frame::Exchange { group: 0, seq: 0, world: 1, member: 0, parts: vec![words.clone()] };
        let mut r = &encode_frame(&frame)[..];
        match read_frame(&mut r).unwrap() {
            Frame::Exchange { parts, .. } => {
                let got: Vec<u32> = parts[0].iter().map(|x| x.to_bits()).collect();
                let want: Vec<u32> = words.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let bytes = encode_frame(&Frame::Hello { rank: 1, world: 2 });
        let mut r = &bytes[..bytes.len() - 3];
        assert!(read_frame(&mut r).is_err(), "truncated payload must fail");

        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err(), "absurd length prefix must fail");
    }

    #[test]
    fn child_ids_are_distinct_and_deterministic() {
        let a = child_id(WORLD_GROUP, ChildKey::Split { call: 0, color: 0 });
        let b = child_id(WORLD_GROUP, ChildKey::Split { call: 0, color: 1 });
        let c = child_id(WORLD_GROUP, ChildKey::Split { call: 1, color: 0 });
        let d = child_id(WORLD_GROUP, ChildKey::Rebuild { epoch: 0, removed: 0 });
        let again = child_id(WORLD_GROUP, ChildKey::Split { call: 0, color: 0 });
        assert_eq!(a, again);
        let mut ids = vec![a, b, c, d, WORLD_GROUP];
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "derived ids must not collide");
    }

    #[test]
    fn wire_counters_track_bytes_and_pending_drains_to_zero() {
        let tx = socket_counters().counter("socket.rank0.tx_bytes");
        let rx = socket_counters().counter("socket.rank0.rx_bytes");
        let (tx0, rx0) = (tx.get(), rx.get());
        let (_hub, comms) = create_socket_world(2);
        assert!(tx.get() > tx0, "Hello frame must be counted as sent bytes");
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| std::thread::spawn(move || c.all_reduce(&[c.rank() as f32 + 1.0])))
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![3.0]);
        }
        assert!(rx.get() > rx0, "hub replies must be counted as received bytes");
        assert_eq!(
            socket_counters().counter("socket.rank0.pending").get(),
            0,
            "no exchange may be left in flight after the collective completes"
        );
    }

    #[test]
    fn io_error_kinds_round_trip_or_degrade_to_other() {
        for &kind in WIRE_KINDS {
            let (code, arg) = err_to_wire(CommError::Io { kind });
            assert_eq!(err_from_wire(code, arg).unwrap(), CommError::Io { kind });
        }
        let (code, arg) = err_to_wire(CommError::Io { kind: std::io::ErrorKind::OutOfMemory });
        assert_eq!(
            err_from_wire(code, arg).unwrap(),
            CommError::Io { kind: std::io::ErrorKind::Other },
            "unlisted kinds degrade to Other, not garbage"
        );
    }
}
