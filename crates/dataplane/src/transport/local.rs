//! The shared-memory transport: ranks are threads of one process, a group's
//! rendezvous is a sense-reversing barrier over in-process deposit slots.
//!
//! This is the original data plane, refactored onto the transport
//! contract's single primitive — the sequenced [`Inner::exchange`]. All
//! collective semantics (concatenation order, rank-order folds, shape
//! checks) live above the transport in [`crate::Communicator`], so this
//! module is only the rendezvous: deposit, meet, copy out, meet again.

use super::{ChildKey, Parts};
use crate::{lock, CommError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sense-reversing rendezvous barrier with failure detection.
///
/// `generation` is the failure-detection epoch: it advances only when all
/// `world` ranks arrive. A failure (explicit or timeout) permanently breaks
/// the epoch: `broken` is set, every current waiter is woken, and every
/// later wait fails fast.
#[derive(Debug)]
pub(crate) struct Barrier {
    lock: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    broken: Option<CommError>,
}

impl Barrier {
    pub(crate) fn new() -> Self {
        Barrier {
            lock: Mutex::new(BarrierState { arrived: 0, generation: 0, broken: None }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self, world: usize, timeout: Duration) -> Result<(), CommError> {
        let mut st = lock(&self.lock);
        if let Some(e) = st.broken {
            return Err(e);
        }
        st.arrived += 1;
        if st.arrived == world {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        let deadline = Instant::now() + timeout;
        while st.generation == gen {
            if let Some(e) = st.broken {
                return Err(e);
            }
            let now = Instant::now();
            if now >= deadline {
                let e = CommError::Timeout { waited: timeout };
                st.broken = Some(e);
                self.cv.notify_all();
                return Err(e);
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
        }
        Ok(())
    }

    pub(crate) fn poison(&self, error: CommError) {
        let mut st = lock(&self.lock);
        if st.broken.is_none() {
            st.broken = Some(error);
        }
        self.cv.notify_all();
    }

    pub(crate) fn broken(&self) -> Option<CommError> {
        lock(&self.lock).broken
    }
}

/// Shared state of one communicator group on the local transport.
#[derive(Debug)]
pub(crate) struct Inner {
    world: usize,
    barrier: Barrier,
    /// Deposit slots, one batch of buffers per rank (single-buffer
    /// collectives use one-part batches).
    slots: Mutex<Vec<Parts>>,
    /// Sub-groups created by `split` / `remove_rank`; the map is the
    /// cross-rank rendezvous on the child's shared state.
    children: Mutex<HashMap<ChildKey, Arc<Inner>>>,
    /// Rendezvous deadline in nanoseconds, shared by the whole group.
    timeout_nanos: AtomicU64,
}

impl Inner {
    pub(crate) fn new(world: usize, timeout: Duration) -> Self {
        Inner {
            world,
            barrier: Barrier::new(),
            slots: Mutex::new(vec![Vec::new(); world]),
            children: Mutex::new(HashMap::new()),
            timeout_nanos: AtomicU64::new(timeout.as_nanos() as u64),
        }
    }

    pub(crate) fn world(&self) -> usize {
        self.world
    }

    pub(crate) fn timeout(&self) -> Duration {
        Duration::from_nanos(self.timeout_nanos.load(Ordering::Relaxed))
    }

    pub(crate) fn set_timeout(&self, timeout: Duration) {
        self.timeout_nanos.store(timeout.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn failure(&self) -> Option<CommError> {
        self.barrier.broken()
    }

    /// Poison this group and every descendant (splits and rebuilds) so no
    /// surviving rank can block on a rendezvous the failed rank will never
    /// join. `rank` is this group's id for the failed rank; descendants
    /// report the same id (their members may not even contain it — the
    /// poison is conservative by design).
    pub(crate) fn mark_failed(&self, rank: usize) {
        self.barrier.poison(CommError::RankFailed { rank });
        for child in lock(&self.children).values() {
            child.mark_failed(rank);
        }
    }

    pub(crate) fn barrier(&self) -> Result<(), CommError> {
        self.barrier.wait(self.world, self.timeout())
    }

    /// The sequenced exchange: deposit this rank's batch, rendezvous, copy
    /// out every rank's batch, rendezvous again (the trailing barrier keeps
    /// a racing next call from overwriting slots a slow peer still reads).
    pub(crate) fn exchange(&self, rank: usize, parts: &[&[f32]]) -> Result<Vec<Parts>, CommError> {
        lock(&self.slots)[rank] = parts.iter().map(|p| p.to_vec()).collect();
        self.barrier()?;
        let all = lock(&self.slots).clone();
        self.barrier()?;
        Ok(all)
    }

    /// First caller creates the child group's shared state; later callers
    /// (the other member ranks) fetch the same `Arc`.
    pub(crate) fn child(self: &Arc<Self>, key: ChildKey, world: usize) -> Arc<Inner> {
        let mut children = lock(&self.children);
        Arc::clone(
            children.entry(key).or_insert_with(|| Arc::new(Inner::new(world, self.timeout()))),
        )
    }
}
