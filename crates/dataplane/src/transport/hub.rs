//! The rendezvous switchboard of the socket transport.
//!
//! A [`Hub`] is the star center every rank process connects to. It holds no
//! collective semantics at all: it matches the `world` halves of each
//! `(group, seq)` exchange and answers every member with all members'
//! batches in member order. Folds, layouts, and shape checks all stay
//! rank-side, which is what keeps socket results bit-identical to the
//! shared-memory transport.
//!
//! What the hub *does* own is failure detection and propagation:
//!
//! * a connection that reaches EOF (SIGKILLed process) or goes silent past
//!   the heartbeat grace without a clean `Bye` poisons the world —
//!   `WorldPoison(PeerDisconnected)` to every surviving rank, every
//!   existing group poisoned, every held exchange resolved;
//! * an explicit `Failed { rank }` report (a panicking worker) does the
//!   same with `RankFailed`;
//! * a member's `Abort` (deadline expired) poisons only that group, waking
//!   the peers already held on it with the same error.
//!
//! Groups created *after* a poison event start fresh — that is what lets
//! survivors shrink with `remove_rank` and keep collectivizing over the
//! same hub connection.
//!
//! Outbound frames go through a **bounded** per-connection queue
//! ([`SEND_QUEUE_DEPTH`]) drained by a dedicated writer thread: a slow or
//! wedged receiver exerts backpressure on the hub instead of ballooning
//! its memory, and the heartbeat sweeper reaps it if it stays silent.

use super::socket::{encode_frame, read_frame, Frame, Stream};
use crate::{lock, CommError};
use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Outbound frames queued per connection before the hub considers the
/// receiver wedged — the bounded send queue that provides backpressure.
pub const SEND_QUEUE_DEPTH: usize = 64;

/// How long the hub tolerates a silent connection before treating it as
/// dead (frames and pings both refresh liveness).
pub const DEFAULT_HUB_GRACE: Duration = Duration::from_secs(5);

/// One member's half of a pending exchange: who to answer, and with what.
struct Half {
    conn: u64,
    parts: Vec<Vec<f32>>,
}

/// An exchange the hub is holding until all `world` members arrive.
struct PendingExchange {
    world: usize,
    by_member: BTreeMap<u64, Half>,
}

struct ConnHandle {
    tx: SyncSender<Vec<u8>>,
    stream: Stream,
    last_seen: Mutex<Instant>,
}

impl ConnHandle {
    /// Queue a frame; a full queue blocks briefly, then the connection is
    /// declared wedged and cut (backpressure with an upper bound, so one
    /// stuck receiver cannot wedge the whole hub).
    fn send(&self, frame: &Frame) {
        match self.tx.try_send(encode_frame(frame)) {
            Ok(()) => {}
            Err(TrySendError::Full(buf)) => {
                if self.tx.send(buf).is_err() {
                    self.stream.shutdown();
                }
            }
            Err(TrySendError::Disconnected(_)) => self.stream.shutdown(),
        }
    }
}

struct HubState {
    conns: Mutex<HashMap<u64, Arc<ConnHandle>>>,
    pending: Mutex<HashMap<(u64, u64), PendingExchange>>,
    /// Poison state per group id; an entry exists once a group has been
    /// seen. Groups poisoned by a process failure answer any further
    /// exchange with `GroupPoison` immediately.
    groups: Mutex<HashMap<u64, Option<CommError>>>,
    /// The most recent process-level failure. Kept so a rank whose
    /// connection registers *after* the `WorldPoison` broadcast (startup
    /// races a crash) is greeted with the poison instead of missing it.
    world_failed: Mutex<Option<CommError>>,
    grace: Duration,
}

impl HubState {
    fn broadcast(&self, frame: &Frame) {
        for conn in lock(&self.conns).values() {
            conn.send(frame);
        }
    }

    /// Process-level failure: poison every known group, resolve every held
    /// exchange, and tell every connected rank.
    fn world_failure(&self, err: CommError) {
        lock(&self.world_failed).get_or_insert(err);
        for poisoned in lock(&self.groups).values_mut() {
            if poisoned.is_none() {
                *poisoned = Some(err);
            }
        }
        lock(&self.pending).clear();
        self.broadcast(&Frame::WorldPoison { err });
    }

    /// A connection ended without a clean `Bye`.
    fn conn_lost(&self, rank: u64) {
        let removed = lock(&self.conns).remove(&rank);
        if let Some(conn) = removed {
            conn.stream.shutdown();
            self.world_failure(CommError::PeerDisconnected { rank: rank as usize });
        }
    }

    fn on_frame(&self, rank: u64, frame: Frame) -> std::io::Result<()> {
        match frame {
            Frame::Exchange { group, seq, world, member, parts } => {
                let reply_err = {
                    let mut groups = lock(&self.groups);
                    *groups.entry(group).or_insert(None)
                };
                if let Some(err) = reply_err {
                    if let Some(conn) = lock(&self.conns).get(&rank) {
                        conn.send(&Frame::GroupPoison { group, err });
                    }
                    return Ok(());
                }
                let completed = {
                    let mut pending = lock(&self.pending);
                    let entry = pending.entry((group, seq)).or_insert_with(|| PendingExchange {
                        world: world as usize,
                        by_member: BTreeMap::new(),
                    });
                    entry.by_member.insert(member, Half { conn: rank, parts });
                    if entry.by_member.len() == entry.world {
                        pending.remove(&(group, seq))
                    } else {
                        None
                    }
                };
                if let Some(done) = completed {
                    let all: Vec<Vec<Vec<f32>>> =
                        done.by_member.values().map(|h| h.parts.clone()).collect();
                    let reply = Frame::Reply { group, seq, all };
                    let conns = lock(&self.conns);
                    for half in done.by_member.values() {
                        if let Some(conn) = conns.get(&half.conn) {
                            conn.send(&reply);
                        }
                    }
                }
            }
            Frame::Abort { group, err } => {
                lock(&self.groups).insert(group, Some(err));
                let mut pending = lock(&self.pending);
                let dead: Vec<(u64, u64)> =
                    pending.keys().filter(|(g, _)| *g == group).copied().collect();
                let conns = lock(&self.conns);
                for key in dead {
                    if let Some(p) = pending.remove(&key) {
                        for half in p.by_member.values() {
                            if let Some(conn) = conns.get(&half.conn) {
                                conn.send(&Frame::GroupPoison { group, err });
                            }
                        }
                    }
                }
            }
            Frame::Failed { rank } => {
                self.world_failure(CommError::RankFailed { rank: rank as usize });
            }
            Frame::Ping => {
                if let Some(conn) = lock(&self.conns).get(&rank) {
                    conn.send(&Frame::Pong);
                }
            }
            Frame::Pong => {}
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected frame from rank {rank}: {other:?}"),
                ));
            }
        }
        Ok(())
    }
}

fn conn_loop(state: Arc<HubState>, stream: Stream) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    // The first frame must identify the rank.
    let rank = match read_frame(&mut reader) {
        Ok(Frame::Hello { rank, .. }) => rank,
        _ => {
            stream.shutdown();
            return;
        }
    };
    let (tx, rx) = sync_channel::<Vec<u8>>(SEND_QUEUE_DEPTH);
    let handle = Arc::new(ConnHandle { tx, stream, last_seen: Mutex::new(Instant::now()) });
    lock(&state.conns).insert(rank, Arc::clone(&handle));
    // A crash can beat a slow-starting peer's registration: deliver any
    // already-declared world failure to the latecomer explicitly.
    if let Some(err) = *lock(&state.world_failed) {
        handle.send(&Frame::WorldPoison { err });
    }
    // Writer thread: drains the bounded queue. Keeps draining after a write
    // error so blocked senders are never stranded.
    let writer = std::thread::Builder::new()
        .name(format!("mics-hub-tx-{rank}"))
        .spawn(move || {
            let mut out = write_half;
            let mut dead = false;
            while let Ok(buf) = rx.recv() {
                if !dead && std::io::Write::write_all(&mut out, &buf).is_err() {
                    dead = true;
                }
                if !dead && std::io::Write::flush(&mut out).is_err() {
                    dead = true;
                }
            }
        })
        .expect("cannot spawn hub writer thread");
    let mut clean_bye = false;
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Bye) => {
                clean_bye = true;
                break;
            }
            Ok(frame) => {
                *lock(&handle.last_seen) = Instant::now();
                if state.on_frame(rank, frame).is_err() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if clean_bye {
        lock(&state.conns).remove(&rank);
    } else {
        state.conn_lost(rank);
    }
    handle.stream.shutdown();
    drop(handle);
    let _ = writer.join();
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, String),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
            Listener::Unix(l, _) => Stream::Unix(l.accept()?.0),
        })
    }
}

/// The rendezvous switchboard: bind it, hand its [`Hub::addr`] to every
/// worker, keep it alive for the lifetime of the job. Dropping the hub
/// shuts the listener and every connection down.
#[derive(Debug)]
pub struct Hub {
    addr: String,
    state: Arc<HubState>,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    sweeper: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HubState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HubState").field("conns", &lock(&self.conns).len()).finish()
    }
}

impl Hub {
    /// Bind `addr` (`host:port`, `host:0` for an ephemeral port, or
    /// `unix:<path>`) and start serving, with [`DEFAULT_HUB_GRACE`] as the
    /// silent-connection bound.
    pub fn spawn(addr: &str) -> std::io::Result<Hub> {
        Hub::spawn_with_grace(addr, DEFAULT_HUB_GRACE)
    }

    /// [`Hub::spawn`] with an explicit heartbeat grace — how long a silent
    /// rank survives before the hub declares it dead.
    pub fn spawn_with_grace(addr: &str, grace: Duration) -> std::io::Result<Hub> {
        let listener = if let Some(path) = addr.strip_prefix("unix:") {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            Listener::Unix(UnixListener::bind(path)?, path.to_string())
        } else {
            Listener::Tcp(TcpListener::bind(addr)?)
        };
        let bound = match &listener {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            Listener::Unix(_, path) => format!("unix:{path}"),
        };
        let state = Arc::new(HubState {
            conns: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            world_failed: Mutex::new(None),
            grace,
        });
        let stop = Arc::new(AtomicBool::new(false));

        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("mics-hub-accept".into())
            .spawn(move || {
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok(stream) => {
                            let state = Arc::clone(&accept_state);
                            let _ = std::thread::Builder::new()
                                .name("mics-hub-conn".into())
                                .spawn(move || conn_loop(state, stream));
                        }
                        Err(_) => {
                            if accept_stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Transient accept error: back off instead of
                            // spinning.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            })
            .expect("cannot spawn hub accept thread");

        let sweep_state = Arc::clone(&state);
        let sweep_stop = Arc::clone(&stop);
        let sweeper = std::thread::Builder::new()
            .name("mics-hub-sweep".into())
            .spawn(move || {
                while !sweep_stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(100));
                    let stale: Vec<u64> = lock(&sweep_state.conns)
                        .iter()
                        .filter(|(_, c)| lock(&c.last_seen).elapsed() > sweep_state.grace)
                        .map(|(&r, _)| r)
                        .collect();
                    for rank in stale {
                        sweep_state.conn_lost(rank);
                    }
                }
            })
            .expect("cannot spawn hub sweeper thread");

        Ok(Hub { addr: bound, state, stop, accept: Some(accept), sweeper: Some(sweeper) })
    }

    /// The bound rendezvous address workers should connect to (`host:port`
    /// or `unix:<path>`; for a `host:0` bind this carries the real port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Number of currently connected ranks.
    pub fn connections(&self) -> usize {
        lock(&self.state.conns).len()
    }

    /// Stop serving: close every connection and join the service threads.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = Stream::connect(&self.addr);
        for conn in lock(&self.state.conns).drain() {
            conn.1.stream.shutdown();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        if let Some(path) = self.addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        self.shutdown();
    }
}
