//! Transport layer: where a communicator group's rendezvous actually runs.
//!
//! The [`crate::Communicator`] API is transport-agnostic. Every collective
//! lowers to one primitive — a **sequenced exchange** in which each member
//! deposits a batch of `f32` buffers and receives every member's batch in
//! rank order — plus a barrier and group creation (split / shrink). Two
//! implementations stand behind that contract:
//!
//! * `local` — the original shared-memory rendezvous: ranks are threads of
//!   one process, deposits go through in-process slots, and failure
//!   detection is a poisoned sense-reversing barrier.
//! * [`socket`] — a multi-process dataplane: every rank owns one
//!   length-prefixed framed connection (TCP or Unix-domain) to a
//!   [`hub::Hub`] switchboard, payloads are serialized on a real wire
//!   (quantized collectives transport `mics-compress` encoded blocks
//!   verbatim), and failure detection adds two *physical* paths on top of
//!   the logical timeout: connection teardown (a SIGKILLed rank's socket
//!   closes) and per-connection heartbeats (a wedged peer stops ponging).
//!
//! Both transports feed the same poison/abort state, so
//! `CommError`-surfacing, `remove_rank` shrink/rebuild, and the
//! non-blocking engine work unchanged over either.

use crate::CommError;
use std::time::Duration;

pub mod hub;
pub(crate) mod local;
pub mod socket;

pub use hub::Hub;
pub use socket::{connect_world, socket_counters, SocketWorldConfig, DATAPLANE_PROCESS};

/// Which transport a rank harness runs its communicator groups on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Shared-memory rendezvous between threads of one process.
    Local,
    /// Length-prefixed socket framing through a [`Hub`] switchboard — the
    /// transport that gives each rank a real failure domain.
    Socket,
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Local => write!(f, "local"),
            TransportKind::Socket => write!(f, "socket"),
        }
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "local" => Ok(TransportKind::Local),
            "socket" => Ok(TransportKind::Socket),
            other => Err(format!("unknown transport '{other}' (expected local or socket)")),
        }
    }
}

/// Bounded retry with exponential backoff — the connection-setup policy of
/// the socket transport (a worker often starts before its hub finishes
/// binding, and public-cloud rendezvous addresses flap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff slept after the first failed attempt.
    pub initial_backoff: Duration,
    /// Multiplier applied to the backoff after every further failure.
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 25,
            initial_backoff: Duration::from_millis(10),
            multiplier: 1.6,
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that tries exactly once (no sleeps).
    pub fn once() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The backoff slept after failed attempt `attempt` (0-based): the
    /// exponential `initial · multiplierᵃ`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let grown = self.initial_backoff.as_secs_f64() * self.multiplier.powi(attempt as i32);
        self.initial_backoff.max(Duration::from_secs_f64(grown)).min(self.max_backoff)
    }

    /// Worst-case total time spent sleeping across all attempts.
    pub fn total_backoff(&self) -> Duration {
        (0..self.max_attempts.saturating_sub(1)).map(|a| self.backoff(a)).sum()
    }

    /// Run `op` until it succeeds or the attempt budget is exhausted,
    /// sleeping the exponential backoff between attempts. Returns the last
    /// error when every attempt fails.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        assert!(self.max_attempts >= 1, "a retry policy must allow at least one attempt");
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 >= self.max_attempts => return Err(e),
                Err(_) => {
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

/// Identity of a sub-group derived from a parent group. Both transports use
/// it to agree — without any extra coordination — on *which* child group a
/// collective `split`/`remove_rank` call refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ChildKey {
    /// `split` call number `call` (per parent), color class `color`.
    Split {
        /// Index of the `split` call on the parent (SPMD-mirrored).
        call: u64,
        /// The color this rank passed.
        color: i64,
    },
    /// `remove_rank` call number `epoch` (per parent), removing `removed`.
    Rebuild {
        /// Index of the `remove_rank` call on the parent (SPMD-mirrored).
        epoch: u64,
        /// The rank being removed.
        removed: usize,
    },
}

/// One rank's deposited batch: the `parts` of a coalesced collective
/// (single-buffer collectives use a one-part batch).
pub(crate) type Parts = Vec<Vec<f32>>;

/// The transport backing one communicator group, from one rank's side.
#[derive(Debug, Clone)]
pub(crate) enum Backend {
    /// Shared-memory rendezvous state.
    Local(std::sync::Arc<local::Inner>),
    /// A group multiplexed over this rank's hub connection.
    Socket(std::sync::Arc<socket::SocketGroup>),
}

impl Backend {
    pub(crate) fn world(&self) -> usize {
        match self {
            Backend::Local(i) => i.world(),
            Backend::Socket(g) => g.world(),
        }
    }

    pub(crate) fn timeout(&self) -> Duration {
        match self {
            Backend::Local(i) => i.timeout(),
            Backend::Socket(g) => g.timeout(),
        }
    }

    pub(crate) fn set_timeout(&self, timeout: Duration) {
        match self {
            Backend::Local(i) => i.set_timeout(timeout),
            Backend::Socket(g) => g.set_timeout(timeout),
        }
    }

    pub(crate) fn failure(&self) -> Option<CommError> {
        match self {
            Backend::Local(i) => i.failure(),
            Backend::Socket(g) => g.failure(),
        }
    }

    pub(crate) fn mark_failed(&self, rank: usize) {
        match self {
            Backend::Local(i) => i.mark_failed(rank),
            Backend::Socket(g) => g.mark_failed(rank),
        }
    }

    /// Block until every member of the group arrives (or the group fails).
    pub(crate) fn barrier(&self, rank: usize) -> Result<(), CommError> {
        match self {
            Backend::Local(i) => i.barrier(),
            // One empty-batch exchange: the hub releases it exactly when all
            // members' frames arrived — a rendezvous on the wire.
            Backend::Socket(g) => g.exchange(rank, &[]).map(|_| ()),
        }
    }

    /// The sequenced exchange every collective lowers to: deposit `parts`,
    /// receive every member's batch in member order.
    pub(crate) fn exchange(&self, rank: usize, parts: &[&[f32]]) -> Result<Vec<Parts>, CommError> {
        match self {
            Backend::Local(i) => i.exchange(rank, parts),
            Backend::Socket(g) => g.exchange(rank, parts),
        }
    }

    /// Create (or fetch) the child group `key` with `world` members; the
    /// caller joins as member `rank`. Creation itself is local — the first
    /// collective on the child is its first rendezvous.
    pub(crate) fn child(&self, key: ChildKey, world: usize) -> Backend {
        match self {
            Backend::Local(i) => Backend::Local(i.child(key, world)),
            Backend::Socket(g) => Backend::Socket(g.child(key, world)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(60),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(60), "capped");
        assert_eq!(p.backoff(8), Duration::from_millis(60), "stays capped");
    }

    #[test]
    fn run_retries_until_success_within_budget() {
        let p = RetryPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_micros(50),
            multiplier: 1.5,
            max_backoff: Duration::from_micros(200),
        };
        let mut calls = 0;
        let out = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err("not yet")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn run_gives_up_after_max_attempts_with_last_error() {
        let p = RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_micros(10),
            multiplier: 1.0,
            max_backoff: Duration::from_micros(10),
        };
        let mut calls = 0;
        let out: Result<(), String> = p.run(|| {
            calls += 1;
            Err(format!("attempt {calls}"))
        });
        assert_eq!(calls, 4, "bounded: exactly max_attempts tries");
        assert_eq!(out, Err("attempt 4".to_string()));
    }

    #[test]
    fn total_backoff_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.total_backoff() < Duration::from_secs(15), "{:?}", p.total_backoff());
    }

    #[test]
    fn transport_kind_round_trips_through_strings() {
        for kind in [TransportKind::Local, TransportKind::Socket] {
            assert_eq!(kind.to_string().parse::<TransportKind>(), Ok(kind));
        }
        assert!("carrier-pigeon".parse::<TransportKind>().is_err());
    }
}
