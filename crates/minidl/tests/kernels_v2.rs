//! Kernels-v2 contract tests: the SIMD dispatch layer must (a) stay within
//! float tolerance of the scalar `kernels::reference` drift oracle, (b) be
//! **bit-identical** across every knob configuration — SIMD on/off/auto ×
//! any worker-pool thread count — on adversarial shapes, (c) keep whole
//! LM training runs byte-stable across those knobs, and (d) actually
//! exercise both the SIMD and the scalar-fallback paths at runtime.
//!
//! The bit-identity claims are structural (one generic lane body per
//! kernel, fused multiply-add in both instantiations, reduction axes never
//! split across threads); these tests are the empirical check that the
//! structure holds on real shapes, including lane tails, unit and empty
//! dimensions, and reductions straddling the KC cache tile.

use mics_minidl::kernels::{self, reference};
use mics_minidl::{train_lm, LmSetup, LossScale, SyncSchedule, TinyTransformer, TrainOutcome};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The knob matrix exercised by every bit-identity check: SIMD forced off,
/// forced on (a no-op downgrade on hosts without AVX2+FMA), and
/// autodetected, each at 1, 2, and 5 worker threads.
const CONFIGS: &[(Option<bool>, usize)] = &[
    (Some(false), 1),
    (Some(false), 2),
    (Some(false), 5),
    (Some(true), 1),
    (Some(true), 2),
    (Some(true), 5),
    (None, 1),
    (None, 5),
];

/// Serializes every test that touches the process-global kernel knobs and
/// restores autodetection when dropped.
struct Knobs(#[allow(dead_code)] MutexGuard<'static, ()>);

fn configure(simd: Option<bool>, threads: Option<usize>) -> Knobs {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard =
        LOCK.get_or_init(Default::default).lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    kernels::set_simd(simd);
    kernels::set_kernel_threads(threads);
    Knobs(guard)
}

impl Drop for Knobs {
    fn drop(&mut self) {
        kernels::set_simd(None);
        kernels::set_kernel_threads(None);
    }
}

/// Deterministic pseudo-random buffer in roughly [-1, 1].
fn buf(len: usize, salt: u64) -> Vec<f32> {
    let mut s = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

/// Shapes chosen to hit every special case in the kernels: empty and unit
/// dimensions, sub-lane tails, exact lane/unroll multiples, and reductions
/// that straddle (and exactly fill) the KC = 256 cache tile.
fn shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (0, 3, 4),
        (3, 0, 4),
        (3, 4, 0),
        (1, 1, 1),
        (1, 257, 1),
        (4, 256, 8),
        (5, 257, 9),
        (2, 512, 3),
        (7, 9, 33),
        (12, 64, 20),
        (1, 8, 16),
        (9, 300, 2),
        (33, 31, 17),
    ];
    // A seeded sweep of small random shapes, with the reduction axis pushed
    // around the KC boundary every few draws.
    let mut s = 0x5eed_u64;
    let mut next = |lim: u64| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 33) % lim
    };
    for i in 0..30 {
        let k = if i % 5 == 0 { 250 + next(14) as usize } else { 1 + next(40) as usize };
        shapes.push((1 + next(24) as usize, k, 1 + next(40) as usize));
    }
    shapes
}

/// All seven public kernels evaluated at one shape, concatenated in a fixed
/// order so one `Vec` captures the whole dispatch surface for comparison.
/// `m×k` weights/`m`-vectors reuse the matmul operands where shapes align.
fn dispatch_all(m: usize, k: usize, n: usize) -> Vec<f32> {
    let a = buf(m * k, 1);
    let b = buf(k * n, 2);
    let dout = buf(m * n, 3);
    let x = buf(k, 4);
    let bias_k = buf(k, 5);
    let dvec = buf(m, 6);
    let bias_n = buf(n, 7);

    let mut out = kernels::matmul(&a, &b, m, k, n);
    out.extend(kernels::matmul_bt(&dout, &b, m, n, k));
    let mut gw = buf(k * n, 8);
    kernels::acc_matmul_at(&a, &dout, m, k, n, &mut gw);
    out.extend(gw);
    out.extend(kernels::matvec_bias(&a, &dvec, &x, m, k));
    out.extend(kernels::matvec_t(&a, &dvec, m, k));
    let mut go = buf(m * k, 9);
    kernels::acc_outer(&dvec, &x, &mut go);
    out.extend(go);
    let mut rows = buf(m * n, 10);
    kernels::add_bias_rows(&mut rows, &bias_n, m, n);
    out.extend(rows);
    out.extend(bias_k); // keep operand coverage honest if signatures change
    out
}

/// The same surface through the scalar drift oracle.
fn reference_all(m: usize, k: usize, n: usize) -> Vec<f32> {
    let a = buf(m * k, 1);
    let b = buf(k * n, 2);
    let dout = buf(m * n, 3);
    let x = buf(k, 4);
    let bias_k = buf(k, 5);
    let dvec = buf(m, 6);
    let bias_n = buf(n, 7);

    let mut out = reference::matmul(&a, &b, m, k, n);
    out.extend(reference::matmul_bt(&dout, &b, m, n, k));
    let mut gw = buf(k * n, 8);
    reference::acc_matmul_at(&a, &dout, m, k, n, &mut gw);
    out.extend(gw);
    out.extend(reference::matvec_bias(&a, &dvec, &x, m, k));
    out.extend(reference::matvec_t(&a, &dvec, m, k));
    let mut go = buf(m * k, 9);
    reference::acc_outer(&dvec, &x, &mut go);
    out.extend(go);
    let mut rows = buf(m * n, 10);
    reference::add_bias_rows(&mut rows, &bias_n, m, n);
    out.extend(rows);
    out.extend(bias_k);
    out
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// (a) + (b): every shape, every knob configuration — tolerance against the
/// scalar reference, exact bits against the canonical (scalar, 1-thread)
/// dispatch. FMA legitimately shifts low bits vs the unfused reference, so
/// the oracle check is a tolerance, never an equality.
#[test]
fn dispatch_matches_reference_and_is_bit_stable_across_knobs() {
    let _knobs = configure(Some(false), Some(1));
    for (m, k, n) in shapes() {
        let canonical = dispatch_all(m, k, n);
        let oracle = reference_all(m, k, n);
        assert_eq!(canonical.len(), oracle.len());
        for (i, (got, want)) in canonical.iter().zip(&oracle).enumerate() {
            let tol = 1e-4 + 1e-3 * want.abs();
            assert!(
                (got - want).abs() <= tol,
                "{m}x{k}x{n} element {i}: dispatch {got} vs reference {want}"
            );
        }
        for &(simd, threads) in CONFIGS {
            kernels::set_simd(simd);
            kernels::set_kernel_threads(Some(threads));
            let got = dispatch_all(m, k, n);
            assert_eq!(
                bits(&got),
                bits(&canonical),
                "{m}x{k}x{n}: simd={simd:?} threads={threads} drifted from the \
                 scalar single-threaded bits"
            );
            kernels::set_simd(Some(false));
            kernels::set_kernel_threads(Some(1));
        }
    }
}

/// The v1 blocked kernels stay on the same drift oracle (they are the
/// perf-diff baseline, so they must remain correct, not just fast).
#[test]
fn blocked_kernels_stay_on_the_drift_oracle() {
    let _knobs = configure(Some(false), Some(1));
    for (m, k, n) in [(5usize, 257usize, 9usize), (12, 64, 20), (1, 1, 1)] {
        let a = buf(m * k, 1);
        let b = buf(k * n, 2);
        let got = kernels::blocked::matmul(&a, &b, m, k, n);
        let want = reference::matmul(&a, &b, m, k, n);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 + 1e-3 * w.abs(),
                "blocked matmul {m}x{k}x{n} element {i}: {g} vs {w}"
            );
        }
    }
}

fn lm_run() -> TrainOutcome {
    let cfg = LmSetup {
        model: TinyTransformer::new(7, 5, 8, 2, 12, 1),
        world: 2,
        partition_size: 2,
        micro_batch: 4,
        accum_steps: 2,
        iterations: 6,
        lr: 0.02,
        seed: 424242,
        quantize: false,
        loss_scale: LossScale::None,
        clip_grad_norm: None,
        comm_quant: None,
        prefetch_depth: 0,
    };
    train_lm(&cfg, SyncSchedule::TwoHop)
}

/// (c) The fig15-style LM training run — transformer forward/backward,
/// gradient synchronization, Adam — is **byte-identical** whether the
/// kernels run scalar or SIMD, on one thread or several. This is the
/// end-to-end version of the per-kernel bit checks: if any kernel's
/// reduction order depended on a knob, six optimizer steps would amplify
/// the drift into visibly different losses.
#[test]
fn lm_training_is_byte_identical_across_simd_and_thread_knobs() {
    let _knobs = configure(Some(false), Some(1));
    let base = lm_run();
    for (simd, threads) in [(Some(false), 4), (None, 1), (None, 3), (Some(true), 2)] {
        kernels::set_simd(simd);
        kernels::set_kernel_threads(Some(threads));
        let got = lm_run();
        assert_eq!(
            bits(&got.losses),
            bits(&base.losses),
            "losses drifted at simd={simd:?} threads={threads}"
        );
        assert_eq!(
            bits(&got.final_params),
            bits(&base.final_params),
            "final parameters drifted at simd={simd:?} threads={threads}"
        );
    }
}

/// (d) Runtime feature detection: autodetection engages the SIMD path on
/// capable hosts, the `MICS_KERNEL_SIMD`-style override forces the scalar
/// fallback *on the same host*, and the two paths produce the same bits.
/// The counters prove each path actually executed — on a SIMD host this
/// test exercises the fallback, which is exactly the coverage a
/// SIMD-capable CI box would otherwise never get.
#[test]
fn runtime_detection_engages_simd_and_fallback_paths() {
    let _knobs = configure(None, Some(1));
    kernels::init();
    let stat = |name: &str| {
        kernels::kernel_stats()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    let a = buf(64 * 64, 1);
    let b = buf(64 * 64, 2);

    let (simd_before, fallback_before) = (stat("kernel.simd_calls"), stat("kernel.fallback_calls"));
    let auto = kernels::matmul(&a, &b, 64, 64, 64);
    if kernels::simd_available() {
        assert!(kernels::simd_active(), "autodetection must engage SIMD where available");
        assert!(stat("kernel.simd_calls") > simd_before, "SIMD path did not run");
    } else {
        assert!(!kernels::simd_active());
        assert!(stat("kernel.fallback_calls") > fallback_before, "fallback path did not run");
    }

    kernels::set_simd(Some(false));
    let fallback_before = stat("kernel.fallback_calls");
    let forced = kernels::matmul(&a, &b, 64, 64, 64);
    assert!(!kernels::simd_active(), "forced-off must win over detection");
    assert!(stat("kernel.fallback_calls") > fallback_before, "forced fallback did not run");
    assert_eq!(bits(&auto), bits(&forced), "SIMD and fallback paths disagree");

    // The worker pool dispatches when the thread override asks for
    // parallelism and the kernel is large enough to amortize it.
    kernels::set_kernel_threads(Some(5));
    let dispatches_before = stat("kernel.pool_dispatches");
    let _ = kernels::matmul(&a, &b, 64, 64, 64);
    assert!(
        stat("kernel.pool_dispatches") > dispatches_before,
        "5-thread override on a 64³ matmul must use the pool"
    );
}
