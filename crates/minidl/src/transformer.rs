//! A miniature causal transformer language model with hand-written
//! backpropagation — the same model family as the paper's 1.5B-parameter
//! fidelity run (§5.4), scaled to sizes where training on thread-ranks and
//! finite-difference gradient checking are practical.
//!
//! The architecture is a standard pre-LN decoder: token + position
//! embeddings, `L × [LayerNorm → multi-head causal self-attention →
//! residual → LayerNorm → ReLU MLP → residual]`, a final LayerNorm and an
//! (untied) vocabulary head trained with mean cross-entropy over next-token
//! targets. Parameters live in one flat `Vec<f32>` so the ZeRO/MiCS flat
//! sharding applies unchanged.

use crate::kernels::{acc_matmul_at, add_bias_rows, matmul, matmul_bt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the miniature transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TinyTransformer {
    /// Vocabulary size.
    pub vocab: usize,
    /// Context length (tokens per sequence fed to the model).
    pub seq_len: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (`d_model % heads == 0`).
    pub heads: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Transformer layers.
    pub layers: usize,
}

const LN_EPS: f32 = 1e-5;

impl TinyTransformer {
    /// Validate and build a configuration.
    pub fn new(
        vocab: usize,
        seq_len: usize,
        d_model: usize,
        heads: usize,
        ffn: usize,
        layers: usize,
    ) -> Self {
        assert!(vocab >= 2 && seq_len >= 2 && layers >= 1);
        assert!(heads >= 1 && d_model.is_multiple_of(heads), "heads must divide d_model");
        TinyTransformer { vocab, seq_len, d_model, heads, ffn, layers }
    }

    fn per_layer_params(&self) -> usize {
        let d = self.d_model;
        let f = self.ffn;
        2 * d // ln1 γ, β
            + 4 * d * d // wq, wk, wv, wo
            + 2 * d // ln2 γ, β
            + d * f + f // w1, b1
            + f * d + d // w2, b2
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        let d = self.d_model;
        self.vocab * d // token embedding
            + self.seq_len * d // position embedding
            + self.layers * self.per_layer_params()
            + 2 * d // final LayerNorm
            + d * self.vocab + self.vocab // head
    }

    /// Deterministic scaled-normal initialization.
    pub fn init_params(&self, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed ^ INIT_SEED_SALT);
        let d = self.d_model;
        let mut p = Vec::with_capacity(self.num_params());
        let mat = |rng: &mut StdRng, rows: usize, cols: usize, out: &mut Vec<f32>| {
            let std = (2.0 / (rows + cols) as f32).sqrt();
            for _ in 0..rows * cols {
                out.push(rng.gen_range(-std..std));
            }
        };
        mat(&mut rng, self.vocab, d, &mut p); // tok emb
        mat(&mut rng, self.seq_len, d, &mut p); // pos emb
        for _ in 0..self.layers {
            p.extend(std::iter::repeat_n(1.0, d)); // ln1 γ
            p.extend(std::iter::repeat_n(0.0, d)); // ln1 β
            for _ in 0..4 {
                mat(&mut rng, d, d, &mut p); // wq wk wv wo
            }
            p.extend(std::iter::repeat_n(1.0, d)); // ln2 γ
            p.extend(std::iter::repeat_n(0.0, d)); // ln2 β
            mat(&mut rng, d, self.ffn, &mut p); // w1
            p.extend(std::iter::repeat_n(0.0, self.ffn)); // b1
            mat(&mut rng, self.ffn, d, &mut p); // w2
            p.extend(std::iter::repeat_n(0.0, d)); // b2
        }
        p.extend(std::iter::repeat_n(1.0, d)); // final γ
        p.extend(std::iter::repeat_n(0.0, d)); // final β
        mat(&mut rng, d, self.vocab, &mut p); // head
        p.extend(std::iter::repeat_n(0.0, self.vocab)); // head bias
        debug_assert_eq!(p.len(), self.num_params());
        p
    }

    /// Cross-entropy loss and flat parameter gradient (mean over sequences
    /// and positions) for a micro-batch of sequences.
    ///
    /// `tokens` is row-major `batch × (seq_len + 1)`: positions `0..T` are
    /// inputs, positions `1..T+1` the next-token targets.
    pub fn loss_and_grad(&self, params: &[f32], tokens: &[usize]) -> (f32, Vec<f32>) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        let t = self.seq_len;
        assert!(tokens.len().is_multiple_of(t + 1), "tokens not a whole number of sequences");
        let batch = tokens.len() / (t + 1);
        assert!(batch > 0, "empty micro-batch");
        for &tok in tokens {
            assert!(tok < self.vocab, "token id {tok} out of vocabulary");
        }
        let mut grad = vec![0.0f32; params.len()];
        let mut loss = 0.0f32;
        let scale = 1.0 / (batch * t) as f32;
        for b in 0..batch {
            let seq = &tokens[b * (t + 1)..(b + 1) * (t + 1)];
            loss += self.sample(params, seq, scale, &mut grad);
        }
        (loss, grad)
    }

    /// Forward+backward for one sequence; returns the (scaled) loss and
    /// accumulates gradients.
    fn sample(&self, p: &[f32], seq: &[usize], scale: f32, g: &mut [f32]) -> f32 {
        let t = self.seq_len;
        let d = self.d_model;
        let v = self.vocab;
        let h = self.heads;
        let dk = d / h;
        let f = self.ffn;
        let inputs = &seq[..t];
        let targets = &seq[1..t + 1];

        // ---- parameter slicing helpers (flat offsets) ----
        let mut off = 0usize;
        let mut take = |len: usize| {
            let r = off..off + len;
            off += len;
            r
        };
        let r_tok = take(v * d);
        let r_pos = take(t * d);
        let mut r_layers = Vec::with_capacity(self.layers);
        for _ in 0..self.layers {
            r_layers.push((
                take(d),     // ln1 γ
                take(d),     // ln1 β
                take(d * d), // wq
                take(d * d), // wk
                take(d * d), // wv
                take(d * d), // wo
                take(d),     // ln2 γ
                take(d),     // ln2 β
                take(d * f), // w1
                take(f),     // b1
                take(f * d), // w2
                take(d),     // b2
            ));
        }
        let r_lnf_g = take(d);
        let r_lnf_b = take(d);
        let r_head = take(d * v);
        let r_head_b = take(v);
        debug_assert_eq!(off, p.len());

        // ---- forward ----
        // Embeddings.
        let mut x = vec![0.0f32; t * d];
        for (pos, &tok) in inputs.iter().enumerate() {
            for i in 0..d {
                x[pos * d + i] = p[r_tok.clone()][tok * d + i] + p[r_pos.clone()][pos * d + i];
            }
        }

        struct LayerCache {
            x_in: Vec<f32>,
            ln1: LnCache,
            q: Vec<f32>,
            k: Vec<f32>,
            vv: Vec<f32>,
            att: Vec<f32>, // h × t × t softmax probabilities
            ctx: Vec<f32>,
            x_mid: Vec<f32>,
            ln2: LnCache,
            z1: Vec<f32>, // pre-activation, t × f
            a1: Vec<f32>, // post-ReLU
        }
        let mut caches: Vec<LayerCache> = Vec::with_capacity(self.layers);

        for lr in &r_layers {
            let (g1, b1l, wq, wk, wv, wo, g2, b2l, w1, bb1, w2, bb2) = lr;
            let x_in = x.clone();
            let ln1 = layer_norm(&x, &p[g1.clone()], &p[b1l.clone()], t, d);
            let q = matmul(&ln1.y, &p[wq.clone()], t, d, d);
            let k = matmul(&ln1.y, &p[wk.clone()], t, d, d);
            let vv = matmul(&ln1.y, &p[wv.clone()], t, d, d);
            // Causal multi-head attention.
            let mut att = vec![0.0f32; h * t * t];
            let mut ctx = vec![0.0f32; t * d];
            let inv = 1.0 / (dk as f32).sqrt();
            for head in 0..h {
                let base = head * dk;
                for i in 0..t {
                    // scores over j ≤ i, softmax with max-subtraction.
                    let mut mx = f32::NEG_INFINITY;
                    let mut row = vec![0.0f32; i + 1];
                    for (j, rj) in row.iter_mut().enumerate() {
                        let mut s = 0.0;
                        for c in 0..dk {
                            s += q[i * d + base + c] * k[j * d + base + c];
                        }
                        *rj = s * inv;
                        mx = mx.max(*rj);
                    }
                    let mut denom = 0.0;
                    for rj in row.iter_mut() {
                        *rj = (*rj - mx).exp();
                        denom += *rj;
                    }
                    for (j, rj) in row.iter().enumerate() {
                        let a = rj / denom;
                        att[head * t * t + i * t + j] = a;
                        for c in 0..dk {
                            ctx[i * d + base + c] += a * vv[j * d + base + c];
                        }
                    }
                }
            }
            let attn_out = matmul(&ctx, &p[wo.clone()], t, d, d);
            let mut x_mid = x_in.clone();
            add_into(&mut x_mid, &attn_out);
            let ln2 = layer_norm(&x_mid, &p[g2.clone()], &p[b2l.clone()], t, d);
            let mut z1 = matmul(&ln2.y, &p[w1.clone()], t, d, f);
            add_bias_rows(&mut z1, &p[bb1.clone()], t, f);
            let a1: Vec<f32> = z1.iter().map(|&z| z.max(0.0)).collect();
            let mut ffn_out = matmul(&a1, &p[w2.clone()], t, f, d);
            add_bias_rows(&mut ffn_out, &p[bb2.clone()], t, d);
            let mut x_out = x_mid.clone();
            add_into(&mut x_out, &ffn_out);
            caches.push(LayerCache { x_in, ln1, q, k, vv, att, ctx, x_mid, ln2, z1, a1 });
            x = x_out;
        }
        let lnf = layer_norm(&x, &p[r_lnf_g.clone()], &p[r_lnf_b.clone()], t, d);
        let mut logits = matmul(&lnf.y, &p[r_head.clone()], t, d, v);
        add_bias_rows(&mut logits, &p[r_head_b.clone()], t, v);

        // Cross-entropy + dlogits.
        let mut loss = 0.0f32;
        let mut dlogits = vec![0.0f32; t * v];
        for pos in 0..t {
            let row = &logits[pos * v..(pos + 1) * v];
            let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let denom: f32 = row.iter().map(|&z| (z - mx).exp()).sum();
            let target = targets[pos];
            loss += (denom.ln() + mx - row[target]) * scale;
            for j in 0..v {
                let prob = (row[j] - mx).exp() / denom;
                dlogits[pos * v + j] = (prob - if j == target { 1.0 } else { 0.0 }) * scale;
            }
        }

        // ---- backward ----
        // Head.
        acc_matmul_at(&lnf.y, &dlogits, t, d, v, &mut g[r_head.clone()]);
        for pos in 0..t {
            for j in 0..v {
                g[r_head_b.clone()][j] += dlogits[pos * v + j];
            }
        }
        let d_lnf_y = matmul_bt(&dlogits, &p[r_head.clone()], t, v, d);
        let mut dx = {
            let (dg, db) = adjacent_mut(g, r_lnf_g.clone(), r_lnf_b.clone());
            layer_norm_backward(&lnf, &d_lnf_y, &p[r_lnf_g.clone()], t, d, dg, db)
        };

        for (li, lr) in r_layers.iter().enumerate().rev() {
            let (g1, b1l, wq, wk, wv, wo, g2, b2l, w1, bb1, w2, bb2) = lr;
            let c = &caches[li];
            // x_out = x_mid + ffn_out: dx flows to both.
            // FFN backward.
            let d_ffn = dx.clone();
            for pos in 0..t {
                for j in 0..d {
                    g[bb2.clone()][j] += d_ffn[pos * d + j];
                }
            }
            acc_matmul_at(&c.a1, &d_ffn, t, f, d, &mut g[w2.clone()]);
            let mut d_a1 = matmul_bt(&d_ffn, &p[w2.clone()], t, d, f);
            for (da, &z) in d_a1.iter_mut().zip(c.z1.iter()) {
                if z <= 0.0 {
                    *da = 0.0;
                }
            }
            for pos in 0..t {
                for j in 0..f {
                    g[bb1.clone()][j] += d_a1[pos * f + j];
                }
            }
            acc_matmul_at(&c.ln2.y, &d_a1, t, d, f, &mut g[w1.clone()]);
            let d_ln2_y = matmul_bt(&d_a1, &p[w1.clone()], t, f, d);
            let d_from_ln2 = {
                let (dg, db) = adjacent_mut(g, g2.clone(), b2l.clone());
                layer_norm_backward(&c.ln2, &d_ln2_y, &p[g2.clone()], t, d, dg, db)
            };
            // d(x_mid) = dx (residual) + LN2 input gradient.
            let mut d_xmid = dx;
            add_into(&mut d_xmid, &d_from_ln2);

            // x_mid = x_in + attn_out.
            let d_attn = d_xmid.clone();
            acc_matmul_at(&c.ctx, &d_attn, t, d, d, &mut g[wo.clone()]);
            let d_ctx = matmul_bt(&d_attn, &p[wo.clone()], t, d, d);
            // Attention backward.
            let mut d_q = vec![0.0f32; t * d];
            let mut d_k = vec![0.0f32; t * d];
            let mut d_v = vec![0.0f32; t * d];
            let dk_inv = 1.0 / (dk as f32).sqrt();
            for head in 0..h {
                let base = head * dk;
                for i in 0..t {
                    // dA_ij and softmax jacobian (rows are independent).
                    let mut d_att = vec![0.0f32; i + 1];
                    for (j, da) in d_att.iter_mut().enumerate() {
                        let mut s = 0.0;
                        for cc in 0..dk {
                            s += d_ctx[i * d + base + cc] * c.vv[j * d + base + cc];
                        }
                        *da = s;
                    }
                    let row = &c.att[head * t * t + i * t..head * t * t + i * t + i + 1];
                    let dot: f32 = d_att.iter().zip(row.iter()).map(|(a, b)| a * b).sum();
                    for j in 0..=i {
                        let ds = row[j] * (d_att[j] - dot) * dk_inv;
                        for cc in 0..dk {
                            d_q[i * d + base + cc] += ds * c.k[j * d + base + cc];
                            d_k[j * d + base + cc] += ds * c.q[i * d + base + cc];
                        }
                        // dV from d_ctx via att.
                        for cc in 0..dk {
                            d_v[j * d + base + cc] += row[j] * d_ctx[i * d + base + cc];
                        }
                    }
                }
            }
            acc_matmul_at(&c.ln1.y, &d_q, t, d, d, &mut g[wq.clone()]);
            acc_matmul_at(&c.ln1.y, &d_k, t, d, d, &mut g[wk.clone()]);
            acc_matmul_at(&c.ln1.y, &d_v, t, d, d, &mut g[wv.clone()]);
            let mut d_ln1_y = matmul_bt(&d_q, &p[wq.clone()], t, d, d);
            add_into(&mut d_ln1_y, &matmul_bt(&d_k, &p[wk.clone()], t, d, d));
            add_into(&mut d_ln1_y, &matmul_bt(&d_v, &p[wv.clone()], t, d, d));
            let d_from_ln1 = {
                let (dg, db) = adjacent_mut(g, g1.clone(), b1l.clone());
                layer_norm_backward(&c.ln1, &d_ln1_y, &p[g1.clone()], t, d, dg, db)
            };
            let mut d_xin = d_xmid;
            add_into(&mut d_xin, &d_from_ln1);
            let _ = &c.x_in;
            let _ = &c.x_mid;
            dx = d_xin;
        }

        // Embedding gradients.
        for (pos, &tok) in inputs.iter().enumerate() {
            for i in 0..d {
                g[r_tok.clone()][tok * d + i] += dx[pos * d + i];
                g[r_pos.clone()][pos * d + i] += dx[pos * d + i];
            }
        }
        loss
    }
}

/// Salt mixed into user seeds for parameter initialization.
const INIT_SEED_SALT: u64 = 0x1b5a_92c4_77fe_3d01;

/// Split two *adjacent* parameter ranges of `g` into simultaneous mutable
/// slices (γ immediately followed by β in the flat layout).
fn adjacent_mut(
    g: &mut [f32],
    a: std::ops::Range<usize>,
    b: std::ops::Range<usize>,
) -> (&mut [f32], &mut [f32]) {
    debug_assert_eq!(a.end, b.start, "ranges must be adjacent");
    let len = a.len();
    g[a.start..b.end].split_at_mut(len)
}

fn add_into(acc: &mut [f32], x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += b;
    }
}

/// LayerNorm forward cache.
struct LnCache {
    /// Normalized inputs x̂ (pre-scale).
    xhat: Vec<f32>,
    /// 1/√(σ²+ε) per position.
    inv_std: Vec<f32>,
    /// Output y = γ·x̂ + β.
    y: Vec<f32>,
}

fn layer_norm(x: &[f32], gamma: &[f32], beta: &[f32], t: usize, d: usize) -> LnCache {
    let mut xhat = vec![0.0f32; t * d];
    let mut inv_std = vec![0.0f32; t];
    let mut y = vec![0.0f32; t * d];
    for pos in 0..t {
        let row = &x[pos * d..(pos + 1) * d];
        let mean: f32 = row.iter().sum::<f32>() / d as f32;
        let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + LN_EPS).sqrt();
        inv_std[pos] = inv;
        for i in 0..d {
            let xh = (row[i] - mean) * inv;
            xhat[pos * d + i] = xh;
            y[pos * d + i] = gamma[i] * xh + beta[i];
        }
    }
    LnCache { xhat, inv_std, y }
}

/// LayerNorm backward: returns dx and accumulates dγ/dβ.
fn layer_norm_backward(
    cache: &LnCache,
    dy: &[f32],
    gamma: &[f32],
    t: usize,
    d: usize,
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) -> Vec<f32> {
    let mut dx = vec![0.0f32; t * d];
    for pos in 0..t {
        let xh = &cache.xhat[pos * d..(pos + 1) * d];
        let dyr = &dy[pos * d..(pos + 1) * d];
        let mut sum_g = 0.0f32; // Σ γ·dy
        let mut sum_gx = 0.0f32; // Σ γ·dy·x̂
        for i in 0..d {
            dgamma[i] += dyr[i] * xh[i];
            dbeta[i] += dyr[i];
            sum_g += gamma[i] * dyr[i];
            sum_gx += gamma[i] * dyr[i] * xh[i];
        }
        let inv = cache.inv_std[pos];
        let nd = d as f32;
        for i in 0..d {
            dx[pos * d + i] = (gamma[i] * dyr[i] - sum_g / nd - xh[i] * sum_gx / nd) * inv;
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TinyTransformer {
        TinyTransformer::new(7, 5, 8, 2, 12, 2)
    }

    fn sample_tokens(model: &TinyTransformer, seed: usize, batch: usize) -> Vec<usize> {
        (0..batch * (model.seq_len + 1)).map(|i| (i * 31 + seed * 17 + 3) % model.vocab).collect()
    }

    #[test]
    fn param_count_consistent_with_init() {
        let m = tiny();
        assert_eq!(m.init_params(1).len(), m.num_params());
        // Hand count: 7·8 + 5·8 + 2·(16 + 256 + 16 + 8·12+12 + 12·8+8) + 16 + 8·7+7
        let per_layer = 2 * 8 + 4 * 64 + 2 * 8 + 8 * 12 + 12 + 12 * 8 + 8;
        assert_eq!(m.num_params(), 56 + 40 + 2 * per_layer + 16 + 63);
    }

    #[test]
    fn loss_is_log_vocab_at_init_scale() {
        // With near-zero logits, CE ≈ ln(vocab).
        let m = tiny();
        let p = m.init_params(3);
        let toks = sample_tokens(&m, 0, 4);
        let (loss, _) = m.loss_and_grad(&p, &toks);
        let lnv = (m.vocab as f32).ln();
        assert!((loss - lnv).abs() < 0.8, "loss {loss} vs ln(V) {lnv}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = TinyTransformer::new(5, 4, 6, 2, 8, 1);
        let mut p = m.init_params(11);
        let toks = sample_tokens(&m, 2, 2);
        let (_, grad) = m.loss_and_grad(&p, &toks);
        let eps = 3e-3f32;
        let mut checked = 0;
        // Sample parameters across all regions.
        for idx in (0..m.num_params()).step_by(7) {
            let orig = p[idx];
            p[idx] = orig + eps;
            let (lp, _) = m.loss_and_grad(&p, &toks);
            p[idx] = orig - eps;
            let (lm, _) = m.loss_and_grad(&p, &toks);
            p[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad[idx];
            assert!(
                (numeric - analytic).abs() < 1.5e-2f32.max(0.15 * numeric.abs()),
                "param {idx}: numeric {numeric} vs analytic {analytic}"
            );
            checked += 1;
        }
        assert!(checked > 50, "checked {checked} parameters");
    }

    #[test]
    fn batch_gradient_is_mean_of_sequences() {
        let m = tiny();
        let p = m.init_params(5);
        let t1 = sample_tokens(&m, 1, 1);
        let t2 = sample_tokens(&m, 9, 1);
        let (_, g1) = m.loss_and_grad(&p, &t1);
        let (_, g2) = m.loss_and_grad(&p, &t2);
        let both: Vec<usize> = [t1, t2].concat();
        let (_, gb) = m.loss_and_grad(&p, &both);
        for i in (0..m.num_params()).step_by(13) {
            let mean = (g1[i] + g2[i]) / 2.0;
            assert!((gb[i] - mean).abs() < 1e-5, "index {i}: {mean} vs {}", gb[i]);
        }
    }

    #[test]
    fn causality_later_tokens_do_not_affect_earlier_logits_gradient() {
        // Changing the last input token must not change the gradient
        // contribution of the first position's prediction — verified
        // indirectly: loss at position 0 is unchanged.
        let m = tiny();
        let p = m.init_params(8);
        let mut toks = sample_tokens(&m, 3, 1);
        let (l_full, _) = m.loss_and_grad(&p, &toks);
        // Perturb the final *input* token (position T-1). Positions 0..T-2
        // of the loss are unaffected by causality; only the last
        // prediction's CE changes.
        let t = m.seq_len;
        toks[t - 1] = (toks[t - 1] + 1) % m.vocab;
        let (l_perturbed, _) = m.loss_and_grad(&p, &toks);
        assert_ne!(l_full, l_perturbed, "the last position's loss must change");
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let m = tiny();
        let mut p = m.init_params(21);
        let toks = sample_tokens(&m, 4, 4);
        let (l0, g) = m.loss_and_grad(&p, &toks);
        for (pi, gi) in p.iter_mut().zip(g.iter()) {
            *pi -= 0.25 * gi;
        }
        let (l1, _) = m.loss_and_grad(&p, &toks);
        assert!(l1 < l0, "{l1} !< {l0}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_bad_tokens() {
        let m = tiny();
        let p = m.init_params(1);
        let mut toks = sample_tokens(&m, 0, 1);
        toks[0] = m.vocab;
        let _ = m.loss_and_grad(&p, &toks);
    }

    #[test]
    fn deterministic() {
        let m = tiny();
        let p = m.init_params(2);
        let toks = sample_tokens(&m, 6, 3);
        assert_eq!(m.loss_and_grad(&p, &toks), m.loss_and_grad(&p, &toks));
    }
}
