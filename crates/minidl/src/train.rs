//! Data-parallel training loops over the real data plane, under the three
//! gradient-synchronization schedules the paper compares (§3.4, §5.4).
//!
//! Since the schedule-IR refactor the engine is an *interpreter*: each run
//! lowers its schedule to the same [`StepProgram`] the simulator backend
//! costs (see [`step_program`] and `mics-core::schedule`), and every rank
//! walks that program each iteration, executing the ops whose group
//! contains it with the real `mics-dataplane` communicators. The codec
//! annotations on the ops carry the compression-scope rules, so no
//! schedule-specific wire logic lives here — the fidelity claim is
//! structural: the dataplane executes the exact op sequence the simulator
//! prices.

use crate::adam::Adam;
use crate::checkpoint::TrainState;
use crate::data::TeacherDataset;
use crate::executor::{ExecLane, LaneStats, SpanRecorder};
use crate::nn::Mlp;
use crate::scaler::{has_overflow, LossScale, ScalerSnapshot, ScalerState};
use mics_cluster::Rank;
use mics_compress::{CompressionConfig, QuantScheme};
use mics_core::config::MicroSync;
use mics_core::schedule::{
    reshape, Geometry, GradSource, LayerSchedule, OpKind, Pass, PipelineSpec, ScheduleSpec,
    StepProgram,
};
use mics_dataplane::quantized::{
    quantized_all_reduce, quantized_reduce_scatter, try_quantized_all_gather,
    try_quantized_all_reduce, try_quantized_reduce_scatter,
};
use mics_dataplane::{
    quantized_all_gather, run_ranks_on, CollectiveHandle, Communicator, TransportKind,
};
use mics_simnet::SimTime;
use mics_tensor::dtype::quantize_f16;
use mics_tensor::{GatherBuffers, ShardSpec};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Which gradient-synchronization schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncSchedule {
    /// Classic data parallelism: full model replica per rank, one global
    /// all-reduce at the gradient-accumulation boundary.
    Ddp,
    /// DeepSpeed ZeRO-3's default — the "alternative schedule" of §3.4:
    /// every micro-step all-reduces gradients across **all** devices, then
    /// each device keeps only its shard.
    PerMicroStepAllReduce,
    /// MiCS 2-hop (§3.4): every micro-step reduce-scatters within the
    /// partition group; at the accumulation boundary an all-reduce runs
    /// across the replication group.
    TwoHop,
}

/// Configuration of a fidelity training run.
#[derive(Debug, Clone)]
pub struct TrainSetup {
    /// The student model being trained.
    pub model: Mlp,
    /// Number of data-parallel ranks (`n`).
    pub world: usize,
    /// Partition group size (`p`). Must divide `world`. Ignored by
    /// [`SyncSchedule::Ddp`].
    pub partition_size: usize,
    /// Samples per rank per micro-step.
    pub micro_batch: usize,
    /// Micro-steps per iteration (`s`, the gradient-accumulation depth).
    pub accum_steps: usize,
    /// Training iterations (optimizer steps).
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for initialization and data.
    pub seed: u64,
    /// Emulate mixed precision: forward/backward on f16-quantized parameter
    /// copies, fp32 master weights and optimizer states.
    pub quantize: bool,
    /// Loss-scaling policy (mixed-precision stacks use dynamic scaling).
    pub loss_scale: LossScale,
    /// Clip gradients to this global L2 norm before the optimizer step.
    pub clip_grad_norm: Option<f32>,
    /// ZeRO++-style quantized communication: weight gathers and/or gradient
    /// reductions travel block-quantized (`None` = full-precision wire).
    /// Control-plane collectives (overflow flag, loss, clip norm) and the
    /// final parameter gather always stay exact.
    pub comm_quant: Option<CompressionConfig>,
    /// Comm/compute overlap depth (§4). `0` executes every collective
    /// inline and blocking on the rank thread (the historical interpreter).
    /// `≥ 1` turns on the asynchronous executor: micro-step gradient
    /// reductions run on the comm-progress threads and retire at the
    /// program's dependency edges, and the next iteration's parameter
    /// gather is issued ahead into a double buffer. Results are
    /// bit-identical either way — only concurrency changes. The
    /// single-virtual-layer program caps the effective pipeline depth at 1,
    /// so every depth `≥ 1` behaves the same.
    pub prefetch_depth: usize,
}

/// Result of a training run (identical on every rank; returned from rank 0).
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Global mean loss per iteration.
    pub losses: Vec<f32>,
    /// Final full parameter vector.
    pub final_params: Vec<f32>,
    /// Optimizer steps skipped by the loss scaler due to overflow.
    pub skipped_steps: u32,
    /// The loss scale at the end of training.
    pub final_loss_scale: f32,
    /// The communication ops this rank executed in its first iteration, as
    /// indices into the run's [`StepProgram`] — the cross-backend tests
    /// compare this against the op sequence the simulator backend costs.
    pub wire_ops: Vec<usize>,
    /// Measured per-lane busy time, spans, and overlap accounting for
    /// rank 0 (see [`LaneStats`]). Timing-only: excluded from `PartialEq`.
    pub lane_stats: LaneStats,
}

/// Training results compare on *what was computed*, never on how long it
/// took: [`TrainOutcome::lane_stats`] carries wall-clock measurements that
/// differ between two otherwise bit-identical runs, so equality covers
/// every field except it.
impl PartialEq for TrainOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.losses == other.losses
            && self.final_params == other.final_params
            && self.skipped_steps == other.skipped_steps
            && self.final_loss_scale == other.final_loss_scale
            && self.wire_ops == other.wire_ops
    }
}

/// A point-in-time snapshot of a whole training job — the unsharded
/// model/optimizer state plus the loss scaler — sufficient to resume a run
/// bit-exactly from the iteration where the snapshot was taken, under any
/// partition-group size (the state is full; [`resume_from`] re-shards it
/// for the resuming world).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Full (unsharded) parameters and Adam state.
    pub state: TrainState,
    /// Iterations completed at the snapshot; a resumed run starts here.
    pub iterations_done: usize,
    /// Loss-scaler state at the snapshot.
    pub scaler: ScalerSnapshot,
}

/// Landing zone for a mid-run checkpoint, shared between the training ranks
/// and the caller. The ranks of partition group 0 deposit their state
/// shards as the snapshot iteration begins; the caller assembles them with
/// [`CheckpointSink::take`] — even after the run itself has died, which is
/// the point: a checkpoint that only exists in the return value of a killed
/// run is no checkpoint at all.
#[derive(Debug, Default)]
pub struct CheckpointSink {
    inner: Mutex<SinkSlots>,
}

#[derive(Debug, Default)]
struct SinkSlots {
    shards: Vec<Option<TrainState>>,
    numel: usize,
    iterations_done: usize,
    scaler: Option<ScalerSnapshot>,
}

impl CheckpointSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn deposit(
        &self,
        local: usize,
        p: usize,
        numel: usize,
        shard: TrainState,
        iterations_done: usize,
        scaler: ScalerSnapshot,
    ) {
        let mut slots = self.inner.lock().unwrap();
        if slots.shards.len() != p {
            slots.shards = vec![None; p];
        }
        slots.numel = numel;
        slots.iterations_done = iterations_done;
        slots.scaler = Some(scaler);
        slots.shards[local] = Some(shard);
    }

    /// Assemble the checkpoint if every shard landed; `None` if the run died
    /// before reaching the snapshot iteration.
    pub fn take(&self) -> Option<TrainCheckpoint> {
        let slots = self.inner.lock().unwrap();
        if slots.shards.is_empty() || slots.shards.iter().any(|s| s.is_none()) {
            return None;
        }
        let shards: Vec<TrainState> = slots.shards.iter().map(|s| s.clone().unwrap()).collect();
        Some(TrainCheckpoint {
            state: TrainState::unshard(&shards, slots.numel),
            iterations_done: slots.iterations_done,
            scaler: slots.scaler.unwrap(),
        })
    }
}

/// Lower one iteration of `schedule` on `hp.world` thread-ranks to the
/// shared schedule IR — the exact program the training engine's interpreter
/// walks, and the one the cross-backend tests feed to the simulator's
/// `execute_on_sim`. The fidelity model is a single "layer" of
/// `numel` fp32 parameters; timing fields (FLOPs, prefetch, decision
/// overhead) are zero because the interpreter executes real arithmetic,
/// not costs.
pub fn step_program(hp: &ScheduleHyper, schedule: SyncSchedule, numel: usize) -> StepProgram {
    step_program_with_flops(hp, schedule, numel, 0.0, 0.0)
}

/// Like [`step_program`], but attaching per-micro-step forward/backward
/// FLOP costs to the virtual layer. The wire structure and dependency
/// edges are identical to [`step_program`]'s; only the simulator backend
/// reads the FLOPs, so this is what the overlap cross-checks and the
/// `ext_overlap` experiment feed to `execute_on_sim` to make compute
/// occupy nonzero virtual time.
pub fn step_program_with_flops(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    numel: usize,
    fwd_flops: f64,
    bwd_flops: f64,
) -> StepProgram {
    step_spec_with_flops(hp, schedule, numel, fwd_flops, bwd_flops).program()
}

/// The [`ScheduleSpec`] behind [`step_program_with_flops`], exposed so
/// callers can transform it before lowering — [`mics_core::schedule::reshape`]
/// re-emits a spec at a new geometry, and the elastic tests need the spec
/// the original program was emitted from to drive that transition.
pub fn step_spec_with_flops(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    numel: usize,
    fwd_flops: f64,
    bwd_flops: f64,
) -> ScheduleSpec {
    let p = match schedule {
        SyncSchedule::Ddp => 1,
        _ => hp.partition_size,
    };
    let param_bytes = numel as u64 * 4;
    ScheduleSpec {
        n: hp.world,
        // One shared-memory "node": every thread-rank sits on it.
        k: hp.world,
        p_params: p,
        p_grads: p,
        p_opt: p,
        micro_sync: match schedule {
            SyncSchedule::Ddp => MicroSync::LocalAccumulate,
            SyncSchedule::PerMicroStepAllReduce => MicroSync::GlobalAllReduce,
            SyncSchedule::TwoHop => MicroSync::PartitionReduceScatter,
        },
        accum_steps: hp.accum_steps,
        hierarchical: false,
        coalesced: false,
        // The IR records the configured overlap depth, but with a single
        // virtual layer `apply_prefetch` has no intra-iteration edge to
        // add, so the emitted program (and the golden dumps) is unchanged;
        // the executor realizes the overlap across micro-steps and
        // iterations instead.
        prefetch_depth: hp.prefetch_depth,
        decision_overhead: SimTime::ZERO,
        layers: vec![LayerSchedule { param_bytes, fwd_flops, bwd_flops }],
        bucket_bytes: param_bytes.max(1),
        total_param_bytes: param_bytes,
        optimizer_bytes: numel as u64 * 24 / p as u64,
        compression: hp.comm_quant,
        elem_bytes: 4,
    }
}

fn cast_params(src: &[f32], quantize: bool) -> Vec<f32> {
    if quantize {
        src.iter().map(|&x| quantize_f16(x)).collect()
    } else {
        src.to_vec()
    }
}

fn add_into(acc: &mut [f32], x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += *b;
    }
}

fn pad_to(mut v: Vec<f32>, len: usize) -> Vec<f32> {
    debug_assert!(v.len() <= len);
    v.resize(len, 0.0);
    v
}

/// Run the configured training job under `schedule` on `setup.world`
/// thread-ranks and return the (rank-identical) outcome.
///
/// # Panics
/// Panics if `partition_size` does not divide `world` (for the sharded
/// schedules), or if any dimension is zero.
pub fn train(setup: &TrainSetup, schedule: SyncSchedule) -> TrainOutcome {
    let model = setup.model.clone();
    let dataset = TeacherDataset::new(
        &[model.input_dim(), 8, model.output_dim()],
        setup.seed ^ 0x51ab_0c1d_22ee_9f73,
    );
    let init = model.init_params(setup.seed);
    let micro_batch = setup.micro_batch;
    let hp = ScheduleHyper {
        world: setup.world,
        partition_size: setup.partition_size,
        accum_steps: setup.accum_steps,
        iterations: setup.iterations,
        lr: setup.lr,
        quantize: setup.quantize,
        loss_scale: setup.loss_scale,
        clip_grad_norm: setup.clip_grad_norm,
        comm_quant: setup.comm_quant,
        prefetch_depth: setup.prefetch_depth,
    };
    train_generic(&hp, schedule, init, move |params, iter, micro, rank| {
        let (xs, ys) = dataset.micro_batch(iter, micro, rank, micro_batch);
        model.loss_and_grad(params, &xs, &ys)
    })
}

/// Schedule-level hyper-parameters shared by every model family.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleHyper {
    /// Data-parallel ranks.
    pub world: usize,
    /// Partition group size.
    pub partition_size: usize,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Optimizer steps.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// f16-quantize the forward parameter copies.
    pub quantize: bool,
    /// Loss-scaling policy.
    pub loss_scale: LossScale,
    /// Optional global-norm gradient clip.
    pub clip_grad_norm: Option<f32>,
    /// Quantized communication configuration (`None` = exact wire).
    pub comm_quant: Option<CompressionConfig>,
    /// Comm/compute overlap depth: `0` = inline blocking collectives,
    /// `≥ 1` = asynchronous executor (see [`TrainSetup::prefetch_depth`]).
    pub prefetch_depth: usize,
}

/// The schedule engine behind [`train`] (and the language-model trainer in
/// [`crate::lm`]): runs any model whose gradients come from `grad_fn
/// (params, iteration, micro_step, rank) → (loss, grad)`.
pub fn train_generic<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    init: Vec<f32>,
    grad_fn: F,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    train_generic_on(TransportKind::Local, hp, schedule, init, grad_fn)
}

/// [`train_generic`] with an explicit data-plane transport: `Local` runs the
/// ranks as threads over shared memory; `Socket` stands up an in-process
/// rendezvous hub and runs every collective over real framed connections —
/// same schedules, same arithmetic, bit-identical results.
pub fn train_generic_on<F>(
    transport: TransportKind,
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    init: Vec<f32>,
    grad_fn: F,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(transport, hp, schedule, Start::Fresh(init), grad_fn, None)
}

/// Like [`train_generic`], but deposits a [`TrainCheckpoint`] into `sink` as
/// iteration `checkpoint_at` begins (state after `checkpoint_at` completed
/// iterations). The sink outlives the run, so the snapshot survives even if
/// a rank later dies mid-training.
pub fn train_resumable<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    init: Vec<f32>,
    grad_fn: F,
    checkpoint_at: usize,
    sink: &CheckpointSink,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(
        TransportKind::Local,
        hp,
        schedule,
        Start::Fresh(init),
        grad_fn,
        Some((checkpoint_at, sink)),
    )
}

/// Resume a run from a [`TrainCheckpoint`]: iterations
/// `ckpt.iterations_done .. hp.iterations` are (re)executed and the returned
/// [`TrainOutcome::losses`] covers exactly that tail. The checkpoint holds
/// full state, so `hp.partition_size` (and even `hp.world`) may differ from
/// the run that took the snapshot — resuming re-shards on the fly.
pub fn resume_from<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    ckpt: &TrainCheckpoint,
    grad_fn: F,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(TransportKind::Local, hp, schedule, Start::Resume(ckpt), grad_fn, None)
}

/// [`resume_from`] with an explicit data-plane transport and an optional
/// snapshot deposit at `checkpoint` — the building block of the elastic
/// driver, which chains resumed phases at changing geometries, each phase a
/// fresh world that ends by depositing the next phase's starting state.
pub fn resume_resumable_on<F>(
    transport: TransportKind,
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    ckpt: &TrainCheckpoint,
    grad_fn: F,
    checkpoint: Option<(usize, &CheckpointSink)>,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(transport, hp, schedule, Start::Resume(ckpt), grad_fn, checkpoint)
}

/// [`train_resumable`] with an explicit data-plane transport.
pub fn train_resumable_on<F>(
    transport: TransportKind,
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    init: Vec<f32>,
    grad_fn: F,
    checkpoint_at: usize,
    sink: &CheckpointSink,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(transport, hp, schedule, Start::Fresh(init), grad_fn, Some((checkpoint_at, sink)))
}

/// One phase of an elastic run: a flat (pp = 1) geometry and how many
/// optimizer steps to execute there. `iterations: 0` is a pure resharding
/// hop — the world is stood up, the checkpoint re-sharded through it, and
/// the state handed on untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticPhase {
    /// Data-parallel ranks in this phase.
    pub world: usize,
    /// Partition group size in this phase (ignored by DDP).
    pub partition_size: usize,
    /// Optimizer steps to run in this phase.
    pub iterations: usize,
}

/// Train `setup`'s job through a sequence of geometries — the elastic
/// grow/shrink path. Each phase is a fresh `run_ranks` world at that
/// phase's geometry; transitions go checkpoint → [`reshape`] → resume, so
/// the schedule is re-emitted for the new geometry and the state re-sharded
/// through the resharding-checkpoint path. Every transition asserts, at the
/// IR level, that `reshape(old, new)` reproduces the program the resumed
/// phase runs — the program is a function of the geometry, nothing is baked
/// in at emit time.
///
/// The returned outcome spans the whole run: `losses` concatenates the
/// phases, `final_params` is the last phase's state, `wire_ops` is the
/// first phase's rank-0 log. `setup.world`/`partition_size`/`iterations`
/// are superseded by `phases`.
///
/// Continuity contract (asserted by the tests, not here): a zero-iteration
/// reshape round-trip `[G t | →G′ | →G | G t′]` is bit-identical to the
/// uninterrupted `[G t+t′]` run, and a grow transition is bit-identical to
/// a direct [`resume_from`] at the destination geometry.
pub fn train_elastic_on(
    transport: TransportKind,
    setup: &TrainSetup,
    schedule: SyncSchedule,
    phases: &[ElasticPhase],
) -> TrainOutcome {
    assert!(!phases.is_empty(), "an elastic run needs at least one phase");
    let model = setup.model.clone();
    let dataset = TeacherDataset::new(
        &[model.input_dim(), 8, model.output_dim()],
        setup.seed ^ 0x51ab_0c1d_22ee_9f73,
    );
    let init = model.init_params(setup.seed);
    let numel = model.num_params();
    let micro_batch = setup.micro_batch;
    let grad_fn = |params: &[f32], iter: usize, micro: usize, rank: usize| {
        let (xs, ys) = dataset.micro_batch(iter, micro, rank, micro_batch);
        model.loss_and_grad(params, &xs, &ys)
    };
    let hp_at = |ph: &ElasticPhase, end: usize| ScheduleHyper {
        world: ph.world,
        partition_size: ph.partition_size,
        accum_steps: setup.accum_steps,
        iterations: end,
        lr: setup.lr,
        quantize: setup.quantize,
        loss_scale: setup.loss_scale,
        clip_grad_norm: setup.clip_grad_norm,
        comm_quant: setup.comm_quant,
        prefetch_depth: setup.prefetch_depth,
    };
    // The minidl worlds are single-"node": every thread-rank shares memory.
    let geo_of = |ph: &ElasticPhase| {
        let p = match schedule {
            SyncSchedule::Ddp => 1,
            _ => ph.partition_size,
        };
        Geometry::flat(ph.world, ph.world, p)
    };

    let sink = CheckpointSink::new();
    let mut done = phases[0].iterations;
    let mut out = train_resumable_on(
        transport,
        &hp_at(&phases[0], done),
        schedule,
        init,
        grad_fn,
        done,
        &sink,
    );
    for (prev, ph) in phases.iter().zip(&phases[1..]) {
        let ckpt = sink.take().expect("previous phase must deposit its snapshot");
        assert_eq!(ckpt.iterations_done, done, "phase boundary drifted");
        // IR-level transition: re-emitting via `reshape` must produce
        // exactly the program the resumed phase interprets.
        let end = done + ph.iterations;
        let old_spec = step_spec_with_flops(&hp_at(prev, done), schedule, numel, 0.0, 0.0);
        let hp = hp_at(ph, end);
        let reshaped = reshape(&old_spec, &geo_of(prev), &geo_of(ph));
        assert_eq!(
            reshaped.dump(),
            step_program(&hp, schedule, numel).dump(),
            "reshape must re-emit the destination phase's program"
        );
        let tail =
            resume_resumable_on(transport, &hp, schedule, &ckpt, grad_fn, Some((end, &sink)));
        out.losses.extend_from_slice(&tail.losses);
        out.skipped_steps += tail.skipped_steps;
        out.final_params = tail.final_params;
        out.final_loss_scale = tail.final_loss_scale;
        out.lane_stats = tail.lane_stats;
        done = end;
    }
    out
}

/// [`train_elastic_on`] on the in-process local transport.
pub fn train_elastic(
    setup: &TrainSetup,
    schedule: SyncSchedule,
    phases: &[ElasticPhase],
) -> TrainOutcome {
    train_elastic_on(TransportKind::Local, setup, schedule, phases)
}

/// Where a run begins: from scratch, or from a snapshot.
enum Start<'a> {
    Fresh(Vec<f32>),
    Resume(&'a TrainCheckpoint),
}

/// Payload of an async collective: the result plus the span it occupied on
/// the progress thread (ns since the rank's [`SpanRecorder`] epoch).
type TimedVec = (Vec<f32>, u64, u64);

/// How a retired micro-step reduction folds into the gradient accumulation.
enum FoldKind {
    /// A reduce-scatter result: already this rank's shard.
    Shard,
    /// A global all-reduce result: full-length, extract this rank's shard.
    Full,
}

/// An in-flight micro-step gradient reduction on a comm-progress thread.
struct PendingReduce {
    handle: CollectiveHandle<TimedVec>,
    fold: FoldKind,
    op_id: usize,
    /// Compute ops executed when the collective was issued — if more have
    /// run by retirement, the op genuinely overlapped compute.
    computes_at_issue: u64,
}

/// Retire every in-flight reduction in issue order, folding each result
/// into `accum` exactly where the inline interpreter would have — same
/// summation order, bit-identical accumulation. Called at the program's
/// drain points: the WAR edge into the next micro-step's backward compute,
/// micro barriers, the boundary collectives and optimizer (which read the
/// accumulation), and end of iteration.
#[allow(clippy::too_many_arguments)]
fn drain_reduces(
    pending: &mut VecDeque<PendingReduce>,
    accum: &mut [f32],
    spec: &ShardSpec,
    local: usize,
    computes_done: u64,
    mut log_deferred: Option<&mut Vec<usize>>,
    rec: &mut SpanRecorder,
    iter: usize,
) {
    while let Some(p) = pending.pop_front() {
        let (v, start_ns, end_ns) =
            p.handle.wait().unwrap_or_else(|e| panic!("collective aborted: {e}"));
        rec.push(ExecLane::Reduce, "grad-reduce", iter, start_ns, end_ns);
        if computes_done > p.computes_at_issue {
            if let Some(d) = log_deferred.as_deref_mut() {
                d.push(p.op_id);
                let total = d.len();
                rec.sample("deferred reduces (cum)", total as f64);
            }
        }
        match p.fold {
            FoldKind::Shard => add_into(accum, &v),
            FoldKind::Full => add_into(accum, &spec.extract_padded(&v, local)),
        }
    }
}

fn run_engine<F>(
    transport: TransportKind,
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    start: Start<'_>,
    grad_fn: F,
    checkpoint: Option<(usize, &CheckpointSink)>,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    let setup = hp;
    assert!(setup.world > 0 && setup.accum_steps > 0);
    // Resolve the kernel knobs (env, SIMD detection) and warm the worker
    // pool before rank threads spawn: rank threads contend for the pool
    // via try-lock and fall back to inline execution, so the pool must
    // not be lazily constructed mid-step under a rank's foot.
    crate::kernels::init();
    let (init, start_iter, resume): (Vec<f32>, usize, Option<&TrainCheckpoint>) = match start {
        Start::Fresh(init) => (init, 0, None),
        Start::Resume(ckpt) => {
            assert!(
                ckpt.iterations_done <= setup.iterations,
                "checkpoint at iteration {} is beyond the configured {} iterations",
                ckpt.iterations_done,
                setup.iterations
            );
            assert_eq!(
                ckpt.state.params.len(),
                ckpt.state.m.len(),
                "corrupt checkpoint: optimizer does not match parameters"
            );
            (ckpt.state.params.clone(), ckpt.iterations_done, Some(ckpt))
        }
    };
    if let Some((at, _)) = checkpoint {
        assert!(
            (start_iter..=setup.iterations).contains(&at),
            "checkpoint iteration {at} outside the run's [{start_iter}, {}] range",
            setup.iterations
        );
    }
    let p = match schedule {
        SyncSchedule::Ddp => setup.world, // unused, but keeps ShardSpec happy
        _ => {
            assert!(
                setup.partition_size > 0 && setup.world.is_multiple_of(setup.partition_size),
                "partition size {} must divide world {}",
                setup.partition_size,
                setup.world
            );
            setup.partition_size
        }
    };
    let numel = init.len();
    let spec = ShardSpec::new(numel, p);
    let s = setup.accum_steps;
    let world = setup.world;
    let global_scale = 1.0 / (s as f32 * world as f32);
    let grad_fn = &grad_fn;

    // One lowering of the training step — the same IR the simulator backend
    // costs. The emitter owns all wire decisions: which collectives exist
    // (single-rank groups fold locally and must not pay quantization
    // error), and which carry a codec (weight gathers and hop-1 reductions
    // stay inside the partition group; collectives that leave it compress
    // only under `CompressionScope::Everywhere`).
    let prog = step_program(setup, schedule, numel);
    let ir_geo = prog.geo;
    let prog = &prog;

    // Asynchronous-executor configuration, identical on every rank. The
    // gather scheme is hoisted so the cross-iteration prefetch can issue
    // without re-inspecting ops; every gather in a program shares it.
    let async_mode = setup.prefetch_depth >= 1;
    let sharded = !matches!(schedule, SyncSchedule::Ddp);
    let gather_scheme: Option<QuantScheme> = prog
        .ops
        .iter()
        .find_map(|op| match &op.kind {
            OpKind::GatherShards { wire, .. } => Some(wire.scheme),
            _ => None,
        })
        .flatten();
    let has_gathers = prog.ops.iter().any(|op| matches!(op.kind, OpKind::GatherShards { .. }));

    let mut results = run_ranks_on(transport, world, |mut comm| {
        let rank = comm.rank();
        // Partition group: p consecutive ranks. Replication group: ranks
        // with equal local group rank (Figure 2).
        let mut part = comm.split((rank / p) as i64, rank as i64);
        let repl = comm.split((rank % p) as i64, rank as i64);
        let local = part.rank();

        // Executor state: the wall-clock span log, the in-flight micro-step
        // reductions (retired in issue order at the program's drain
        // points), the double-buffer pool for gathered parameters, and the
        // cross-iteration gather prefetch handle.
        let mut rec = SpanRecorder::new();
        let mut pending: VecDeque<PendingReduce> = VecDeque::new();
        let mut pool = (async_mode && sharded && p > 1)
            .then(|| GatherBuffers::new(spec.padded_len(), 2).expect("double-buffer reservation"));
        let mut prefetched: Option<CollectiveHandle<TimedVec>> = None;
        let mut deferred: Vec<usize> = Vec::new();
        let mut prefetched_gathers: u32 = 0;
        let mut computes_done: u64 = 0;

        // Per-schedule parameter/optimizer state: fresh, or rebuilt (and
        // re-sharded to this run's shape) from the checkpoint.
        let mut master_full = init.clone(); // used by DDP only
        let mut master_shard = spec.extract_padded(&init, local); // sharded schedules
        let mut opt = match (schedule, resume) {
            (SyncSchedule::Ddp, None) => Adam::new(numel, setup.lr),
            (SyncSchedule::Ddp, Some(c)) => {
                Adam::from_state(c.state.m.clone(), c.state.v.clone(), c.state.step, setup.lr)
            }
            (_, None) => Adam::new(spec.shard_len(), setup.lr),
            (_, Some(c)) => Adam::from_state(
                spec.extract_padded(&c.state.m, local),
                spec.extract_padded(&c.state.v, local),
                c.state.step,
                setup.lr,
            ),
        };

        let mut scaler = match resume {
            None => ScalerState::new(setup.loss_scale),
            Some(c) => ScalerState::resume(setup.loss_scale, c.scaler),
        };

        // Deposit this rank's shard of a snapshot: partition group 0 holds
        // one full replica between its ranks (rank 0 alone, for DDP).
        let capture = |iter: usize, full: &[f32], shard: &[f32], opt: &Adam, sc: &ScalerState| {
            let (at, sink) = match checkpoint {
                Some((at, sink)) if at == iter => (at, sink),
                _ => return,
            };
            match schedule {
                SyncSchedule::Ddp if rank == 0 => {
                    sink.deposit(0, 1, numel, TrainState::capture(full, opt), at, sc.snapshot());
                }
                SyncSchedule::Ddp => {}
                _ if rank < p => {
                    sink.deposit(
                        local,
                        p,
                        numel,
                        TrainState::capture(shard, opt),
                        at,
                        sc.snapshot(),
                    );
                }
                _ => {}
            }
        };

        let mut losses = Vec::with_capacity(setup.iterations - start_iter);
        let mut wire_log: Vec<usize> = Vec::new();
        for iter in start_iter..setup.iterations {
            capture(iter, &master_full, &master_shard, &opt, &scaler);
            let log_wire = iter == start_iter;
            let cur_scale = scaler.scale();
            let accum_len = match schedule {
                SyncSchedule::Ddp => numel,
                _ => spec.shard_len(),
            };
            let mut accum = vec![0.0f32; accum_len];
            let mut loss_acc = 0.0f32;
            // Interpreter state: the materialized forward parameters, the
            // in-flight micro-step gradient, and the boundary-reduced total.
            let mut fwd: Option<Vec<f32>> = None;
            let mut fwd_from_pool = false;
            let mut grad: Option<Vec<f32>> = None;
            let mut total: Option<Vec<f32>> = None;

            for (op_id, op) in prog.ops.iter().enumerate() {
                match &op.kind {
                    // This engine interprets flat (pp = 1) programs; the
                    // pipeline engine owns the cross-stage boundary ops.
                    OpKind::StageSend { .. } | OpKind::StageRecv { .. } => {
                        unreachable!("pipeline ops in a flat program")
                    }
                    // Thread collectives already rendezvous, so the barrier
                    // is purely a drain: the sim makes every lane wait
                    // here, and the executor retires all in-flight work to
                    // match — this is what keeps the ZeRO-3 schedule's
                    // reductions serialized (§3.4) even in async mode.
                    OpKind::MicroBarrier => {
                        drain_reduces(
                            &mut pending,
                            &mut accum,
                            &spec,
                            local,
                            computes_done,
                            log_wire.then_some(&mut deferred),
                            &mut rec,
                            iter,
                        );
                    }
                    OpKind::GatherShards { wire, .. } => {
                        if !wire.group.contains(Rank(rank), &ir_geo) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        // The master weights do not change within an
                        // iteration, so one materialization serves every
                        // gather op (forward, backward, all micro-steps) —
                        // the interpreter's analogue of MiCS's cached
                        // communication decisions (§4).
                        if fwd.is_none() {
                            if let Some(handle) = prefetched.take() {
                                // Gathered ahead, right after the previous
                                // optimizer step, into the other half of
                                // the double buffer.
                                let (mut full, start_ns, end_ns) = handle
                                    .wait()
                                    .unwrap_or_else(|e| panic!("collective aborted: {e}"));
                                rec.push(
                                    ExecLane::Gather,
                                    "gather-prefetch",
                                    iter,
                                    start_ns,
                                    end_ns,
                                );
                                full.truncate(numel);
                                fwd = Some(full);
                                fwd_from_pool = true;
                            } else {
                                // Cast the fp32 master shard down, then
                                // all-gather the f16 shards within the
                                // partition group (what MiCS and ZeRO-3
                                // both do before forward).
                                let cast = cast_params(&master_shard, setup.quantize);
                                let start_ns = rec.now_ns();
                                let mut full = match (wire.scheme, pool.as_mut()) {
                                    (Some(scheme), _) => quantized_all_gather(&part, &cast, scheme),
                                    (None, Some(pl)) => {
                                        let mut buf = pl.checkout().expect("gather buffer");
                                        buf.clear();
                                        part.try_all_gather_into(&cast, &mut buf)
                                            .unwrap_or_else(|e| panic!("collective aborted: {e}"));
                                        fwd_from_pool = true;
                                        buf
                                    }
                                    (None, None) => part.all_gather(&cast),
                                };
                                rec.push(ExecLane::Gather, "gather", iter, start_ns, rec.now_ns());
                                full.truncate(numel);
                                fwd = Some(full);
                            }
                        }
                    }
                    OpKind::Compute { pass: Pass::Forward, .. } => {
                        if fwd.is_none() {
                            // No gather ops in the program (DDP, or p = 1):
                            // the parameters materialize locally.
                            fwd = Some(match schedule {
                                SyncSchedule::Ddp => cast_params(&master_full, setup.quantize),
                                _ => {
                                    let cast = cast_params(&master_shard, setup.quantize);
                                    let mut full = part.all_gather(&cast);
                                    full.truncate(numel);
                                    full
                                }
                            });
                        }
                        let start_ns = rec.now_ns();
                        let (loss, g) = grad_fn(fwd.as_deref().unwrap(), iter, op.micro, rank);
                        rec.push(ExecLane::Compute, "fwd", iter, start_ns, rec.now_ns());
                        computes_done += 1;
                        assert_eq!(g.len(), numel, "grad_fn returned a wrong-sized gradient");
                        loss_acc += loss;
                        grad = Some(g);
                    }
                    OpKind::Compute { pass: Pass::Backward, .. } => {
                        // The WAR edge the emitter draws from a micro-step's
                        // reduce batch to the *next* micro-step's backward
                        // compute: the in-flight reductions own the grads
                        // buffer until here, so retire them (in issue
                        // order — the accumulation stays bit-identical)
                        // before producing new gradients. Everything that
                        // ran since issue — notably this micro-step's
                        // forward — overlapped them.
                        drain_reduces(
                            &mut pending,
                            &mut accum,
                            &spec,
                            local,
                            computes_done,
                            log_wire.then_some(&mut deferred),
                            &mut rec,
                            iter,
                        );
                        let start_ns = rec.now_ns();
                        if cur_scale != 1.0 {
                            // Backward on the scaled loss (mixed-precision
                            // practice).
                            for g in grad.as_mut().expect("backward before forward") {
                                *g *= cur_scale;
                            }
                        }
                        rec.push(ExecLane::Compute, "bwd", iter, start_ns, rec.now_ns());
                        computes_done += 1;
                    }
                    OpKind::AccumGrads { .. } => {
                        let g = grad.take().expect("accumulate before backward");
                        match schedule {
                            SyncSchedule::Ddp => add_into(&mut accum, &g),
                            _ => add_into(&mut accum, &spec.extract_padded(&g, local)),
                        }
                    }
                    OpKind::ReduceScatterGrads { source: GradSource::MicroGrad, wire, .. } => {
                        if !wire.group.contains(Rank(rank), &ir_geo) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        // Hop 1: reduce-scatter within the partition group
                        // (the qgZ direction when quantized).
                        let g = grad.take().expect("reduce before backward");
                        let padded = pad_to(g, spec.padded_len());
                        if async_mode {
                            // Issue onto the partition group's progress
                            // thread and keep walking: the next micro-step's
                            // forward overlaps this reduction (§4). The
                            // result folds into `accum` at the WAR drain.
                            let scheme = wire.scheme;
                            let epoch = rec.epoch();
                            let handle = part.start_collective(move |c| {
                                let start_ns = epoch.elapsed().as_nanos() as u64;
                                let v = match scheme {
                                    Some(sch) => try_quantized_reduce_scatter(c, &padded, sch)?,
                                    None => c.try_reduce_scatter(&padded)?,
                                };
                                Ok((v, start_ns, epoch.elapsed().as_nanos() as u64))
                            });
                            pending.push_back(PendingReduce {
                                handle,
                                fold: FoldKind::Shard,
                                op_id,
                                computes_at_issue: computes_done,
                            });
                        } else {
                            let start_ns = rec.now_ns();
                            let mine = match wire.scheme {
                                Some(scheme) => quantized_reduce_scatter(&part, &padded, scheme),
                                None => part.reduce_scatter(&padded),
                            };
                            rec.push(ExecLane::Reduce, "grad-reduce", iter, start_ns, rec.now_ns());
                            add_into(&mut accum, &mine);
                        }
                    }
                    OpKind::ReduceScatterGrads { source: GradSource::Accum, .. } => {
                        unreachable!("boundary reduce-scatter (ZeRO-2) is not a minidl schedule")
                    }
                    OpKind::AllReduceGrads { source, wire, .. } => {
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        match source {
                            GradSource::MicroGrad => {
                                // Global synchronization barrier every
                                // micro-step — the cost §3.4 calls
                                // redundant. Async mode still issues it on
                                // the progress thread, but the very next op
                                // is a micro barrier (or the optimizer), so
                                // the schedule stays serialized — exactly
                                // what the sim charges for it.
                                let g = grad.take().expect("reduce before backward");
                                if async_mode {
                                    let scheme = wire.scheme;
                                    let epoch = rec.epoch();
                                    let handle = comm.start_collective(move |c| {
                                        let start_ns = epoch.elapsed().as_nanos() as u64;
                                        let v = match scheme {
                                            Some(sch) => try_quantized_all_reduce(c, &g, sch)?,
                                            None => c.try_all_reduce(&g)?,
                                        };
                                        Ok((v, start_ns, epoch.elapsed().as_nanos() as u64))
                                    });
                                    pending.push_back(PendingReduce {
                                        handle,
                                        fold: FoldKind::Full,
                                        op_id,
                                        computes_at_issue: computes_done,
                                    });
                                } else {
                                    let start_ns = rec.now_ns();
                                    let g = match wire.scheme {
                                        Some(scheme) => quantized_all_reduce(&comm, &g, scheme),
                                        None => comm.all_reduce(&g),
                                    };
                                    rec.push(
                                        ExecLane::Reduce,
                                        "grad-reduce",
                                        iter,
                                        start_ns,
                                        rec.now_ns(),
                                    );
                                    add_into(&mut accum, &spec.extract_padded(&g, local));
                                }
                            }
                            GradSource::Accum => {
                                // DDP's boundary all-reduce of the
                                // accumulated gradient. The optimizer is
                                // the very next op, so there is nothing to
                                // overlap — run it inline.
                                drain_reduces(
                                    &mut pending,
                                    &mut accum,
                                    &spec,
                                    local,
                                    computes_done,
                                    log_wire.then_some(&mut deferred),
                                    &mut rec,
                                    iter,
                                );
                                let start_ns = rec.now_ns();
                                total = Some(match wire.scheme {
                                    Some(scheme) => quantized_all_reduce(&comm, &accum, scheme),
                                    None => comm.all_reduce(&accum),
                                });
                                rec.push(
                                    ExecLane::Reduce,
                                    "grad-reduce",
                                    iter,
                                    start_ns,
                                    rec.now_ns(),
                                );
                            }
                        }
                    }
                    OpKind::CrossGroupAllReduce { wire, .. } => {
                        if !wire.group.contains(Rank(rank), &ir_geo) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        // Hop 2: all-reduce across the replication group —
                        // the emitter's scope rules decide whether it
                        // compresses (beyond the partition group, so
                        // intra-group-only compression keeps it exact). It
                        // reads the accumulation, so every in-flight
                        // reduction retires first (the data hazard the IR
                        // leaves implicit; see `overlappable_wire_ops`).
                        drain_reduces(
                            &mut pending,
                            &mut accum,
                            &spec,
                            local,
                            computes_done,
                            log_wire.then_some(&mut deferred),
                            &mut rec,
                            iter,
                        );
                        let start_ns = rec.now_ns();
                        total = Some(match wire.scheme {
                            Some(scheme) => quantized_all_reduce(&repl, &accum, scheme),
                            None => repl.all_reduce(&accum),
                        });
                        rec.push(ExecLane::Reduce, "hop2", iter, start_ns, rec.now_ns());
                    }
                    OpKind::OptimizerUpdate { .. } => {
                        // The update reads the accumulation: retire every
                        // in-flight reduction first.
                        drain_reduces(
                            &mut pending,
                            &mut accum,
                            &spec,
                            local,
                            computes_done,
                            log_wire.then_some(&mut deferred),
                            &mut rec,
                            iter,
                        );
                        // No boundary collective ran (single-rank groups):
                        // the accumulated gradient is already the total.
                        let total = total.take().unwrap_or_else(|| std::mem::take(&mut accum));
                        // Overflow agreement: every rank checks its portion;
                        // a max-style all-reduce makes the decision global,
                        // so all ranks skip (or apply) the step together.
                        let local_flag = if has_overflow(&total) { 1.0 } else { 0.0 };
                        let sync_ns = rec.now_ns();
                        let overflowed = comm.all_reduce(&[local_flag])[0] > 0.0;
                        rec.push(ExecLane::Control, "overflow-sync", iter, sync_ns, rec.now_ns());
                        let apply = scaler.update(overflowed);
                        if apply {
                            let inv = global_scale / cur_scale;
                            let mut scaled: Vec<f32> = total.iter().map(|&g| g * inv).collect();
                            if let Some(max_norm) = setup.clip_grad_norm {
                                // Global L2 norm: each full copy of the
                                // gradient is held `copies` times across the
                                // cluster, so divide the all-reduced sum of
                                // squares accordingly.
                                let copies = match schedule {
                                    SyncSchedule::Ddp => world as f32,
                                    _ => (world / p) as f32,
                                };
                                let local_sumsq: f32 = scaled.iter().map(|g| g * g).sum();
                                let global_sumsq = comm.all_reduce(&[local_sumsq])[0] / copies;
                                let norm = global_sumsq.sqrt();
                                if norm > max_norm {
                                    let coef = max_norm / (norm + 1e-6);
                                    for g in &mut scaled {
                                        *g *= coef;
                                    }
                                }
                            }
                            let step_ns = rec.now_ns();
                            match schedule {
                                SyncSchedule::Ddp => opt.step(&mut master_full, &scaled),
                                _ => opt.step(&mut master_shard, &scaled),
                            }
                            rec.push(ExecLane::Compute, "optimizer", iter, step_ns, rec.now_ns());
                        }
                    }
                    OpKind::ParamRefresh { .. } => {
                        unreachable!("param refresh needs p_opt > p_params; minidl shards both")
                    }
                }
            }

            // Cross-iteration gather prefetch — the one overlap the
            // single-virtual-layer program cannot express as an
            // intra-iteration edge. The next iteration's forward needs the
            // post-update parameters, which exist the moment the optimizer
            // ran: gather them now, on the partition group's progress
            // thread and into the other half of the double buffer, while
            // the loss all-reduce and iteration bookkeeping run.
            if iter + 1 < setup.iterations && has_gathers {
                if let Some(pl) = pool.as_mut() {
                    let cast = cast_params(&master_shard, setup.quantize);
                    let mut buf = pl.checkout().expect("gather buffer");
                    let scheme = gather_scheme;
                    let epoch = rec.epoch();
                    let handle = part.start_collective(move |c| {
                        let start_ns = epoch.elapsed().as_nanos() as u64;
                        buf.clear();
                        match scheme {
                            Some(sch) => {
                                let v = try_quantized_all_gather(c, &cast, sch)?;
                                buf.extend_from_slice(&v);
                            }
                            None => c.try_all_gather_into(&cast, &mut buf)?,
                        }
                        Ok((buf, start_ns, epoch.elapsed().as_nanos() as u64))
                    });
                    prefetched = Some(handle);
                    prefetched_gathers += 1;
                    rec.sample("prefetched gathers (cum)", prefetched_gathers as f64);
                }
            }

            // Global mean loss for reporting.
            let loss_ns = rec.now_ns();
            let mean = comm.all_reduce(&[loss_acc])[0] * global_scale;
            rec.push(ExecLane::Control, "loss-sync", iter, loss_ns, rec.now_ns());
            losses.push(mean);

            // Retire this iteration's forward buffer into the pool.
            if fwd_from_pool {
                if let (Some(pl), Some(buf)) = (pool.as_mut(), fwd.take()) {
                    pl.checkin(buf);
                }
            }
        }
        // A snapshot may also be requested at the very end of the run.
        capture(setup.iterations, &master_full, &master_shard, &opt, &scaler);

        // Materialize final full parameters.
        let final_params = match schedule {
            SyncSchedule::Ddp => master_full,
            _ => {
                let mut full = part.all_gather(&master_shard);
                full.truncate(numel);
                full
            }
        };
        // Deterministic engine shutdown: join any comm-progress threads the
        // async mode spawned before the communicators unwind.
        part.quiesce();
        comm.quiesce();
        TrainOutcome {
            losses,
            final_params,
            skipped_steps: scaler.skipped_steps(),
            final_loss_scale: scaler.scale(),
            wire_ops: wire_log,
            lane_stats: rec.finish(deferred, prefetched_gathers),
        }
    });

    // Sanity: every rank must agree bit-for-bit on the reported losses.
    let first = results[0].clone();
    for (r, out) in results.iter().enumerate() {
        assert_eq!(out.losses, first.losses, "rank {r} diverged");
    }
    results.swap_remove(0)
}

/// Lower one iteration of a pipelined run to the schedule IR: one virtual
/// layer per stage (each holding that stage's parameter count), `hp.world`
/// data-parallel ranks per stage, every thread-rank on one shared-memory
/// "node". The returned program is what [`train_pipeline`] interprets over
/// real communicators and what the cross-backend tests feed to the
/// simulator's `execute_on_sim` — the same lowering contract as
/// [`step_program`], extended with the 1F1B stage dimension.
pub fn pipeline_step_program(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    pp: usize,
    stage_numels: &[usize],
    act_bytes: u64,
) -> StepProgram {
    assert_eq!(stage_numels.len(), pp, "one virtual layer per stage");
    let dp = hp.world;
    let total: usize = stage_numels.iter().sum();
    let inner = ScheduleSpec {
        n: dp,
        k: dp * pp,
        // The pipeline engine keeps each stage's dp-world unsharded; the
        // stage split itself is the model partitioning.
        p_params: 1,
        p_grads: 1,
        p_opt: 1,
        micro_sync: match schedule {
            SyncSchedule::Ddp => MicroSync::LocalAccumulate,
            SyncSchedule::PerMicroStepAllReduce => MicroSync::GlobalAllReduce,
            SyncSchedule::TwoHop => {
                panic!("pipeline stages sync with dp collectives only; TwoHop needs p > 1")
            }
        },
        accum_steps: hp.accum_steps,
        hierarchical: false,
        coalesced: false,
        prefetch_depth: 0,
        decision_overhead: SimTime::ZERO,
        layers: stage_numels
            .iter()
            .map(|&numel| LayerSchedule {
                param_bytes: numel as u64 * 4,
                fwd_flops: 0.0,
                bwd_flops: 0.0,
            })
            .collect(),
        bucket_bytes: stage_numels.iter().map(|&n| n as u64 * 4).max().unwrap_or(1).max(1),
        total_param_bytes: total as u64 * 4,
        optimizer_bytes: total as u64 * 24,
        compression: None,
        elem_bytes: 4,
    };
    PipelineSpec { inner, pp, act_bytes }.program()
}

/// [`train_pipeline`] with an explicit data-plane transport.
pub fn train_pipeline_on(
    transport: TransportKind,
    setup: &TrainSetup,
    pp: usize,
    schedule: SyncSchedule,
) -> TrainOutcome {
    assert!(pp >= 1, "need at least one pipeline stage");
    let model = setup.model.clone();
    let dataset = TeacherDataset::new(
        &[model.input_dim(), 8, model.output_dim()],
        setup.seed ^ 0x51ab_0c1d_22ee_9f73,
    );
    let init = model.init_params(setup.seed);
    let micro_batch = setup.micro_batch;
    let hp = ScheduleHyper {
        world: setup.world,
        partition_size: setup.partition_size,
        accum_steps: setup.accum_steps,
        iterations: setup.iterations,
        lr: setup.lr,
        quantize: setup.quantize,
        loss_scale: setup.loss_scale,
        clip_grad_norm: setup.clip_grad_norm,
        comm_quant: setup.comm_quant,
        prefetch_depth: setup.prefetch_depth,
    };
    if pp == 1 {
        // A one-stage pipeline *is* the flat program ([`PipelineSpec`]
        // delegates to the flat emitter at pp = 1), so delegate to the flat
        // engine — bit-exact with [`train`] by construction.
        return train_generic_on(
            transport,
            &hp,
            schedule,
            init,
            move |params, iter, micro, rank| {
                let (xs, ys) = dataset.micro_batch(iter, micro, rank, micro_batch);
                model.loss_and_grad(params, &xs, &ys)
            },
        );
    }
    assert!(
        !setup.quantize
            && matches!(setup.loss_scale, LossScale::None)
            && setup.clip_grad_norm.is_none()
            && setup.comm_quant.is_none()
            && setup.prefetch_depth == 0,
        "the pipeline engine runs the exact fp32 path only"
    );
    let dp = setup.world;
    assert!(dp > 0 && setup.accum_steps > 0 && setup.iterations > 0);
    let nl = model.num_layers();
    assert!(nl.is_multiple_of(pp), "pp={pp} must evenly split the model's {nl} layers");
    let per = nl / pp;
    let stage_numels: Vec<usize> =
        (0..pp).map(|s| model.stage_num_params(s * per, (s + 1) * per)).collect();
    let act_bytes =
        (1..pp).map(|s| model.boundary_dim(s * per)).max().unwrap() as u64 * micro_batch as u64 * 4;
    let prog = pipeline_step_program(&hp, schedule, pp, &stage_numels, act_bytes);
    let geo = prog.geo;
    let world = geo.world();
    let m = setup.accum_steps;
    let global_scale = 1.0 / (m as f32 * dp as f32);
    let (prog, model, dataset, init, stage_numels) =
        (&prog, &model, &dataset, &init, &stage_numels);

    let mut results = run_ranks_on(transport, world, |mut comm| {
        let rank = comm.rank();
        let s_idx = geo.stage_of(Rank(rank));
        let d = geo.dp_index(Rank(rank));
        let (lo, hi) = (s_idx * per, (s_idx + 1) * per);
        // Stage communicator: this stage's dp ranks, keyed in d order — the
        // realization of the IR's `All { stage }` groups.
        let mut stage = comm.split(s_idx as i64, rank as i64);
        // One communicator per (boundary, direction). The sender issues its
        // broadcasts asynchronously on the comm's progress thread while the
        // receiver blocks on the matching sequence from its rank thread;
        // each side drives the comm from exactly one thread and both walk
        // the program in emission order, so the SPMD ordering contract
        // holds per communicator. Non-members split into throwaway solo
        // groups (split is collective). The global-rank key puts the lower
        // stage at pair rank 0: forward broadcasts root at 0, backward at 1.
        let pair_comms = |comm: &mut Communicator| -> Vec<Option<Communicator>> {
            (0..pp - 1)
                .map(|lv| {
                    let member = s_idx == lv || s_idx == lv + 1;
                    let color = if member { d as i64 } else { -(1 + rank as i64) };
                    let c = comm.split(color, rank as i64);
                    member.then_some(c)
                })
                .collect()
        };
        let mut fwd_pairs = pair_comms(&mut comm);
        let mut bwd_pairs = pair_comms(&mut comm);

        let mut rec = SpanRecorder::new();
        let mut stage_params: Vec<f32> = init[model.stage_param_range(lo, hi)].to_vec();
        let stage_len = stage_params.len();
        let mut opt = Adam::new(stage_len, setup.lr);
        let mut scaler = ScalerState::new(setup.loss_scale);
        let mut pending: Vec<CollectiveHandle<Vec<f32>>> = Vec::new();
        let mut losses = Vec::with_capacity(setup.iterations);
        let mut wire_log: Vec<usize> = Vec::new();

        for iter in 0..setup.iterations {
            let log_wire = iter == 0;
            let mut accum = vec![0.0f32; stage_len];
            let mut loss_acc = 0.0f32;
            let mut total: Option<Vec<f32>> = None;
            let mut grad: Option<Vec<f32>> = None;
            // 1F1B keeps up to `pp - s_idx` micro-batches in flight, so the
            // forward activations are stored per micro-step (per sample,
            // per layer); the boundary buffers are single-slot because the
            // emitter keeps each stage action's ops contiguous.
            let mut acts_of: Vec<Option<Vec<Vec<Vec<f32>>>>> = vec![None; m];
            let mut recv_act: Option<Vec<f32>> = None;
            let mut recv_grad: Option<Vec<f32>> = None;
            let mut fwd_out: Option<Vec<f32>> = None;
            let mut bwd_out: Option<Vec<f32>> = None;

            for (op_id, op) in prog.ops.iter().enumerate() {
                match &op.kind {
                    OpKind::StageRecv { pass, .. } => {
                        if !prog.executes_wire(op_id, Rank(rank)) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        let start_ns = rec.now_ns();
                        let data = match pass {
                            // The activation arrives over the boundary
                            // below this stage; the gradient over the one
                            // above. Executing ranks are never at the
                            // pipeline's edge for the respective direction.
                            Pass::Forward => {
                                fwd_pairs[s_idx - 1].as_ref().unwrap().broadcast(0, &[])
                            }
                            Pass::Backward => bwd_pairs[s_idx].as_ref().unwrap().broadcast(1, &[]),
                        };
                        match pass {
                            Pass::Forward => {
                                rec.push(
                                    ExecLane::Gather,
                                    "stage-recv",
                                    iter,
                                    start_ns,
                                    rec.now_ns(),
                                );
                                recv_act = Some(data);
                            }
                            Pass::Backward => {
                                rec.push(
                                    ExecLane::Reduce,
                                    "stage-recv",
                                    iter,
                                    start_ns,
                                    rec.now_ns(),
                                );
                                recv_grad = Some(data);
                            }
                        }
                    }
                    OpKind::StageSend { pass, .. } => {
                        if !prog.executes_wire(op_id, Rank(rank)) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        let (pair, root, payload) = match pass {
                            Pass::Forward => (fwd_pairs[s_idx].as_mut().unwrap(), 0, &mut fwd_out),
                            Pass::Backward => {
                                (bwd_pairs[s_idx - 1].as_mut().unwrap(), 1, &mut bwd_out)
                            }
                        };
                        let data = payload.take().expect("stage send before its compute");
                        let handle = pair.start_collective(move |c| c.try_broadcast(root, &data));
                        pending.push(handle);
                    }
                    OpKind::Compute { layer, pass: Pass::Forward, .. } => {
                        if geo.stage_of_layer(*layer, prog.num_layers) != s_idx {
                            continue;
                        }
                        let j = op.micro;
                        let in_dim = model.boundary_dim(lo);
                        let xs = if s_idx == 0 {
                            dataset.micro_batch(iter, j, d, micro_batch).0
                        } else {
                            recv_act.take().expect("forward before boundary recv")
                        };
                        assert_eq!(xs.len(), micro_batch * in_dim, "boundary tensor shape");
                        let start_ns = rec.now_ns();
                        let mut acts = Vec::with_capacity(micro_batch);
                        for smp in 0..micro_batch {
                            let x = &xs[smp * in_dim..(smp + 1) * in_dim];
                            acts.push(model.stage_forward(&stage_params, lo, hi, x));
                        }
                        rec.push(ExecLane::Compute, "fwd", iter, start_ns, rec.now_ns());
                        if s_idx + 1 < pp {
                            let out_dim = model.boundary_dim(hi);
                            let mut out = Vec::with_capacity(micro_batch * out_dim);
                            for a in &acts {
                                out.extend_from_slice(a.last().unwrap());
                            }
                            fwd_out = Some(out);
                        }
                        acts_of[j] = Some(acts);
                    }
                    OpKind::Compute { layer, pass: Pass::Backward, .. } => {
                        if geo.stage_of_layer(*layer, prog.num_layers) != s_idx {
                            continue;
                        }
                        let i = op.micro;
                        let acts = acts_of[i].take().expect("backward before forward");
                        let out_dim = model.boundary_dim(hi);
                        let start_ns = rec.now_ns();
                        let dout = if s_idx == pp - 1 {
                            // The loss head: same arithmetic (and float-op
                            // order) as `Mlp::loss_and_grad`, fed by the
                            // activations that crossed the boundaries.
                            let (_, ys) = dataset.micro_batch(iter, i, d, micro_batch);
                            let scale = 1.0 / (micro_batch as f32 * out_dim as f32);
                            let mut buf = Vec::with_capacity(micro_batch * out_dim);
                            // Fold into a per-micro subtotal first, exactly
                            // like `loss_and_grad` — the iteration total
                            // must sum micro subtotals to stay bit-equal.
                            let mut micro_loss = 0.0f32;
                            for smp in 0..micro_batch {
                                let out = acts[smp].last().unwrap();
                                let y = &ys[smp * out_dim..(smp + 1) * out_dim];
                                for (&ov, &yv) in out.iter().zip(y) {
                                    let err = ov - yv;
                                    micro_loss += 0.5 * err * err * scale;
                                    buf.push(err * scale);
                                }
                            }
                            loss_acc += micro_loss;
                            buf
                        } else {
                            recv_grad.take().expect("backward before boundary recv")
                        };
                        let mut g = vec![0.0f32; stage_len];
                        let mut deltas = Vec::new();
                        for smp in 0..micro_batch {
                            let dsmp = &dout[smp * out_dim..(smp + 1) * out_dim];
                            let delta = model.stage_backward(
                                &stage_params,
                                lo,
                                hi,
                                &acts[smp],
                                dsmp,
                                &mut g,
                            );
                            if lo > 0 {
                                deltas.extend_from_slice(&delta);
                            }
                        }
                        rec.push(ExecLane::Compute, "bwd", iter, start_ns, rec.now_ns());
                        if lo > 0 {
                            bwd_out = Some(deltas);
                        }
                        grad = Some(g);
                    }
                    OpKind::AccumGrads { .. } => {
                        // No wire annotation: ownership follows the backward
                        // compute this op drains.
                        let owner = match prog.ops[op.deps[0]].kind {
                            OpKind::Compute { layer, .. } => {
                                geo.stage_of_layer(layer, prog.num_layers)
                            }
                            _ => unreachable!("accumulate must depend on a backward compute"),
                        };
                        if owner != s_idx {
                            continue;
                        }
                        add_into(&mut accum, &grad.take().expect("accumulate before backward"));
                    }
                    OpKind::AllReduceGrads { source, wire, .. } => {
                        if !wire.group.contains(Rank(rank), &geo) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        let start_ns = rec.now_ns();
                        match source {
                            GradSource::MicroGrad => {
                                let g = grad.take().expect("reduce before backward");
                                let red = stage.all_reduce(&g);
                                add_into(&mut accum, &red);
                            }
                            GradSource::Accum => {
                                total = Some(stage.all_reduce(&accum));
                            }
                        }
                        rec.push(ExecLane::Reduce, "grad-reduce", iter, start_ns, rec.now_ns());
                    }
                    OpKind::OptimizerUpdate { .. } => {
                        let total = total.take().unwrap_or_else(|| std::mem::take(&mut accum));
                        // Overflow agreement across the whole world, exactly
                        // as the flat engine does it.
                        let local_flag = if has_overflow(&total) { 1.0 } else { 0.0 };
                        let sync_ns = rec.now_ns();
                        let overflowed = comm.all_reduce(&[local_flag])[0] > 0.0;
                        rec.push(ExecLane::Control, "overflow-sync", iter, sync_ns, rec.now_ns());
                        if scaler.update(overflowed) {
                            let scaled: Vec<f32> =
                                total.iter().map(|&g| g * global_scale).collect();
                            let step_ns = rec.now_ns();
                            opt.step(&mut stage_params, &scaled);
                            rec.push(ExecLane::Compute, "optimizer", iter, step_ns, rec.now_ns());
                        }
                    }
                    OpKind::MicroBarrier
                    | OpKind::GatherShards { .. }
                    | OpKind::ReduceScatterGrads { .. }
                    | OpKind::CrossGroupAllReduce { .. }
                    | OpKind::ParamRefresh { .. } => {
                        unreachable!("op not emitted for a p = 1 pipeline program")
                    }
                }
            }

            // Retire this iteration's boundary sends — every one was
            // consumed by its blocking receiver, so the waits only surface
            // errors and bound the submission queue.
            for h in pending.drain(..) {
                h.wait().unwrap_or_else(|e| panic!("collective aborted: {e}"));
            }
            debug_assert!(recv_act.is_none() && recv_grad.is_none() && grad.is_none());

            // Global mean loss: the non-last stages contribute exact zeros,
            // so the world fold reduces to the flat engine's per-rank sum.
            let loss_ns = rec.now_ns();
            let mean = comm.all_reduce(&[loss_acc])[0] * global_scale;
            rec.push(ExecLane::Control, "loss-sync", iter, loss_ns, rec.now_ns());
            losses.push(mean);
        }

        // Assemble the full parameter vector: every rank contributes its
        // stage slice padded to the widest stage; stage s's d = 0 copy is
        // taken (all dp copies are bit-identical after sync).
        let max_len = stage_numels.iter().copied().max().unwrap();
        let gathered = comm.all_gather(&pad_to(stage_params, max_len));
        let mut final_params = Vec::with_capacity(model.num_params());
        for (s, &numel) in stage_numels.iter().enumerate() {
            let off = s * dp * max_len;
            final_params.extend_from_slice(&gathered[off..off + numel]);
        }

        for c in fwd_pairs.iter_mut().chain(bwd_pairs.iter_mut()).flatten() {
            c.quiesce();
        }
        stage.quiesce();
        comm.quiesce();
        TrainOutcome {
            losses,
            final_params,
            skipped_steps: scaler.skipped_steps(),
            final_loss_scale: scaler.scale(),
            wire_ops: wire_log,
            lane_stats: rec.finish(Vec::new(), 0),
        }
    });

    let first = results[0].clone();
    for (r, out) in results.iter().enumerate() {
        assert_eq!(out.losses, first.losses, "rank {r} diverged");
        assert_eq!(out.final_params, first.final_params, "rank {r} assembled different params");
    }
    results.swap_remove(0)
}

/// Run the configured training job as a `dp × pp` 1F1B pipeline on
/// `setup.world · pp` thread-ranks: the model's layers split contiguously
/// over `pp` stages (each stage a [`Mlp`] slice), activations and boundary
/// gradients travel as real point-to-point broadcasts, and gradients
/// synchronize per stage under `schedule`. `pp = 1` delegates to the flat
/// engine bit-exactly; `pp ≥ 2` supports [`SyncSchedule::Ddp`] and
/// [`SyncSchedule::PerMicroStepAllReduce`] on the exact fp32 path.
pub fn train_pipeline(setup: &TrainSetup, pp: usize, schedule: SyncSchedule) -> TrainOutcome {
    train_pipeline_on(TransportKind::Local, setup, pp, schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup(world: usize, p: usize, s: usize) -> TrainSetup {
        TrainSetup {
            model: Mlp::new(&[6, 12, 2]),
            world,
            partition_size: p,
            micro_batch: 4,
            accum_steps: s,
            iterations: 15,
            lr: 0.02,
            seed: 1234,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        }
    }

    #[test]
    fn all_schedules_converge() {
        for schedule in
            [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce, SyncSchedule::TwoHop]
        {
            let out = train(&setup(4, 2, 2), schedule);
            let first = out.losses[0];
            let last = *out.losses.last().unwrap();
            assert!(last < first * 0.7, "{schedule:?}: loss {first} → {last} did not converge");
        }
    }

    #[test]
    fn async_executor_is_bit_identical_to_inline() {
        // The overlap machinery must change *when* collectives run, never
        // what they compute: same losses, same final parameters, same wire
        // op sequence, for every schedule.
        for schedule in
            [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce, SyncSchedule::TwoHop]
        {
            let inline = train(&setup(4, 2, 3), schedule);
            let mut cfg = setup(4, 2, 3);
            cfg.prefetch_depth = 2;
            let overlapped = train(&cfg, schedule);
            assert_eq!(inline, overlapped, "{schedule:?} diverged under the async executor");
            assert_eq!(
                inline.losses, overlapped.losses,
                "{schedule:?} losses must match bit-for-bit"
            );
        }
    }

    #[test]
    fn async_executor_defers_only_the_overlappable_reduces() {
        // TwoHop with s micro-steps: the reduce-scatter of micro-steps
        // 0..s-2 retires at the next micro-step's backward (after its
        // forward ran) — deferred. The last one is immediately consumed by
        // hop 2. ZeRO-3's all-reduces are fenced by micro barriers and DDP
        // has nothing in flight: neither defers anything.
        let mut cfg = setup(4, 2, 3);
        cfg.prefetch_depth = 1;
        let out = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.lane_stats.deferred_wire_ops.len(), cfg.accum_steps - 1);
        for schedule in [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce] {
            let out = train(&cfg, schedule);
            assert!(
                out.lane_stats.deferred_wire_ops.is_empty(),
                "{schedule:?} must not defer: {:?}",
                out.lane_stats.deferred_wire_ops
            );
        }
    }

    #[test]
    fn async_executor_prefetches_one_gather_per_remaining_iteration() {
        let mut cfg = setup(4, 2, 2);
        cfg.prefetch_depth = 1;
        let out = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.lane_stats.prefetched_gathers as usize, cfg.iterations - 1);
        // Inline mode never prefetches and never defers.
        let inline = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        assert_eq!(inline.lane_stats.prefetched_gathers, 0);
        assert!(inline.lane_stats.deferred_wire_ops.is_empty());
    }

    #[test]
    fn lane_stats_cover_compute_and_comm() {
        let mut cfg = setup(4, 2, 2);
        cfg.prefetch_depth = 1;
        let out = train(&cfg, SyncSchedule::TwoHop);
        let stats = &out.lane_stats;
        assert!(stats.busy_ns(crate::executor::ExecLane::Compute) > 0);
        assert!(stats.busy_ns(crate::executor::ExecLane::Gather) > 0);
        assert!(stats.busy_ns(crate::executor::ExecLane::Reduce) > 0);
        assert!(stats.wall_ns >= stats.busy_ns(crate::executor::ExecLane::Compute));
        // Spans are well-formed and stamped with their iteration.
        for s in &stats.spans {
            assert!(s.end_ns >= s.start_ns);
            assert!(s.iteration < cfg.iterations);
        }
    }

    #[test]
    fn two_hop_with_full_partition_is_bitwise_zero3() {
        // With p = n, MiCS degenerates to ZeRO-3 and the schedules perform
        // the same sums in the same order → bit-identical training.
        let s = setup(4, 4, 3);
        let a = train(&s, SyncSchedule::PerMicroStepAllReduce);
        let b = train(&s, SyncSchedule::TwoHop);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.final_params, b.final_params);
    }

    #[test]
    fn two_hop_matches_ddp_convergence() {
        // Figure 15: same convergence behaviour (not necessarily the same
        // floating-point bits — summation orders differ).
        let s = setup(4, 2, 2);
        let ddp = train(&s, SyncSchedule::Ddp);
        let mics = train(&s, SyncSchedule::TwoHop);
        for (i, (a, b)) in ddp.losses.iter().zip(mics.losses.iter()).enumerate() {
            let denom = a.abs().max(1e-6);
            assert!((a - b).abs() / denom < 1e-3, "iteration {i}: DDP {a} vs MiCS {b}");
        }
    }

    #[test]
    fn two_hop_gradients_equal_global_all_reduce_exactly_in_expectation() {
        // Stronger algebraic check on the final parameters: with identical
        // data, the three schedules stay within a tight tolerance after
        // training.
        let s = setup(8, 2, 2);
        let ddp = train(&s, SyncSchedule::Ddp);
        let zero3 = train(&s, SyncSchedule::PerMicroStepAllReduce);
        let mics = train(&s, SyncSchedule::TwoHop);
        for i in 0..ddp.final_params.len() {
            let a = ddp.final_params[i];
            let b = mics.final_params[i];
            let c = zero3.final_params[i];
            assert!((a - b).abs() < 5e-4, "param {i}: ddp {a} vs mics {b}");
            assert!((a - c).abs() < 5e-4, "param {i}: ddp {a} vs zero3 {c}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = setup(4, 2, 2);
        let a = train(&s, SyncSchedule::TwoHop);
        let b = train(&s, SyncSchedule::TwoHop);
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_training_still_converges() {
        let mut s = setup(4, 2, 2);
        s.quantize = true;
        let out = train(&s, SyncSchedule::TwoHop);
        assert!(*out.losses.last().unwrap() < out.losses[0] * 0.8);
        // And differs from unquantized (the cast is real).
        let mut s2 = s.clone();
        s2.quantize = false;
        let exact = train(&s2, SyncSchedule::TwoHop);
        assert_ne!(out.losses, exact.losses);
    }

    #[test]
    fn int8_comm_training_tracks_exact_training() {
        use mics_compress::{CompressionConfig, QuantScheme};
        let exact = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        let mut cfg = setup(4, 2, 2);
        cfg.comm_quant = Some(CompressionConfig::both(QuantScheme::int8()));
        let q = train(&cfg, SyncSchedule::TwoHop);
        // The quantized wire is real (trajectories differ) ...
        assert_ne!(q.losses, exact.losses);
        // ... but stays within a few percent of the exact loss curve ...
        for (i, (a, b)) in exact.losses.iter().zip(q.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-6) < 0.05, "iter {i}: {a} vs {b}");
        }
        // ... and still converges.
        assert!(*q.losses.last().unwrap() < q.losses[0] * 0.8);
    }

    #[test]
    fn f16_weight_wire_is_lossless_for_f16_casts() {
        use mics_compress::{CompressionConfig, QuantScheme};
        // quantize=true casts shards to f16 *before* the gather, so an f16
        // wire carries them bit-exactly: weights-only f16 compression must
        // reproduce the uncompressed run exactly.
        let mut base = setup(4, 2, 2);
        base.quantize = true;
        let exact = train(&base, SyncSchedule::TwoHop);
        let mut cfg = base.clone();
        cfg.comm_quant = Some(CompressionConfig::weights_only(QuantScheme::F16));
        let q = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(q, exact);
    }

    #[test]
    fn intra_group_scope_keeps_hop2_exact() {
        use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
        // With intra-group-only scope and p = 1 every collective that could
        // compress is trivial or out of scope, so training is bit-exact.
        let mut cfg = setup(4, 1, 2);
        let mut cq = CompressionConfig::both(QuantScheme::int4());
        cq.scope = CompressionScope::IntraGroupOnly;
        cfg.comm_quant = Some(cq);
        let q = train(&cfg, SyncSchedule::TwoHop);
        let exact = train(&setup(4, 1, 2), SyncSchedule::TwoHop);
        assert_eq!(q, exact);
    }

    #[test]
    fn accumulation_depth_changes_only_comm_pattern_not_data_consumed() {
        // s=1 vs s=4 consume different batches per optimizer step, but both
        // must converge under the 2-hop schedule (the s=1 case the paper
        // discusses at the end of §3.4).
        for s in [1usize, 4] {
            let cfg = setup(4, 2, s);
            let out = train(&cfg, SyncSchedule::TwoHop);
            assert!(*out.losses.last().unwrap() < out.losses[0], "s={s} failed to improve");
        }
    }

    #[test]
    fn single_rank_degenerate_case() {
        let cfg = TrainSetup { world: 1, partition_size: 1, ..setup(1, 1, 2) };
        let out = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.losses.len(), cfg.iterations);
        assert!(*out.losses.last().unwrap() < out.losses[0]);
    }

    #[test]
    fn loss_scaling_is_numerically_transparent() {
        // Scaling the loss and unscaling the gradients must not change
        // training (up to fp rounding) for any schedule.
        let base = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        let mut cfg = setup(4, 2, 2);
        cfg.loss_scale = LossScale::Static(1024.0);
        let scaled = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(scaled.skipped_steps, 0);
        for (i, (a, b)) in base.losses.iter().zip(scaled.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-9) < 1e-3, "iter {i}: {a} vs {b}");
        }
    }

    #[test]
    fn dynamic_scale_grows_over_clean_steps() {
        let mut cfg = setup(4, 2, 2);
        cfg.loss_scale = LossScale::Dynamic { init: 256.0, growth_interval: 5 };
        let out = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.skipped_steps, 0);
        // 15 iterations, growth every 5 clean steps → 3 doublings.
        assert_eq!(out.final_loss_scale, 256.0 * 8.0);
        assert!(*out.losses.last().unwrap() < out.losses[0]);
    }

    #[test]
    fn gradient_clipping_caps_update_magnitude_consistently() {
        // A tiny clip threshold slows convergence but must act identically
        // across schedules (the global-norm all-reduce sees the same sums).
        let mut cfg = setup(4, 2, 2);
        cfg.clip_grad_norm = Some(0.01);
        let mics = train(&cfg, SyncSchedule::TwoHop);
        let ddp = train(&cfg, SyncSchedule::Ddp);
        for (i, (a, b)) in mics.losses.iter().zip(ddp.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-9) < 2e-3, "iter {i}: {a} vs {b}");
        }
        // The cap genuinely binds: the trajectory differs from unclipped
        // training. (Adam's per-element normalization means clipping does
        // not necessarily slow convergence — it just changes the path.)
        let unclipped = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        assert_ne!(mics.losses, unclipped.losses, "clip at 0.01 must bind");
    }

    #[test]
    fn clipping_with_loose_threshold_is_identity() {
        let mut cfg = setup(4, 2, 2);
        cfg.clip_grad_norm = Some(1e6);
        let clipped = train(&cfg, SyncSchedule::TwoHop);
        let base = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        assert_eq!(clipped.losses, base.losses, "a loose clip must never bind");
    }

    #[test]
    #[should_panic(expected = "must divide world")]
    fn bad_partition_size_rejected() {
        let cfg = setup(4, 3, 2);
        let _ = train(&cfg, SyncSchedule::TwoHop);
    }

    type GradFn = dyn Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync;

    /// Shared scaffolding for the resume tests: an Mlp + teacher dataset
    /// grad_fn equivalent to what [`train`] builds internally.
    fn resume_rig() -> (ScheduleHyper, Vec<f32>, Box<GradFn>) {
        let cfg = setup(4, 2, 2);
        let model = Mlp::new(&[6, 12, 2]);
        let dataset = TeacherDataset::new(&[6, 8, 2], cfg.seed ^ 0x51ab_0c1d_22ee_9f73);
        let init = model.init_params(cfg.seed);
        let hp = ScheduleHyper {
            world: cfg.world,
            partition_size: cfg.partition_size,
            accum_steps: cfg.accum_steps,
            iterations: cfg.iterations,
            lr: cfg.lr,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let micro_batch = cfg.micro_batch;
        let grad = move |params: &[f32], iter: usize, micro: usize, rank: usize| {
            let (xs, ys) = dataset.micro_batch(iter, micro, rank, micro_batch);
            model.loss_and_grad(params, &xs, &ys)
        };
        (hp, init, Box::new(grad))
    }

    #[test]
    fn resume_mid_run_is_bit_exact() {
        let (hp, init, grad) = resume_rig();
        for schedule in
            [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce, SyncSchedule::TwoHop]
        {
            let sink = CheckpointSink::new();
            let full = train_resumable(&hp, schedule, init.clone(), &grad, 7, &sink);
            let ckpt = sink.take().expect("snapshot must be deposited");
            assert_eq!(ckpt.iterations_done, 7);
            let resumed = resume_from(&hp, schedule, &ckpt, &grad);
            assert_eq!(resumed.losses, full.losses[7..], "{schedule:?} loss tail");
            assert_eq!(resumed.final_params, full.final_params, "{schedule:?} params");
            assert_eq!(resumed.final_loss_scale, full.final_loss_scale);
        }
    }

    #[test]
    fn checkpoint_at_start_reproduces_whole_run() {
        let (hp, init, grad) = resume_rig();
        let sink = CheckpointSink::new();
        let full = train_resumable(&hp, SyncSchedule::TwoHop, init.clone(), &grad, 0, &sink);
        let ckpt = sink.take().unwrap();
        // The iteration-0 snapshot is the init state with a zero optimizer.
        assert_eq!(ckpt.state.params, init);
        assert_eq!(ckpt.state.step, 0);
        let replay = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
        assert_eq!(replay, full);
    }

    #[test]
    fn checkpoint_at_end_captures_final_state() {
        let (hp, init, grad) = resume_rig();
        let sink = CheckpointSink::new();
        let full = train_resumable(&hp, SyncSchedule::TwoHop, init, &grad, hp.iterations, &sink);
        let ckpt = sink.take().unwrap();
        assert_eq!(ckpt.iterations_done, hp.iterations);
        assert_eq!(ckpt.state.params, full.final_params);
        // Resuming at the end runs zero iterations.
        let tail = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
        assert!(tail.losses.is_empty());
        assert_eq!(tail.final_params, full.final_params);
    }

    #[test]
    fn dynamic_loss_scale_survives_resume() {
        let (mut hp, init, grad) = resume_rig();
        hp.loss_scale = LossScale::Dynamic { init: 256.0, growth_interval: 4 };
        let sink = CheckpointSink::new();
        let full = train_resumable(&hp, SyncSchedule::TwoHop, init, &grad, 6, &sink);
        let ckpt = sink.take().unwrap();
        // 6 clean iterations → one doubling already happened; the growth
        // window is mid-flight and must be restored, not reset.
        assert_eq!(ckpt.scaler.scale, 512.0);
        assert_eq!(ckpt.scaler.good_steps, 2);
        let resumed = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
        assert_eq!(resumed.losses, full.losses[6..]);
        assert_eq!(resumed.final_loss_scale, full.final_loss_scale);
    }

    #[test]
    fn sink_is_empty_until_the_snapshot_iteration() {
        let sink = CheckpointSink::new();
        assert!(sink.take().is_none());
    }

    #[test]
    #[should_panic(expected = "beyond the configured")]
    fn resume_past_the_horizon_rejected() {
        let (mut hp, init, grad) = resume_rig();
        let sink = CheckpointSink::new();
        let _ = train_resumable(&hp, SyncSchedule::TwoHop, init, &grad, 7, &sink);
        let ckpt = sink.take().unwrap();
        hp.iterations = 3; // shorter than the snapshot's 7 completed iterations
        let _ = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
    }

    /// A 4-layer model so the pipeline has real stage slices to split.
    fn pipe_setup(dp: usize, s: usize) -> TrainSetup {
        TrainSetup {
            model: Mlp::new(&[6, 10, 8, 7, 2]),
            world: dp,
            partition_size: 1,
            micro_batch: 4,
            accum_steps: s,
            iterations: 12,
            lr: 0.02,
            seed: 1234,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        }
    }

    #[test]
    fn pipeline_at_pp1_is_bit_identical_to_flat_training() {
        for schedule in [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce] {
            let flat = train(&pipe_setup(2, 3), schedule);
            let piped = train_pipeline(&pipe_setup(2, 3), 1, schedule);
            assert_eq!(flat, piped, "{schedule:?}: pp = 1 must delegate bit-exactly");
        }
    }

    #[test]
    fn pipeline_matches_flat_training_bit_exactly() {
        // The stage slices compose bit-exactly (see `nn::stage_forward`),
        // per-stage gradient folds run in the same rank order as the flat
        // world, and the loss all-reduce only adds exact zeros from the
        // non-loss stages — so 1F1B over real communicators reproduces the
        // non-pipelined run to the bit, not merely within tolerance.
        for (pp, dp, s, schedule) in [
            (2, 2, 3, SyncSchedule::Ddp),
            (2, 2, 3, SyncSchedule::PerMicroStepAllReduce),
            (4, 1, 2, SyncSchedule::Ddp),
            (4, 2, 4, SyncSchedule::PerMicroStepAllReduce),
        ] {
            let flat = train(&pipe_setup(dp, s), schedule);
            let piped = train_pipeline(&pipe_setup(dp, s), pp, schedule);
            assert_eq!(
                flat.losses, piped.losses,
                "{schedule:?} pp={pp} dp={dp}: pipelined losses diverged"
            );
            assert_eq!(
                flat.final_params, piped.final_params,
                "{schedule:?} pp={pp} dp={dp}: pipelined parameters diverged"
            );
            assert_eq!(piped.skipped_steps, 0);
        }
    }

    #[test]
    fn pipeline_converges() {
        let out = train_pipeline(&pipe_setup(2, 2), 2, SyncSchedule::Ddp);
        let first = out.losses[0];
        let last = *out.losses.last().unwrap();
        assert!(last < first * 0.7, "pipeline loss {first} → {last} did not converge");
    }

    #[test]
    fn pipeline_runs_on_the_socket_transport() {
        // Same schedules, same arithmetic over real framed connections.
        let local = train_pipeline(&pipe_setup(2, 2), 2, SyncSchedule::Ddp);
        let socket =
            train_pipeline_on(TransportKind::Socket, &pipe_setup(2, 2), 2, SyncSchedule::Ddp);
        assert_eq!(local, socket, "socket transport must be bit-identical");
    }

    #[test]
    fn pipeline_executes_the_programs_wire_ops_for_its_rank() {
        // Rank 0 (stage 0, d 0) of the interpreter must execute exactly the
        // wire ops `executes_wire` assigns it, in program order.
        let cfg = pipe_setup(2, 3);
        let hp = ScheduleHyper {
            world: cfg.world,
            partition_size: 1,
            accum_steps: cfg.accum_steps,
            iterations: cfg.iterations,
            lr: cfg.lr,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let model = cfg.model.clone();
        let per = model.num_layers() / 2;
        let stage_numels =
            [model.stage_num_params(0, per), model.stage_num_params(per, model.num_layers())];
        let prog = pipeline_step_program(&hp, SyncSchedule::Ddp, 2, &stage_numels, 64);
        let expected: Vec<usize> =
            prog.wire_ops().into_iter().filter(|&id| prog.executes_wire(id, Rank(0))).collect();
        let out = train_pipeline(&cfg, 2, SyncSchedule::Ddp);
        assert!(!expected.is_empty());
        assert_eq!(out.wire_ops, expected);
    }

    #[test]
    #[should_panic(expected = "evenly split")]
    fn pipeline_rejects_uneven_stage_split() {
        let _ = train_pipeline(&pipe_setup(2, 2), 3, SyncSchedule::Ddp);
    }

    fn elastic_setup(world: usize, p: usize, iters: usize) -> TrainSetup {
        TrainSetup {
            model: Mlp::new(&[6, 10, 2]),
            world,
            partition_size: p,
            micro_batch: 4,
            accum_steps: 2,
            iterations: iters,
            lr: 0.02,
            seed: 99,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        }
    }

    #[test]
    fn elastic_zero_iteration_round_trip_is_bit_exact() {
        // [G t1 | →G′ | →G | G t2] ≡ [G t1+t2]: the state round-trips
        // through the foreign geometry's sharding untouched, both growing
        // (8 ranks) and shrinking (2 ranks).
        let base = elastic_setup(4, 2, 10);
        let flat = train(&base, SyncSchedule::TwoHop);
        for (w, p) in [(8, 4), (2, 1)] {
            let phases = [
                ElasticPhase { world: 4, partition_size: 2, iterations: 6 },
                ElasticPhase { world: w, partition_size: p, iterations: 0 },
                ElasticPhase { world: 4, partition_size: 2, iterations: 4 },
            ];
            let el = train_elastic(&base, SyncSchedule::TwoHop, &phases);
            assert_eq!(el.losses, flat.losses, "round trip through {w}/{p} drifted");
            assert_eq!(el.final_params, flat.final_params);
        }
    }

    #[test]
    fn elastic_grow_matches_direct_resume() {
        // The grow transition is exactly checkpoint → reshape → resume: the
        // driver must reproduce a hand-rolled resume at the destination
        // geometry bit for bit, losses included.
        let base = elastic_setup(2, 1, 8);
        let phases = [
            ElasticPhase { world: 2, partition_size: 1, iterations: 5 },
            ElasticPhase { world: 4, partition_size: 2, iterations: 3 },
        ];
        let el = train_elastic(&base, SyncSchedule::TwoHop, &phases);

        let model = base.model.clone();
        let dataset = TeacherDataset::new(
            &[model.input_dim(), 8, model.output_dim()],
            base.seed ^ 0x51ab_0c1d_22ee_9f73,
        );
        let grad = |params: &[f32], iter: usize, micro: usize, rank: usize| {
            let (xs, ys) = dataset.micro_batch(iter, micro, rank, base.micro_batch);
            model.loss_and_grad(params, &xs, &ys)
        };
        let mut hp = ScheduleHyper {
            world: 2,
            partition_size: 1,
            accum_steps: base.accum_steps,
            iterations: 5,
            lr: base.lr,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        };
        let sink = CheckpointSink::new();
        let init = base.model.init_params(base.seed);
        let head = train_resumable(&hp, SyncSchedule::TwoHop, init, grad, 5, &sink);
        let ckpt = sink.take().unwrap();
        hp.world = 4;
        hp.partition_size = 2;
        hp.iterations = 8;
        let tail = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, grad);

        assert_eq!(el.losses[..5], head.losses[..]);
        assert_eq!(el.losses[5..], tail.losses[..]);
        assert_eq!(el.final_params, tail.final_params);
    }

    #[test]
    fn elastic_runs_on_the_socket_transport() {
        let base = elastic_setup(2, 2, 6);
        let phases = [
            ElasticPhase { world: 2, partition_size: 2, iterations: 3 },
            ElasticPhase { world: 4, partition_size: 2, iterations: 3 },
        ];
        let local = train_elastic_on(TransportKind::Local, &base, SyncSchedule::TwoHop, &phases);
        let socket = train_elastic_on(TransportKind::Socket, &base, SyncSchedule::TwoHop, &phases);
        assert_eq!(local, socket, "elastic run must be transport-invariant");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn elastic_rejects_an_empty_phase_list() {
        let _ = train_elastic(&elastic_setup(2, 1, 2), SyncSchedule::Ddp, &[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// Reshape round-trips over random geometries — grow-then-shrink
        /// and shrink-then-grow both land back bit-identical to the
        /// uninterrupted run, on the local and the socket transport.
        #[test]
        fn elastic_reshape_round_trip_over_random_geometries(
            base_p in 1usize..3,
            base_groups in 1usize..3,
            foreign_p in 1usize..3,
            foreign_groups in 1usize..3,
            t1 in 1usize..4,
            t2 in 1usize..3,
        ) {
            let world = base_p * base_groups;
            let foreign_world = foreign_p * foreign_groups;
            let base = elastic_setup(world, base_p, t1 + t2);
            let flat = train(&base, SyncSchedule::TwoHop);
            let phases = [
                ElasticPhase { world, partition_size: base_p, iterations: t1 },
                ElasticPhase {
                    world: foreign_world,
                    partition_size: foreign_p,
                    iterations: 0,
                },
                ElasticPhase { world, partition_size: base_p, iterations: t2 },
            ];
            for transport in [TransportKind::Local, TransportKind::Socket] {
                let el = train_elastic_on(transport, &base, SyncSchedule::TwoHop, &phases);
                prop_assert_eq!(&el.losses, &flat.losses);
                prop_assert_eq!(&el.final_params, &flat.final_params);
            }
        }
    }
}
