//! Data-parallel training loops over the real data plane, under the three
//! gradient-synchronization schedules the paper compares (§3.4, §5.4).
//!
//! Since the schedule-IR refactor the engine is an *interpreter*: each run
//! lowers its schedule to the same [`StepProgram`] the simulator backend
//! costs (see [`step_program`] and `mics-core::schedule`), and every rank
//! walks that program each iteration, executing the ops whose group
//! contains it with the real `mics-dataplane` communicators. The codec
//! annotations on the ops carry the compression-scope rules, so no
//! schedule-specific wire logic lives here — the fidelity claim is
//! structural: the dataplane executes the exact op sequence the simulator
//! prices.

use crate::adam::Adam;
use crate::checkpoint::TrainState;
use crate::data::TeacherDataset;
use crate::nn::Mlp;
use crate::scaler::{has_overflow, LossScale, ScalerSnapshot, ScalerState};
use mics_cluster::Rank;
use mics_compress::CompressionConfig;
use mics_core::config::MicroSync;
use mics_core::schedule::{GradSource, LayerSchedule, OpKind, Pass, ScheduleSpec, StepProgram};
use mics_dataplane::quantized::{quantized_all_reduce, quantized_reduce_scatter};
use mics_dataplane::{quantized_all_gather, run_ranks};
use mics_simnet::SimTime;
use mics_tensor::dtype::quantize_f16;
use mics_tensor::ShardSpec;
use std::sync::Mutex;

/// Which gradient-synchronization schedule to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncSchedule {
    /// Classic data parallelism: full model replica per rank, one global
    /// all-reduce at the gradient-accumulation boundary.
    Ddp,
    /// DeepSpeed ZeRO-3's default — the "alternative schedule" of §3.4:
    /// every micro-step all-reduces gradients across **all** devices, then
    /// each device keeps only its shard.
    PerMicroStepAllReduce,
    /// MiCS 2-hop (§3.4): every micro-step reduce-scatters within the
    /// partition group; at the accumulation boundary an all-reduce runs
    /// across the replication group.
    TwoHop,
}

/// Configuration of a fidelity training run.
#[derive(Debug, Clone)]
pub struct TrainSetup {
    /// The student model being trained.
    pub model: Mlp,
    /// Number of data-parallel ranks (`n`).
    pub world: usize,
    /// Partition group size (`p`). Must divide `world`. Ignored by
    /// [`SyncSchedule::Ddp`].
    pub partition_size: usize,
    /// Samples per rank per micro-step.
    pub micro_batch: usize,
    /// Micro-steps per iteration (`s`, the gradient-accumulation depth).
    pub accum_steps: usize,
    /// Training iterations (optimizer steps).
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for initialization and data.
    pub seed: u64,
    /// Emulate mixed precision: forward/backward on f16-quantized parameter
    /// copies, fp32 master weights and optimizer states.
    pub quantize: bool,
    /// Loss-scaling policy (mixed-precision stacks use dynamic scaling).
    pub loss_scale: LossScale,
    /// Clip gradients to this global L2 norm before the optimizer step.
    pub clip_grad_norm: Option<f32>,
    /// ZeRO++-style quantized communication: weight gathers and/or gradient
    /// reductions travel block-quantized (`None` = full-precision wire).
    /// Control-plane collectives (overflow flag, loss, clip norm) and the
    /// final parameter gather always stay exact.
    pub comm_quant: Option<CompressionConfig>,
}

/// Result of a training run (identical on every rank; returned from rank 0).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// Global mean loss per iteration.
    pub losses: Vec<f32>,
    /// Final full parameter vector.
    pub final_params: Vec<f32>,
    /// Optimizer steps skipped by the loss scaler due to overflow.
    pub skipped_steps: u32,
    /// The loss scale at the end of training.
    pub final_loss_scale: f32,
    /// The communication ops this rank executed in its first iteration, as
    /// indices into the run's [`StepProgram`] — the cross-backend tests
    /// compare this against the op sequence the simulator backend costs.
    pub wire_ops: Vec<usize>,
}

/// A point-in-time snapshot of a whole training job — the unsharded
/// model/optimizer state plus the loss scaler — sufficient to resume a run
/// bit-exactly from the iteration where the snapshot was taken, under any
/// partition-group size (the state is full; [`resume_from`] re-shards it
/// for the resuming world).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Full (unsharded) parameters and Adam state.
    pub state: TrainState,
    /// Iterations completed at the snapshot; a resumed run starts here.
    pub iterations_done: usize,
    /// Loss-scaler state at the snapshot.
    pub scaler: ScalerSnapshot,
}

/// Landing zone for a mid-run checkpoint, shared between the training ranks
/// and the caller. The ranks of partition group 0 deposit their state
/// shards as the snapshot iteration begins; the caller assembles them with
/// [`CheckpointSink::take`] — even after the run itself has died, which is
/// the point: a checkpoint that only exists in the return value of a killed
/// run is no checkpoint at all.
#[derive(Debug, Default)]
pub struct CheckpointSink {
    inner: Mutex<SinkSlots>,
}

#[derive(Debug, Default)]
struct SinkSlots {
    shards: Vec<Option<TrainState>>,
    numel: usize,
    iterations_done: usize,
    scaler: Option<ScalerSnapshot>,
}

impl CheckpointSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn deposit(
        &self,
        local: usize,
        p: usize,
        numel: usize,
        shard: TrainState,
        iterations_done: usize,
        scaler: ScalerSnapshot,
    ) {
        let mut slots = self.inner.lock().unwrap();
        if slots.shards.len() != p {
            slots.shards = vec![None; p];
        }
        slots.numel = numel;
        slots.iterations_done = iterations_done;
        slots.scaler = Some(scaler);
        slots.shards[local] = Some(shard);
    }

    /// Assemble the checkpoint if every shard landed; `None` if the run died
    /// before reaching the snapshot iteration.
    pub fn take(&self) -> Option<TrainCheckpoint> {
        let slots = self.inner.lock().unwrap();
        if slots.shards.is_empty() || slots.shards.iter().any(|s| s.is_none()) {
            return None;
        }
        let shards: Vec<TrainState> = slots.shards.iter().map(|s| s.clone().unwrap()).collect();
        Some(TrainCheckpoint {
            state: TrainState::unshard(&shards, slots.numel),
            iterations_done: slots.iterations_done,
            scaler: slots.scaler.unwrap(),
        })
    }
}

/// Lower one iteration of `schedule` on `hp.world` thread-ranks to the
/// shared schedule IR — the exact program the training engine's interpreter
/// walks, and the one the cross-backend tests feed to the simulator's
/// `execute_on_sim`. The fidelity model is a single "layer" of
/// `numel` fp32 parameters; timing fields (FLOPs, prefetch, decision
/// overhead) are zero because the interpreter executes real arithmetic,
/// not costs.
pub fn step_program(hp: &ScheduleHyper, schedule: SyncSchedule, numel: usize) -> StepProgram {
    let p = match schedule {
        SyncSchedule::Ddp => 1,
        _ => hp.partition_size,
    };
    let param_bytes = numel as u64 * 4;
    ScheduleSpec {
        n: hp.world,
        // One shared-memory "node": every thread-rank sits on it.
        k: hp.world,
        p_params: p,
        p_grads: p,
        p_opt: p,
        micro_sync: match schedule {
            SyncSchedule::Ddp => MicroSync::LocalAccumulate,
            SyncSchedule::PerMicroStepAllReduce => MicroSync::GlobalAllReduce,
            SyncSchedule::TwoHop => MicroSync::PartitionReduceScatter,
        },
        accum_steps: hp.accum_steps,
        hierarchical: false,
        coalesced: false,
        prefetch_depth: 0,
        decision_overhead: SimTime::ZERO,
        layers: vec![LayerSchedule { param_bytes, fwd_flops: 0.0, bwd_flops: 0.0 }],
        bucket_bytes: param_bytes.max(1),
        total_param_bytes: param_bytes,
        optimizer_bytes: numel as u64 * 24 / p as u64,
        compression: hp.comm_quant,
        elem_bytes: 4,
    }
    .program()
}

fn cast_params(src: &[f32], quantize: bool) -> Vec<f32> {
    if quantize {
        src.iter().map(|&x| quantize_f16(x)).collect()
    } else {
        src.to_vec()
    }
}

fn add_into(acc: &mut [f32], x: &[f32]) {
    debug_assert_eq!(acc.len(), x.len());
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += *b;
    }
}

fn pad_to(mut v: Vec<f32>, len: usize) -> Vec<f32> {
    debug_assert!(v.len() <= len);
    v.resize(len, 0.0);
    v
}

/// Run the configured training job under `schedule` on `setup.world`
/// thread-ranks and return the (rank-identical) outcome.
///
/// # Panics
/// Panics if `partition_size` does not divide `world` (for the sharded
/// schedules), or if any dimension is zero.
pub fn train(setup: &TrainSetup, schedule: SyncSchedule) -> TrainOutcome {
    let model = setup.model.clone();
    let dataset = TeacherDataset::new(
        &[model.input_dim(), 8, model.output_dim()],
        setup.seed ^ 0x51ab_0c1d_22ee_9f73,
    );
    let init = model.init_params(setup.seed);
    let micro_batch = setup.micro_batch;
    let hp = ScheduleHyper {
        world: setup.world,
        partition_size: setup.partition_size,
        accum_steps: setup.accum_steps,
        iterations: setup.iterations,
        lr: setup.lr,
        quantize: setup.quantize,
        loss_scale: setup.loss_scale,
        clip_grad_norm: setup.clip_grad_norm,
        comm_quant: setup.comm_quant,
    };
    train_generic(&hp, schedule, init, move |params, iter, micro, rank| {
        let (xs, ys) = dataset.micro_batch(iter, micro, rank, micro_batch);
        model.loss_and_grad(params, &xs, &ys)
    })
}

/// Schedule-level hyper-parameters shared by every model family.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleHyper {
    /// Data-parallel ranks.
    pub world: usize,
    /// Partition group size.
    pub partition_size: usize,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Optimizer steps.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// f16-quantize the forward parameter copies.
    pub quantize: bool,
    /// Loss-scaling policy.
    pub loss_scale: LossScale,
    /// Optional global-norm gradient clip.
    pub clip_grad_norm: Option<f32>,
    /// Quantized communication configuration (`None` = exact wire).
    pub comm_quant: Option<CompressionConfig>,
}

/// The schedule engine behind [`train`] (and the language-model trainer in
/// [`crate::lm`]): runs any model whose gradients come from `grad_fn
/// (params, iteration, micro_step, rank) → (loss, grad)`.
pub fn train_generic<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    init: Vec<f32>,
    grad_fn: F,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(hp, schedule, Start::Fresh(init), grad_fn, None)
}

/// Like [`train_generic`], but deposits a [`TrainCheckpoint`] into `sink` as
/// iteration `checkpoint_at` begins (state after `checkpoint_at` completed
/// iterations). The sink outlives the run, so the snapshot survives even if
/// a rank later dies mid-training.
pub fn train_resumable<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    init: Vec<f32>,
    grad_fn: F,
    checkpoint_at: usize,
    sink: &CheckpointSink,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(hp, schedule, Start::Fresh(init), grad_fn, Some((checkpoint_at, sink)))
}

/// Resume a run from a [`TrainCheckpoint`]: iterations
/// `ckpt.iterations_done .. hp.iterations` are (re)executed and the returned
/// [`TrainOutcome::losses`] covers exactly that tail. The checkpoint holds
/// full state, so `hp.partition_size` (and even `hp.world`) may differ from
/// the run that took the snapshot — resuming re-shards on the fly.
pub fn resume_from<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    ckpt: &TrainCheckpoint,
    grad_fn: F,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    run_engine(hp, schedule, Start::Resume(ckpt), grad_fn, None)
}

/// Where a run begins: from scratch, or from a snapshot.
enum Start<'a> {
    Fresh(Vec<f32>),
    Resume(&'a TrainCheckpoint),
}

fn run_engine<F>(
    hp: &ScheduleHyper,
    schedule: SyncSchedule,
    start: Start<'_>,
    grad_fn: F,
    checkpoint: Option<(usize, &CheckpointSink)>,
) -> TrainOutcome
where
    F: Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync,
{
    let setup = hp;
    assert!(setup.world > 0 && setup.accum_steps > 0);
    let (init, start_iter, resume): (Vec<f32>, usize, Option<&TrainCheckpoint>) = match start {
        Start::Fresh(init) => (init, 0, None),
        Start::Resume(ckpt) => {
            assert!(
                ckpt.iterations_done <= setup.iterations,
                "checkpoint at iteration {} is beyond the configured {} iterations",
                ckpt.iterations_done,
                setup.iterations
            );
            assert_eq!(
                ckpt.state.params.len(),
                ckpt.state.m.len(),
                "corrupt checkpoint: optimizer does not match parameters"
            );
            (ckpt.state.params.clone(), ckpt.iterations_done, Some(ckpt))
        }
    };
    if let Some((at, _)) = checkpoint {
        assert!(
            (start_iter..=setup.iterations).contains(&at),
            "checkpoint iteration {at} outside the run's [{start_iter}, {}] range",
            setup.iterations
        );
    }
    let p = match schedule {
        SyncSchedule::Ddp => setup.world, // unused, but keeps ShardSpec happy
        _ => {
            assert!(
                setup.partition_size > 0 && setup.world.is_multiple_of(setup.partition_size),
                "partition size {} must divide world {}",
                setup.partition_size,
                setup.world
            );
            setup.partition_size
        }
    };
    let numel = init.len();
    let spec = ShardSpec::new(numel, p);
    let s = setup.accum_steps;
    let world = setup.world;
    let global_scale = 1.0 / (s as f32 * world as f32);
    let grad_fn = &grad_fn;

    // One lowering of the training step — the same IR the simulator backend
    // costs. The emitter owns all wire decisions: which collectives exist
    // (single-rank groups fold locally and must not pay quantization
    // error), and which carry a codec (weight gathers and hop-1 reductions
    // stay inside the partition group; collectives that leave it compress
    // only under `CompressionScope::Everywhere`).
    let prog = step_program(setup, schedule, numel);
    let ir_p = prog.p;
    let prog = &prog;

    let mut results = run_ranks(world, |mut comm| {
        let rank = comm.rank();
        // Partition group: p consecutive ranks. Replication group: ranks
        // with equal local group rank (Figure 2).
        let part = comm.split((rank / p) as i64, rank as i64);
        let repl = comm.split((rank % p) as i64, rank as i64);
        let local = part.rank();

        // Per-schedule parameter/optimizer state: fresh, or rebuilt (and
        // re-sharded to this run's shape) from the checkpoint.
        let mut master_full = init.clone(); // used by DDP only
        let mut master_shard = spec.extract_padded(&init, local); // sharded schedules
        let mut opt = match (schedule, resume) {
            (SyncSchedule::Ddp, None) => Adam::new(numel, setup.lr),
            (SyncSchedule::Ddp, Some(c)) => {
                Adam::from_state(c.state.m.clone(), c.state.v.clone(), c.state.step, setup.lr)
            }
            (_, None) => Adam::new(spec.shard_len(), setup.lr),
            (_, Some(c)) => Adam::from_state(
                spec.extract_padded(&c.state.m, local),
                spec.extract_padded(&c.state.v, local),
                c.state.step,
                setup.lr,
            ),
        };

        let mut scaler = match resume {
            None => ScalerState::new(setup.loss_scale),
            Some(c) => ScalerState::resume(setup.loss_scale, c.scaler),
        };

        // Deposit this rank's shard of a snapshot: partition group 0 holds
        // one full replica between its ranks (rank 0 alone, for DDP).
        let capture = |iter: usize, full: &[f32], shard: &[f32], opt: &Adam, sc: &ScalerState| {
            let (at, sink) = match checkpoint {
                Some((at, sink)) if at == iter => (at, sink),
                _ => return,
            };
            match schedule {
                SyncSchedule::Ddp if rank == 0 => {
                    sink.deposit(0, 1, numel, TrainState::capture(full, opt), at, sc.snapshot());
                }
                SyncSchedule::Ddp => {}
                _ if rank < p => {
                    sink.deposit(
                        local,
                        p,
                        numel,
                        TrainState::capture(shard, opt),
                        at,
                        sc.snapshot(),
                    );
                }
                _ => {}
            }
        };

        let mut losses = Vec::with_capacity(setup.iterations - start_iter);
        let mut wire_log: Vec<usize> = Vec::new();
        for iter in start_iter..setup.iterations {
            capture(iter, &master_full, &master_shard, &opt, &scaler);
            let log_wire = iter == start_iter;
            let cur_scale = scaler.scale();
            let accum_len = match schedule {
                SyncSchedule::Ddp => numel,
                _ => spec.shard_len(),
            };
            let mut accum = vec![0.0f32; accum_len];
            let mut loss_acc = 0.0f32;
            // Interpreter state: the materialized forward parameters, the
            // in-flight micro-step gradient, and the boundary-reduced total.
            let mut fwd: Option<Vec<f32>> = None;
            let mut grad: Option<Vec<f32>> = None;
            let mut total: Option<Vec<f32>> = None;

            for (op_id, op) in prog.ops.iter().enumerate() {
                match &op.kind {
                    // Thread collectives already rendezvous; the barrier is
                    // a timing artifact of the "alternative schedule".
                    OpKind::MicroBarrier => {}
                    OpKind::GatherShards { wire, .. } => {
                        if !wire.group.contains(Rank(rank), world, ir_p) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        // The master weights do not change within an
                        // iteration, so one materialization serves every
                        // gather op (forward, backward, all micro-steps) —
                        // the interpreter's analogue of MiCS's cached
                        // communication decisions (§4).
                        if fwd.is_none() {
                            // Cast the fp32 master shard down, then
                            // all-gather the f16 shards within the partition
                            // group (what MiCS and ZeRO-3 both do before
                            // forward).
                            let cast = cast_params(&master_shard, setup.quantize);
                            let mut full = match wire.scheme {
                                Some(scheme) => quantized_all_gather(&part, &cast, scheme),
                                None => part.all_gather(&cast),
                            };
                            full.truncate(numel);
                            fwd = Some(full);
                        }
                    }
                    OpKind::Compute { pass: Pass::Forward, .. } => {
                        if fwd.is_none() {
                            // No gather ops in the program (DDP, or p = 1):
                            // the parameters materialize locally.
                            fwd = Some(match schedule {
                                SyncSchedule::Ddp => cast_params(&master_full, setup.quantize),
                                _ => {
                                    let cast = cast_params(&master_shard, setup.quantize);
                                    let mut full = part.all_gather(&cast);
                                    full.truncate(numel);
                                    full
                                }
                            });
                        }
                        let (loss, g) = grad_fn(fwd.as_deref().unwrap(), iter, op.micro, rank);
                        assert_eq!(g.len(), numel, "grad_fn returned a wrong-sized gradient");
                        loss_acc += loss;
                        grad = Some(g);
                    }
                    OpKind::Compute { pass: Pass::Backward, .. } => {
                        if cur_scale != 1.0 {
                            // Backward on the scaled loss (mixed-precision
                            // practice).
                            for g in grad.as_mut().expect("backward before forward") {
                                *g *= cur_scale;
                            }
                        }
                    }
                    OpKind::AccumGrads { .. } => {
                        let g = grad.take().expect("accumulate before backward");
                        match schedule {
                            SyncSchedule::Ddp => add_into(&mut accum, &g),
                            _ => add_into(&mut accum, &spec.extract_padded(&g, local)),
                        }
                    }
                    OpKind::ReduceScatterGrads { source: GradSource::MicroGrad, wire, .. } => {
                        if !wire.group.contains(Rank(rank), world, ir_p) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        // Hop 1: reduce-scatter within the partition group
                        // (the qgZ direction when quantized).
                        let g = grad.take().expect("reduce before backward");
                        let padded = pad_to(g, spec.padded_len());
                        let mine = match wire.scheme {
                            Some(scheme) => quantized_reduce_scatter(&part, &padded, scheme),
                            None => part.reduce_scatter(&padded),
                        };
                        add_into(&mut accum, &mine);
                    }
                    OpKind::ReduceScatterGrads { source: GradSource::Accum, .. } => {
                        unreachable!("boundary reduce-scatter (ZeRO-2) is not a minidl schedule")
                    }
                    OpKind::AllReduceGrads { source, wire, .. } => {
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        match source {
                            GradSource::MicroGrad => {
                                // Global synchronization barrier every
                                // micro-step — the cost §3.4 calls
                                // redundant.
                                let g = grad.take().expect("reduce before backward");
                                let g = match wire.scheme {
                                    Some(scheme) => quantized_all_reduce(&comm, &g, scheme),
                                    None => comm.all_reduce(&g),
                                };
                                add_into(&mut accum, &spec.extract_padded(&g, local));
                            }
                            GradSource::Accum => {
                                // DDP's boundary all-reduce of the
                                // accumulated gradient.
                                total = Some(match wire.scheme {
                                    Some(scheme) => quantized_all_reduce(&comm, &accum, scheme),
                                    None => comm.all_reduce(&accum),
                                });
                            }
                        }
                    }
                    OpKind::CrossGroupAllReduce { wire, .. } => {
                        if !wire.group.contains(Rank(rank), world, ir_p) {
                            continue;
                        }
                        if log_wire {
                            wire_log.push(op_id);
                        }
                        // Hop 2: all-reduce across the replication group —
                        // the emitter's scope rules decide whether it
                        // compresses (beyond the partition group, so
                        // intra-group-only compression keeps it exact).
                        total = Some(match wire.scheme {
                            Some(scheme) => quantized_all_reduce(&repl, &accum, scheme),
                            None => repl.all_reduce(&accum),
                        });
                    }
                    OpKind::OptimizerUpdate { .. } => {
                        // No boundary collective ran (single-rank groups):
                        // the accumulated gradient is already the total.
                        let total = total.take().unwrap_or_else(|| std::mem::take(&mut accum));
                        // Overflow agreement: every rank checks its portion;
                        // a max-style all-reduce makes the decision global,
                        // so all ranks skip (or apply) the step together.
                        let local_flag = if has_overflow(&total) { 1.0 } else { 0.0 };
                        let overflowed = comm.all_reduce(&[local_flag])[0] > 0.0;
                        let apply = scaler.update(overflowed);
                        if apply {
                            let inv = global_scale / cur_scale;
                            let mut scaled: Vec<f32> = total.iter().map(|&g| g * inv).collect();
                            if let Some(max_norm) = setup.clip_grad_norm {
                                // Global L2 norm: each full copy of the
                                // gradient is held `copies` times across the
                                // cluster, so divide the all-reduced sum of
                                // squares accordingly.
                                let copies = match schedule {
                                    SyncSchedule::Ddp => world as f32,
                                    _ => (world / p) as f32,
                                };
                                let local_sumsq: f32 = scaled.iter().map(|g| g * g).sum();
                                let global_sumsq = comm.all_reduce(&[local_sumsq])[0] / copies;
                                let norm = global_sumsq.sqrt();
                                if norm > max_norm {
                                    let coef = max_norm / (norm + 1e-6);
                                    for g in &mut scaled {
                                        *g *= coef;
                                    }
                                }
                            }
                            match schedule {
                                SyncSchedule::Ddp => opt.step(&mut master_full, &scaled),
                                _ => opt.step(&mut master_shard, &scaled),
                            }
                        }
                    }
                    OpKind::ParamRefresh { .. } => {
                        unreachable!("param refresh needs p_opt > p_params; minidl shards both")
                    }
                }
            }

            // Global mean loss for reporting.
            let mean = comm.all_reduce(&[loss_acc])[0] * global_scale;
            losses.push(mean);
        }
        // A snapshot may also be requested at the very end of the run.
        capture(setup.iterations, &master_full, &master_shard, &opt, &scaler);

        // Materialize final full parameters.
        let final_params = match schedule {
            SyncSchedule::Ddp => master_full,
            _ => {
                let mut full = part.all_gather(&master_shard);
                full.truncate(numel);
                full
            }
        };
        TrainOutcome {
            losses,
            final_params,
            skipped_steps: scaler.skipped_steps(),
            final_loss_scale: scaler.scale(),
            wire_ops: wire_log,
        }
    });

    // Sanity: every rank must agree bit-for-bit on the reported losses.
    let first = results[0].clone();
    for (r, out) in results.iter().enumerate() {
        assert_eq!(out.losses, first.losses, "rank {r} diverged");
    }
    results.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(world: usize, p: usize, s: usize) -> TrainSetup {
        TrainSetup {
            model: Mlp::new(&[6, 12, 2]),
            world,
            partition_size: p,
            micro_batch: 4,
            accum_steps: s,
            iterations: 15,
            lr: 0.02,
            seed: 1234,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
        }
    }

    #[test]
    fn all_schedules_converge() {
        for schedule in
            [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce, SyncSchedule::TwoHop]
        {
            let out = train(&setup(4, 2, 2), schedule);
            let first = out.losses[0];
            let last = *out.losses.last().unwrap();
            assert!(last < first * 0.7, "{schedule:?}: loss {first} → {last} did not converge");
        }
    }

    #[test]
    fn two_hop_with_full_partition_is_bitwise_zero3() {
        // With p = n, MiCS degenerates to ZeRO-3 and the schedules perform
        // the same sums in the same order → bit-identical training.
        let s = setup(4, 4, 3);
        let a = train(&s, SyncSchedule::PerMicroStepAllReduce);
        let b = train(&s, SyncSchedule::TwoHop);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.final_params, b.final_params);
    }

    #[test]
    fn two_hop_matches_ddp_convergence() {
        // Figure 15: same convergence behaviour (not necessarily the same
        // floating-point bits — summation orders differ).
        let s = setup(4, 2, 2);
        let ddp = train(&s, SyncSchedule::Ddp);
        let mics = train(&s, SyncSchedule::TwoHop);
        for (i, (a, b)) in ddp.losses.iter().zip(mics.losses.iter()).enumerate() {
            let denom = a.abs().max(1e-6);
            assert!((a - b).abs() / denom < 1e-3, "iteration {i}: DDP {a} vs MiCS {b}");
        }
    }

    #[test]
    fn two_hop_gradients_equal_global_all_reduce_exactly_in_expectation() {
        // Stronger algebraic check on the final parameters: with identical
        // data, the three schedules stay within a tight tolerance after
        // training.
        let s = setup(8, 2, 2);
        let ddp = train(&s, SyncSchedule::Ddp);
        let zero3 = train(&s, SyncSchedule::PerMicroStepAllReduce);
        let mics = train(&s, SyncSchedule::TwoHop);
        for i in 0..ddp.final_params.len() {
            let a = ddp.final_params[i];
            let b = mics.final_params[i];
            let c = zero3.final_params[i];
            assert!((a - b).abs() < 5e-4, "param {i}: ddp {a} vs mics {b}");
            assert!((a - c).abs() < 5e-4, "param {i}: ddp {a} vs zero3 {c}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = setup(4, 2, 2);
        let a = train(&s, SyncSchedule::TwoHop);
        let b = train(&s, SyncSchedule::TwoHop);
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_training_still_converges() {
        let mut s = setup(4, 2, 2);
        s.quantize = true;
        let out = train(&s, SyncSchedule::TwoHop);
        assert!(*out.losses.last().unwrap() < out.losses[0] * 0.8);
        // And differs from unquantized (the cast is real).
        let mut s2 = s.clone();
        s2.quantize = false;
        let exact = train(&s2, SyncSchedule::TwoHop);
        assert_ne!(out.losses, exact.losses);
    }

    #[test]
    fn int8_comm_training_tracks_exact_training() {
        use mics_compress::{CompressionConfig, QuantScheme};
        let exact = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        let mut cfg = setup(4, 2, 2);
        cfg.comm_quant = Some(CompressionConfig::both(QuantScheme::int8()));
        let q = train(&cfg, SyncSchedule::TwoHop);
        // The quantized wire is real (trajectories differ) ...
        assert_ne!(q.losses, exact.losses);
        // ... but stays within a few percent of the exact loss curve ...
        for (i, (a, b)) in exact.losses.iter().zip(q.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-6) < 0.05, "iter {i}: {a} vs {b}");
        }
        // ... and still converges.
        assert!(*q.losses.last().unwrap() < q.losses[0] * 0.8);
    }

    #[test]
    fn f16_weight_wire_is_lossless_for_f16_casts() {
        use mics_compress::{CompressionConfig, QuantScheme};
        // quantize=true casts shards to f16 *before* the gather, so an f16
        // wire carries them bit-exactly: weights-only f16 compression must
        // reproduce the uncompressed run exactly.
        let mut base = setup(4, 2, 2);
        base.quantize = true;
        let exact = train(&base, SyncSchedule::TwoHop);
        let mut cfg = base.clone();
        cfg.comm_quant = Some(CompressionConfig::weights_only(QuantScheme::F16));
        let q = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(q, exact);
    }

    #[test]
    fn intra_group_scope_keeps_hop2_exact() {
        use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
        // With intra-group-only scope and p = 1 every collective that could
        // compress is trivial or out of scope, so training is bit-exact.
        let mut cfg = setup(4, 1, 2);
        let mut cq = CompressionConfig::both(QuantScheme::int4());
        cq.scope = CompressionScope::IntraGroupOnly;
        cfg.comm_quant = Some(cq);
        let q = train(&cfg, SyncSchedule::TwoHop);
        let exact = train(&setup(4, 1, 2), SyncSchedule::TwoHop);
        assert_eq!(q, exact);
    }

    #[test]
    fn accumulation_depth_changes_only_comm_pattern_not_data_consumed() {
        // s=1 vs s=4 consume different batches per optimizer step, but both
        // must converge under the 2-hop schedule (the s=1 case the paper
        // discusses at the end of §3.4).
        for s in [1usize, 4] {
            let cfg = setup(4, 2, s);
            let out = train(&cfg, SyncSchedule::TwoHop);
            assert!(*out.losses.last().unwrap() < out.losses[0], "s={s} failed to improve");
        }
    }

    #[test]
    fn single_rank_degenerate_case() {
        let cfg = TrainSetup { world: 1, partition_size: 1, ..setup(1, 1, 2) };
        let out = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.losses.len(), cfg.iterations);
        assert!(*out.losses.last().unwrap() < out.losses[0]);
    }

    #[test]
    fn loss_scaling_is_numerically_transparent() {
        // Scaling the loss and unscaling the gradients must not change
        // training (up to fp rounding) for any schedule.
        let base = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        let mut cfg = setup(4, 2, 2);
        cfg.loss_scale = LossScale::Static(1024.0);
        let scaled = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(scaled.skipped_steps, 0);
        for (i, (a, b)) in base.losses.iter().zip(scaled.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-9) < 1e-3, "iter {i}: {a} vs {b}");
        }
    }

    #[test]
    fn dynamic_scale_grows_over_clean_steps() {
        let mut cfg = setup(4, 2, 2);
        cfg.loss_scale = LossScale::Dynamic { init: 256.0, growth_interval: 5 };
        let out = train(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.skipped_steps, 0);
        // 15 iterations, growth every 5 clean steps → 3 doublings.
        assert_eq!(out.final_loss_scale, 256.0 * 8.0);
        assert!(*out.losses.last().unwrap() < out.losses[0]);
    }

    #[test]
    fn gradient_clipping_caps_update_magnitude_consistently() {
        // A tiny clip threshold slows convergence but must act identically
        // across schedules (the global-norm all-reduce sees the same sums).
        let mut cfg = setup(4, 2, 2);
        cfg.clip_grad_norm = Some(0.01);
        let mics = train(&cfg, SyncSchedule::TwoHop);
        let ddp = train(&cfg, SyncSchedule::Ddp);
        for (i, (a, b)) in mics.losses.iter().zip(ddp.losses.iter()).enumerate() {
            assert!((a - b).abs() / a.abs().max(1e-9) < 2e-3, "iter {i}: {a} vs {b}");
        }
        // The cap genuinely binds: the trajectory differs from unclipped
        // training. (Adam's per-element normalization means clipping does
        // not necessarily slow convergence — it just changes the path.)
        let unclipped = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        assert_ne!(mics.losses, unclipped.losses, "clip at 0.01 must bind");
    }

    #[test]
    fn clipping_with_loose_threshold_is_identity() {
        let mut cfg = setup(4, 2, 2);
        cfg.clip_grad_norm = Some(1e6);
        let clipped = train(&cfg, SyncSchedule::TwoHop);
        let base = train(&setup(4, 2, 2), SyncSchedule::TwoHop);
        assert_eq!(clipped.losses, base.losses, "a loose clip must never bind");
    }

    #[test]
    #[should_panic(expected = "must divide world")]
    fn bad_partition_size_rejected() {
        let cfg = setup(4, 3, 2);
        let _ = train(&cfg, SyncSchedule::TwoHop);
    }

    type GradFn = dyn Fn(&[f32], usize, usize, usize) -> (f32, Vec<f32>) + Sync;

    /// Shared scaffolding for the resume tests: an Mlp + teacher dataset
    /// grad_fn equivalent to what [`train`] builds internally.
    fn resume_rig() -> (ScheduleHyper, Vec<f32>, Box<GradFn>) {
        let cfg = setup(4, 2, 2);
        let model = Mlp::new(&[6, 12, 2]);
        let dataset = TeacherDataset::new(&[6, 8, 2], cfg.seed ^ 0x51ab_0c1d_22ee_9f73);
        let init = model.init_params(cfg.seed);
        let hp = ScheduleHyper {
            world: cfg.world,
            partition_size: cfg.partition_size,
            accum_steps: cfg.accum_steps,
            iterations: cfg.iterations,
            lr: cfg.lr,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
        };
        let micro_batch = cfg.micro_batch;
        let grad = move |params: &[f32], iter: usize, micro: usize, rank: usize| {
            let (xs, ys) = dataset.micro_batch(iter, micro, rank, micro_batch);
            model.loss_and_grad(params, &xs, &ys)
        };
        (hp, init, Box::new(grad))
    }

    #[test]
    fn resume_mid_run_is_bit_exact() {
        let (hp, init, grad) = resume_rig();
        for schedule in
            [SyncSchedule::Ddp, SyncSchedule::PerMicroStepAllReduce, SyncSchedule::TwoHop]
        {
            let sink = CheckpointSink::new();
            let full = train_resumable(&hp, schedule, init.clone(), &grad, 7, &sink);
            let ckpt = sink.take().expect("snapshot must be deposited");
            assert_eq!(ckpt.iterations_done, 7);
            let resumed = resume_from(&hp, schedule, &ckpt, &grad);
            assert_eq!(resumed.losses, full.losses[7..], "{schedule:?} loss tail");
            assert_eq!(resumed.final_params, full.final_params, "{schedule:?} params");
            assert_eq!(resumed.final_loss_scale, full.final_loss_scale);
        }
    }

    #[test]
    fn checkpoint_at_start_reproduces_whole_run() {
        let (hp, init, grad) = resume_rig();
        let sink = CheckpointSink::new();
        let full = train_resumable(&hp, SyncSchedule::TwoHop, init.clone(), &grad, 0, &sink);
        let ckpt = sink.take().unwrap();
        // The iteration-0 snapshot is the init state with a zero optimizer.
        assert_eq!(ckpt.state.params, init);
        assert_eq!(ckpt.state.step, 0);
        let replay = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
        assert_eq!(replay, full);
    }

    #[test]
    fn checkpoint_at_end_captures_final_state() {
        let (hp, init, grad) = resume_rig();
        let sink = CheckpointSink::new();
        let full = train_resumable(&hp, SyncSchedule::TwoHop, init, &grad, hp.iterations, &sink);
        let ckpt = sink.take().unwrap();
        assert_eq!(ckpt.iterations_done, hp.iterations);
        assert_eq!(ckpt.state.params, full.final_params);
        // Resuming at the end runs zero iterations.
        let tail = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
        assert!(tail.losses.is_empty());
        assert_eq!(tail.final_params, full.final_params);
    }

    #[test]
    fn dynamic_loss_scale_survives_resume() {
        let (mut hp, init, grad) = resume_rig();
        hp.loss_scale = LossScale::Dynamic { init: 256.0, growth_interval: 4 };
        let sink = CheckpointSink::new();
        let full = train_resumable(&hp, SyncSchedule::TwoHop, init, &grad, 6, &sink);
        let ckpt = sink.take().unwrap();
        // 6 clean iterations → one doubling already happened; the growth
        // window is mid-flight and must be restored, not reset.
        assert_eq!(ckpt.scaler.scale, 512.0);
        assert_eq!(ckpt.scaler.good_steps, 2);
        let resumed = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
        assert_eq!(resumed.losses, full.losses[6..]);
        assert_eq!(resumed.final_loss_scale, full.final_loss_scale);
    }

    #[test]
    fn sink_is_empty_until_the_snapshot_iteration() {
        let sink = CheckpointSink::new();
        assert!(sink.take().is_none());
    }

    #[test]
    #[should_panic(expected = "beyond the configured")]
    fn resume_past_the_horizon_rejected() {
        let (mut hp, init, grad) = resume_rig();
        let sink = CheckpointSink::new();
        let _ = train_resumable(&hp, SyncSchedule::TwoHop, init, &grad, 7, &sink);
        let ckpt = sink.take().unwrap();
        hp.iterations = 3; // shorter than the snapshot's 7 completed iterations
        let _ = resume_from(&hp, SyncSchedule::TwoHop, &ckpt, &grad);
    }
}
