//! Deterministic synthetic data for the fidelity experiment.
//!
//! The paper trains on Wikipedia-en; the fidelity check (§5.4) only needs a
//! *learnable* task whose samples are identical across synchronization
//! schedules. We use a teacher–student setup: inputs are seeded uniform
//! vectors, targets come from a fixed random teacher network. Sample content
//! depends only on `(seed, iteration, micro_step, rank, sample)`, never on
//! thread scheduling.

use crate::nn::Mlp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic stream of regression micro-batches.
#[derive(Debug, Clone)]
pub struct TeacherDataset {
    teacher: Mlp,
    teacher_params: Vec<f32>,
    seed: u64,
}

impl TeacherDataset {
    /// Create a dataset whose targets are produced by a fixed random teacher
    /// with the given layer widths.
    pub fn new(teacher_dims: &[usize], seed: u64) -> Self {
        let teacher = Mlp::new(teacher_dims);
        let teacher_params = teacher.init_params(seed ^ 0x7e3a_c983_11bb_02fd);
        TeacherDataset { teacher, teacher_params, seed }
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.teacher.input_dim()
    }

    /// Target feature count.
    pub fn output_dim(&self) -> usize {
        self.teacher.output_dim()
    }

    /// The micro-batch a given `rank` sees at (`iteration`, `micro_step`):
    /// row-major inputs and targets.
    pub fn micro_batch(
        &self,
        iteration: usize,
        micro_step: usize,
        rank: usize,
        batch: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Mix the coordinates into a seed with splitmix-style constants.
        let mut key = self.seed;
        for coord in [iteration as u64, micro_step as u64, rank as u64] {
            key = key
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(coord.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            key ^= key >> 31;
        }
        let mut rng = StdRng::seed_from_u64(key);
        let in_dim = self.input_dim();
        let out_dim = self.output_dim();
        let mut xs = Vec::with_capacity(batch * in_dim);
        for _ in 0..batch * in_dim {
            xs.push(rng.gen_range(-1.0f32..1.0));
        }
        let mut ys = Vec::with_capacity(batch * out_dim);
        for s in 0..batch {
            let y = self.teacher.predict(&self.teacher_params, &xs[s * in_dim..(s + 1) * in_dim]);
            ys.extend_from_slice(&y);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let d = TeacherDataset::new(&[6, 8, 2], 1);
        let (xs, ys) = d.micro_batch(0, 0, 0, 5);
        assert_eq!(xs.len(), 30);
        assert_eq!(ys.len(), 10);
    }

    #[test]
    fn deterministic_per_coordinates() {
        let d = TeacherDataset::new(&[4, 6, 1], 9);
        assert_eq!(d.micro_batch(3, 1, 2, 4), d.micro_batch(3, 1, 2, 4));
    }

    #[test]
    fn distinct_coordinates_give_distinct_batches() {
        let d = TeacherDataset::new(&[4, 6, 1], 9);
        let base = d.micro_batch(0, 0, 0, 4).0;
        assert_ne!(base, d.micro_batch(1, 0, 0, 4).0, "iteration must matter");
        assert_ne!(base, d.micro_batch(0, 1, 0, 4).0, "micro-step must matter");
        assert_ne!(base, d.micro_batch(0, 0, 1, 4).0, "rank must matter");
    }

    #[test]
    fn targets_are_teacher_outputs() {
        let d = TeacherDataset::new(&[3, 5, 2], 4);
        let (xs, ys) = d.micro_batch(0, 0, 0, 3);
        for s in 0..3 {
            let y = d.teacher.predict(&d.teacher_params, &xs[s * 3..(s + 1) * 3]);
            assert_eq!(&ys[s * 2..(s + 1) * 2], y.as_slice());
        }
    }

    #[test]
    fn different_seeds_different_teachers() {
        let a = TeacherDataset::new(&[3, 5, 1], 1);
        let b = TeacherDataset::new(&[3, 5, 1], 2);
        assert_ne!(a.teacher_params, b.teacher_params);
    }
}
