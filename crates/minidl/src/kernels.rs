//! SIMD + multicore f32 kernels for the real backend's forward/backward
//! passes (Kernels v2), plus the cache-blocked v1 kernels ([`mod@blocked`])
//! and the naive [`mod@reference`] implementations both are drift-bounded
//! against.
//!
//! # Lane discipline (bit-identity by construction)
//!
//! Every kernel is written **once**, generically over a private `Lanes`
//! backend of width 8, and instantiated twice:
//!
//! * `AvxLanes` — AVX2 + FMA intrinsics (`__m256`, `_mm256_fmadd_ps`),
//!   compiled under `#[target_feature(enable = "avx2,fma")]` and selected
//!   only after `is_x86_feature_detected!` confirms the host;
//! * `ScalarLanes` — `[f32; 8]` virtual vectors whose per-lane
//!   `f32::mul_add` is the same correctly-rounded fused operation as
//!   `vfmaddps`, and whose horizontal sum replays the AVX reduction tree
//!   `((q0+q2)+(q1+q3))` with `q_l = v_l + v_{l+4}` node for node.
//!
//! Because both backends run the *same* generic body — same 8-wide strip
//! mining, same scalar tail, same reduction tree — the SIMD path and the
//! scalar fallback produce **byte-identical** outputs, not merely close
//! ones. `tests/kernels_v2.rs` asserts this across the whole config
//! matrix.
//!
//! # Deterministic multithreading
//!
//! Kernels fan out over a persistent worker pool (the private `pool`
//! module) using the
//! per-rank progress-thread idiom from `mics-dataplane`: workers park on a
//! condvar and are handed `(items, parts)` jobs by epoch. The partition
//! splits **output** rows/columns only — never a reduction axis — so every
//! output element is computed by exactly one thread in exactly the
//! program order a single thread would use. Results are therefore
//! bit-stable at any thread count (`MICS_KERNEL_THREADS`, or
//! [`set_kernel_threads`]).
//!
//! # Observability
//!
//! Always-on [`mics_trace::Counters`] cells tally calls, FLOPs and which
//! path (SIMD vs fallback) ran ([`kernel_stats`]); when the global
//! [`mics_trace::Recorder`] is enabled each kernel also emits a span, a
//! `kernel GFLOP/s` counter track and a `tile queue depth` gauge into the
//! same merged Perfetto timeline as the executor's lanes and wires.

use mics_trace::{Arg, Counter, Counters};
use std::ops::Range;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Register-block height: rows of the reduction dimension fused per pass.
const UNROLL: usize = 4;
/// Cache tile for the reduction dimension of [`matmul`].
const KC: usize = 256;
/// Virtual vector width shared by both lane backends.
const LANES: usize = 8;

// ---- configuration ---------------------------------------------------------

/// Runtime knobs. `threads == 0` / `simd == 0` mean "unset, consult the
/// environment"; the setters below override both env and autodetection.
struct Knobs {
    threads: AtomicUsize,
    simd: AtomicU8,
}

static KNOBS: Knobs = Knobs { threads: AtomicUsize::new(0), simd: AtomicU8::new(0) };

/// `MICS_KERNEL_THREADS`, parsed once (0 = unset).
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MICS_KERNEL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// The host's available parallelism, read once.
fn host_threads() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Whether this host can run the AVX2+FMA path at all (detected once).
pub fn simd_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Force the SIMD path on/off (`Some`), or restore autodetection (`None`).
/// Forcing *on* still requires [`simd_available`]; on hosts without
/// AVX2+FMA the fallback always runs. Outputs are byte-identical either
/// way — this knob exists for tests and benchmarking, not correctness.
pub fn set_simd(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    KNOBS.simd.store(v, Ordering::Relaxed);
}

/// Whether the next kernel dispatch will take the SIMD path.
pub fn simd_active() -> bool {
    match KNOBS.simd.load(Ordering::Relaxed) {
        1 => false,
        _ => simd_available(),
    }
}

/// Override the kernel thread count (`Some(n)`), or restore the
/// `MICS_KERNEL_THREADS` / `available_parallelism` default (`None` or
/// `Some(0)`). The partition is over output elements only, so any value
/// produces bit-identical results.
pub fn set_kernel_threads(n: Option<usize>) {
    KNOBS.threads.store(n.unwrap_or(0).min(MAX_THREADS), Ordering::Relaxed);
}

/// Hard cap on pool width — a guard against absurd env values, far above
/// any host this stack targets.
const MAX_THREADS: usize = 64;

/// The resolved kernel thread count: override > `MICS_KERNEL_THREADS` >
/// `available_parallelism()`, clamped to `1..=64`.
pub fn kernel_threads() -> usize {
    let o = KNOBS.threads.load(Ordering::Relaxed);
    let t = if o != 0 {
        o
    } else if env_threads() != 0 {
        env_threads()
    } else {
        host_threads()
    };
    t.clamp(1, MAX_THREADS)
}

/// Resolve every lazy knob (env, feature detection, counter cells) and
/// warm the worker pool, so the first hot-path kernel call pays no
/// first-use cost. Called by the training engine before ranks spawn;
/// idempotent.
pub fn init() {
    let _ = (env_threads(), host_threads(), simd_available());
    let _ = cells();
    pool::warm(kernel_threads());
}

// ---- counters + trace ------------------------------------------------------

/// Always-on counter cells (cheap relaxed atomics; see [`kernel_stats`]).
struct Cells {
    registry: Counters,
    calls: Counter,
    flops: Counter,
    simd_calls: Counter,
    fallback_calls: Counter,
    pool_dispatches: Counter,
}

fn cells() -> &'static Cells {
    static CELLS: OnceLock<Cells> = OnceLock::new();
    CELLS.get_or_init(|| {
        let registry = Counters::new();
        Cells {
            calls: registry.counter("kernel.calls"),
            flops: registry.counter("kernel.flops"),
            simd_calls: registry.counter("kernel.simd_calls"),
            fallback_calls: registry.counter("kernel.fallback_calls"),
            pool_dispatches: registry.counter("kernel.pool_dispatches"),
            registry,
        }
    })
}

/// Snapshot of the always-on kernel counters, in registration order:
/// `kernel.calls`, `kernel.flops` (2·m·k·n-style accounting),
/// `kernel.simd_calls`, `kernel.fallback_calls`, `kernel.pool_dispatches`.
pub fn kernel_stats() -> Vec<(String, u64)> {
    cells().registry.snapshot()
}

/// Total FLOPs executed by the kernels in this process so far.
pub fn flops_total() -> u64 {
    cells().flops.get()
}

/// Count the call, attribute its path and FLOPs, and — when the global
/// recorder is on — wrap it in a span plus a `kernel GFLOP/s` sample.
#[inline]
fn record<R>(name: &'static str, flops: u64, simd: bool, f: impl FnOnce() -> R) -> R {
    let c = cells();
    c.calls.incr();
    c.flops.add(flops);
    if simd {
        c.simd_calls.incr();
    } else {
        c.fallback_calls.incr();
    }
    let rec = mics_trace::global();
    if !rec.is_enabled() {
        return f();
    }
    let t0 = rec.now_ns();
    let r = f();
    let t1 = rec.now_ns();
    rec.span("kernels", "compute", name, "kernel", t0, t1, vec![("flops", Arg::Int(flops as i64))]);
    rec.counter("kernels", "compute", "kernel GFLOP/s", flops as f64 / (t1 - t0).max(1) as f64);
    r
}

// ---- lane backends ---------------------------------------------------------

/// An 8-wide f32 vector backend. Both implementations perform the same
/// per-lane operations (fused multiply-add, single rounding) and the same
/// horizontal reduction tree, which is what makes the SIMD and fallback
/// paths byte-identical.
trait Lanes {
    /// The 8-lane vector type.
    type V: Copy;
    /// Broadcast.
    fn splat(x: f32) -> Self::V;
    /// All-zero vector.
    fn zero() -> Self::V {
        Self::splat(0.0)
    }
    /// Load `s[at..at + 8]`.
    fn ld(s: &[f32], at: usize) -> Self::V;
    /// Store into `s[at..at + 8]`.
    fn st(s: &mut [f32], at: usize, v: Self::V);
    /// Per-lane fused `a·b + c` (single rounding).
    fn fma(a: Self::V, b: Self::V, c: Self::V) -> Self::V;
    /// Per-lane `a + b`.
    fn add(a: Self::V, b: Self::V) -> Self::V;
    /// Horizontal sum via the fixed tree `(q0+q2) + (q1+q3)` over
    /// `q_l = v_l + v_{l+4}`.
    fn hsum(v: Self::V) -> f32;
}

/// Portable backend: `[f32; 8]` with per-lane `mul_add`. This is the
/// *fallback*, not a vaguely-similar rewrite: every arithmetic step
/// mirrors `AvxLanes` lane for lane.
struct ScalarLanes;

impl Lanes for ScalarLanes {
    type V = [f32; 8];

    #[inline(always)]
    fn splat(x: f32) -> [f32; 8] {
        [x; 8]
    }

    #[inline(always)]
    fn ld(s: &[f32], at: usize) -> [f32; 8] {
        let mut v = [0.0f32; 8];
        v.copy_from_slice(&s[at..at + 8]);
        v
    }

    #[inline(always)]
    fn st(s: &mut [f32], at: usize, v: [f32; 8]) {
        s[at..at + 8].copy_from_slice(&v);
    }

    #[inline(always)]
    fn fma(a: [f32; 8], b: [f32; 8], c: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for l in 0..8 {
            o[l] = a[l].mul_add(b[l], c[l]);
        }
        o
    }

    #[inline(always)]
    fn add(a: [f32; 8], b: [f32; 8]) -> [f32; 8] {
        let mut o = [0.0f32; 8];
        for l in 0..8 {
            o[l] = a[l] + b[l];
        }
        o
    }

    #[inline(always)]
    fn hsum(v: [f32; 8]) -> f32 {
        let q0 = v[0] + v[4];
        let q1 = v[1] + v[5];
        let q2 = v[2] + v[6];
        let q3 = v[3] + v[7];
        (q0 + q2) + (q1 + q3)
    }
}

/// AVX2 + FMA backend. Only instantiated inside
/// `#[target_feature(enable = "avx2,fma")]` functions that are reached
/// exclusively after runtime detection ([`simd_active`]).
#[cfg(target_arch = "x86_64")]
mod avx {
    use super::{body, Lanes, Range};
    use std::arch::x86_64::*;

    pub(super) struct AvxLanes;

    impl Lanes for AvxLanes {
        type V = __m256;

        #[inline(always)]
        fn splat(x: f32) -> __m256 {
            // SAFETY: callers are gated on runtime AVX2+FMA detection.
            unsafe { _mm256_set1_ps(x) }
        }

        #[inline(always)]
        fn ld(s: &[f32], at: usize) -> __m256 {
            debug_assert!(at + 8 <= s.len());
            // SAFETY: bounds asserted above; unaligned load is allowed.
            unsafe { _mm256_loadu_ps(s.as_ptr().add(at)) }
        }

        #[inline(always)]
        fn st(s: &mut [f32], at: usize, v: __m256) {
            debug_assert!(at + 8 <= s.len());
            // SAFETY: bounds asserted above; unaligned store is allowed.
            unsafe { _mm256_storeu_ps(s.as_mut_ptr().add(at), v) }
        }

        #[inline(always)]
        fn fma(a: __m256, b: __m256, c: __m256) -> __m256 {
            // SAFETY: callers are gated on runtime AVX2+FMA detection.
            unsafe { _mm256_fmadd_ps(a, b, c) }
        }

        #[inline(always)]
        fn add(a: __m256, b: __m256) -> __m256 {
            // SAFETY: callers are gated on runtime AVX2+FMA detection.
            unsafe { _mm256_add_ps(a, b) }
        }

        #[inline(always)]
        fn hsum(v: __m256) -> f32 {
            // SAFETY: callers are gated on runtime AVX2+FMA detection.
            unsafe {
                let lo = _mm256_castps256_ps128(v);
                let hi = _mm256_extractf128_ps(v, 1);
                let q = _mm_add_ps(lo, hi); // q_l = v_l + v_{l+4}
                let r = _mm_movehl_ps(q, q); // (q2, q3, q2, q3)
                let h = _mm_add_ps(q, r); // (q0+q2, q1+q3, ..)
                let s = _mm_add_ss(h, _mm_shuffle_ps(h, h, 0b01));
                _mm_cvtss_f32(s)
            }
        }
    }

    // One `#[target_feature]` wrapper per generic body so the whole
    // inlined kernel is compiled with AVX2+FMA enabled.

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matmul_rows(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        body::matmul_rows::<AvxLanes>(a, b, k, n, rows, out)
    }

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matmul_bt_rows(
        dout: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        body::matmul_bt_rows::<AvxLanes>(dout, b, n, k, rows, out)
    }

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn acc_matmul_at_rows(
        a: &[f32],
        dout: &[f32],
        m: usize,
        k: usize,
        n: usize,
        kks: Range<usize>,
        gw: &mut [f32],
    ) {
        body::acc_matmul_at_rows::<AvxLanes>(a, dout, m, k, n, kks, gw)
    }

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matvec_bias_rows(
        w: &[f32],
        bias: &[f32],
        x: &[f32],
        in_dim: usize,
        os: Range<usize>,
        out: &mut [f32],
    ) {
        body::matvec_bias_rows::<AvxLanes>(w, bias, x, in_dim, os, out)
    }

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn matvec_t_cols(
        w: &[f32],
        d: &[f32],
        out_dim: usize,
        in_dim: usize,
        cols: Range<usize>,
        out: &mut [f32],
    ) {
        body::matvec_t_cols::<AvxLanes>(w, d, out_dim, in_dim, cols, out)
    }

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn acc_outer_rows(d: &[f32], x: &[f32], rows: Range<usize>, gw: &mut [f32]) {
        body::acc_outer_rows::<AvxLanes>(d, x, rows, gw)
    }

    /// # Safety
    /// The host must support AVX2 and FMA (checked by [`super::simd_active`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn add_bias_chunk(
        bias: &[f32],
        n: usize,
        rows: Range<usize>,
        xs: &mut [f32],
    ) {
        body::add_bias_chunk::<AvxLanes>(bias, n, rows, xs)
    }
}

// ---- generic kernel bodies -------------------------------------------------

/// The single source of truth for every kernel's arithmetic, generic over
/// the lane backend. Each body operates on a *chunk*: a range of output
/// rows (or columns) plus the output subslice covering exactly that
/// range, so the pool can hand disjoint chunks to different threads.
mod body {
    use super::{Lanes, Range, KC, LANES, UNROLL};

    /// `out = a[rows] · b`: register-tiled micro-kernel. Output tiles of
    /// `UNROLL` rows × two vectors (4×16) live in accumulators across the
    /// whole k-tile with `k` innermost and ascending, so each element is
    /// one fused chain in `k` order — the same per-element association as
    /// any strip width or row grouping, hence bit-stable under both the
    /// thread partition and the tail paths. `out` covers `rows`
    /// (`rows.len() × n`).
    #[inline(always)]
    pub(super) fn matmul_rows<L: Lanes>(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), rows.len() * n);
        for kk in (0..k).step_by(KC) {
            let kend = (kk + KC).min(k);
            // 4-row blocks share every b load across 8 accumulators.
            let mut ri = 0;
            while ri + UNROLL <= rows.len() {
                let i = rows.start + ri;
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let (o01, o23) = out[ri * n..(ri + 4) * n].split_at_mut(2 * n);
                let (o0, o1) = o01.split_at_mut(n);
                let (o2, o3) = o23.split_at_mut(n);
                let mut j = 0;
                while j + 2 * LANES <= n {
                    let jh = j + LANES;
                    let mut c00 = L::ld(o0, j);
                    let mut c01 = L::ld(o0, jh);
                    let mut c10 = L::ld(o1, j);
                    let mut c11 = L::ld(o1, jh);
                    let mut c20 = L::ld(o2, j);
                    let mut c21 = L::ld(o2, jh);
                    let mut c30 = L::ld(o3, j);
                    let mut c31 = L::ld(o3, jh);
                    for kc in kk..kend {
                        let brow = &b[kc * n..(kc + 1) * n];
                        let vb0 = L::ld(brow, j);
                        let vb1 = L::ld(brow, jh);
                        let va = L::splat(a0[kc]);
                        c00 = L::fma(va, vb0, c00);
                        c01 = L::fma(va, vb1, c01);
                        let va = L::splat(a1[kc]);
                        c10 = L::fma(va, vb0, c10);
                        c11 = L::fma(va, vb1, c11);
                        let va = L::splat(a2[kc]);
                        c20 = L::fma(va, vb0, c20);
                        c21 = L::fma(va, vb1, c21);
                        let va = L::splat(a3[kc]);
                        c30 = L::fma(va, vb0, c30);
                        c31 = L::fma(va, vb1, c31);
                    }
                    L::st(o0, j, c00);
                    L::st(o0, jh, c01);
                    L::st(o1, j, c10);
                    L::st(o1, jh, c11);
                    L::st(o2, j, c20);
                    L::st(o2, jh, c21);
                    L::st(o3, j, c30);
                    L::st(o3, jh, c31);
                    j += 2 * LANES;
                }
                while j + LANES <= n {
                    let mut c0 = L::ld(o0, j);
                    let mut c1 = L::ld(o1, j);
                    let mut c2 = L::ld(o2, j);
                    let mut c3 = L::ld(o3, j);
                    for kc in kk..kend {
                        let vb = L::ld(&b[kc * n..(kc + 1) * n], j);
                        c0 = L::fma(L::splat(a0[kc]), vb, c0);
                        c1 = L::fma(L::splat(a1[kc]), vb, c1);
                        c2 = L::fma(L::splat(a2[kc]), vb, c2);
                        c3 = L::fma(L::splat(a3[kc]), vb, c3);
                    }
                    L::st(o0, j, c0);
                    L::st(o1, j, c1);
                    L::st(o2, j, c2);
                    L::st(o3, j, c3);
                    j += LANES;
                }
                while j < n {
                    let (mut s0, mut s1, mut s2, mut s3) = (o0[j], o1[j], o2[j], o3[j]);
                    for kc in kk..kend {
                        let bv = b[kc * n + j];
                        s0 = a0[kc].mul_add(bv, s0);
                        s1 = a1[kc].mul_add(bv, s1);
                        s2 = a2[kc].mul_add(bv, s2);
                        s3 = a3[kc].mul_add(bv, s3);
                    }
                    o0[j] = s0;
                    o1[j] = s1;
                    o2[j] = s2;
                    o3[j] = s3;
                    j += 1;
                }
                ri += UNROLL;
            }
            // Row tail: one row at a time, same strip widths.
            while ri < rows.len() {
                let i = rows.start + ri;
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[ri * n..(ri + 1) * n];
                let mut j = 0;
                while j + 2 * LANES <= n {
                    let jh = j + LANES;
                    let mut c0 = L::ld(orow, j);
                    let mut c1 = L::ld(orow, jh);
                    for kc in kk..kend {
                        let brow = &b[kc * n..(kc + 1) * n];
                        let va = L::splat(arow[kc]);
                        c0 = L::fma(va, L::ld(brow, j), c0);
                        c1 = L::fma(va, L::ld(brow, jh), c1);
                    }
                    L::st(orow, j, c0);
                    L::st(orow, jh, c1);
                    j += 2 * LANES;
                }
                while j + LANES <= n {
                    let mut c = L::ld(orow, j);
                    for kc in kk..kend {
                        c = L::fma(L::splat(arow[kc]), L::ld(&b[kc * n..(kc + 1) * n], j), c);
                    }
                    L::st(orow, j, c);
                    j += LANES;
                }
                while j < n {
                    let mut s = orow[j];
                    for kc in kk..kend {
                        s = arow[kc].mul_add(b[kc * n + j], s);
                    }
                    orow[j] = s;
                    j += 1;
                }
                ri += 1;
            }
        }
    }

    /// `out = d[rows] · bᵀ`: four simultaneous 8-wide dot products per
    /// pass, reduced by the fixed [`Lanes::hsum`] tree, scalar tail
    /// folded in *after* the tree. `out` covers `rows` (`rows.len() × k`).
    #[inline(always)]
    pub(super) fn matmul_bt_rows<L: Lanes>(
        dout: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), rows.len() * k);
        for (ri, i) in rows.clone().enumerate() {
            let drow = &dout[i * n..(i + 1) * n];
            let orow = &mut out[ri * k..(ri + 1) * k];
            let mut kk = 0;
            while kk + UNROLL <= k {
                let b0 = &b[kk * n..(kk + 1) * n];
                let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                let (mut v0, mut v1, mut v2, mut v3) = (L::zero(), L::zero(), L::zero(), L::zero());
                let mut j = 0;
                while j + LANES <= n {
                    let vd = L::ld(drow, j);
                    v0 = L::fma(vd, L::ld(b0, j), v0);
                    v1 = L::fma(vd, L::ld(b1, j), v1);
                    v2 = L::fma(vd, L::ld(b2, j), v2);
                    v3 = L::fma(vd, L::ld(b3, j), v3);
                    j += LANES;
                }
                let (mut s0, mut s1, mut s2, mut s3) =
                    (L::hsum(v0), L::hsum(v1), L::hsum(v2), L::hsum(v3));
                while j < n {
                    let dv = drow[j];
                    s0 = dv.mul_add(b0[j], s0);
                    s1 = dv.mul_add(b1[j], s1);
                    s2 = dv.mul_add(b2[j], s2);
                    s3 = dv.mul_add(b3[j], s3);
                    j += 1;
                }
                orow[kk] = s0;
                orow[kk + 1] = s1;
                orow[kk + 2] = s2;
                orow[kk + 3] = s3;
                kk += UNROLL;
            }
            while kk < k {
                let brow = &b[kk * n..(kk + 1) * n];
                let mut v = L::zero();
                let mut j = 0;
                while j + LANES <= n {
                    v = L::fma(L::ld(drow, j), L::ld(brow, j), v);
                    j += LANES;
                }
                let mut s = L::hsum(v);
                while j < n {
                    s = drow[j].mul_add(brow[j], s);
                    j += 1;
                }
                orow[kk] = s;
                kk += 1;
            }
        }
    }

    /// Accumulate `aᵀ·d` into the `kks` rows of `gw`: four samples fuse
    /// per pass over the gradient rows. `gw` covers `kks`
    /// (`kks.len() × n`). The batch loop order is fixed, so any `kks`
    /// partition yields the same per-element accumulation order.
    #[inline(always)]
    pub(super) fn acc_matmul_at_rows<L: Lanes>(
        a: &[f32],
        dout: &[f32],
        m: usize,
        k: usize,
        n: usize,
        kks: Range<usize>,
        gw: &mut [f32],
    ) {
        debug_assert_eq!(gw.len(), kks.len() * n);
        let mut i = 0;
        while i + UNROLL <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let d0 = &dout[i * n..(i + 1) * n];
            let d1 = &dout[(i + 1) * n..(i + 2) * n];
            let d2 = &dout[(i + 2) * n..(i + 3) * n];
            let d3 = &dout[(i + 3) * n..(i + 4) * n];
            for (rk, kk) in kks.clone().enumerate() {
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                let (vx0, vx1, vx2, vx3) = (L::splat(x0), L::splat(x1), L::splat(x2), L::splat(x3));
                let grow = &mut gw[rk * n..(rk + 1) * n];
                let mut j = 0;
                while j + LANES <= n {
                    let mut acc = L::ld(grow, j);
                    acc = L::fma(vx0, L::ld(d0, j), acc);
                    acc = L::fma(vx1, L::ld(d1, j), acc);
                    acc = L::fma(vx2, L::ld(d2, j), acc);
                    acc = L::fma(vx3, L::ld(d3, j), acc);
                    L::st(grow, j, acc);
                    j += LANES;
                }
                while j < n {
                    let mut g = grow[j];
                    g = x0.mul_add(d0[j], g);
                    g = x1.mul_add(d1[j], g);
                    g = x2.mul_add(d2[j], g);
                    g = x3.mul_add(d3[j], g);
                    grow[j] = g;
                    j += 1;
                }
            }
            i += UNROLL;
        }
        while i < m {
            let arow = &a[i * k..(i + 1) * k];
            let drow = &dout[i * n..(i + 1) * n];
            for (rk, kk) in kks.clone().enumerate() {
                let x = arow[kk];
                let vx = L::splat(x);
                let grow = &mut gw[rk * n..(rk + 1) * n];
                let mut j = 0;
                while j + LANES <= n {
                    L::st(grow, j, L::fma(vx, L::ld(drow, j), L::ld(grow, j)));
                    j += LANES;
                }
                while j < n {
                    grow[j] = x.mul_add(drow[j], grow[j]);
                    j += 1;
                }
            }
            i += 1;
        }
    }

    /// `out[o] = bias[o] + w[o]·x` for `o ∈ os`: four rows' 8-wide dot
    /// products share each load of `x`; bias joins the tree sum, the
    /// scalar tail folds in after. Each row's chain is independent, so
    /// the 4-row grouping never changes bits. `out` covers `os`.
    #[inline(always)]
    pub(super) fn matvec_bias_rows<L: Lanes>(
        w: &[f32],
        bias: &[f32],
        x: &[f32],
        in_dim: usize,
        os: Range<usize>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), os.len());
        let mut o = os.start;
        while o + UNROLL <= os.end {
            let w0 = &w[o * in_dim..(o + 1) * in_dim];
            let w1 = &w[(o + 1) * in_dim..(o + 2) * in_dim];
            let w2 = &w[(o + 2) * in_dim..(o + 3) * in_dim];
            let w3 = &w[(o + 3) * in_dim..(o + 4) * in_dim];
            let (mut v0, mut v1, mut v2, mut v3) = (L::zero(), L::zero(), L::zero(), L::zero());
            let mut j = 0;
            while j + LANES <= in_dim {
                let vx = L::ld(x, j);
                v0 = L::fma(vx, L::ld(w0, j), v0);
                v1 = L::fma(vx, L::ld(w1, j), v1);
                v2 = L::fma(vx, L::ld(w2, j), v2);
                v3 = L::fma(vx, L::ld(w3, j), v3);
                j += LANES;
            }
            let (mut s0, mut s1, mut s2, mut s3) = (
                bias[o] + L::hsum(v0),
                bias[o + 1] + L::hsum(v1),
                bias[o + 2] + L::hsum(v2),
                bias[o + 3] + L::hsum(v3),
            );
            while j < in_dim {
                let xv = x[j];
                s0 = xv.mul_add(w0[j], s0);
                s1 = xv.mul_add(w1[j], s1);
                s2 = xv.mul_add(w2[j], s2);
                s3 = xv.mul_add(w3[j], s3);
                j += 1;
            }
            out[o - os.start] = s0;
            out[o - os.start + 1] = s1;
            out[o - os.start + 2] = s2;
            out[o - os.start + 3] = s3;
            o += UNROLL;
        }
        while o < os.end {
            let row = &w[o * in_dim..(o + 1) * in_dim];
            let mut v = L::zero();
            let mut j = 0;
            while j + LANES <= in_dim {
                v = L::fma(L::ld(x, j), L::ld(row, j), v);
                j += LANES;
            }
            let mut s = bias[o] + L::hsum(v);
            while j < in_dim {
                s = x[j].mul_add(row[j], s);
                j += 1;
            }
            out[o - os.start] = s;
            o += 1;
        }
    }

    /// `out[i] = Σₒ w[o][i]·d[o]` for `i ∈ cols`: four weight rows fuse
    /// into one pass over the accumulator stream, restricted to the
    /// `cols` slice of the output. `out` covers `cols` and is pre-zeroed.
    #[inline(always)]
    pub(super) fn matvec_t_cols<L: Lanes>(
        w: &[f32],
        d: &[f32],
        out_dim: usize,
        in_dim: usize,
        cols: Range<usize>,
        out: &mut [f32],
    ) {
        debug_assert_eq!(out.len(), cols.len());
        let width = cols.len();
        let mut o = 0;
        while o + UNROLL <= out_dim {
            let (vd0, vd1, vd2, vd3) =
                (L::splat(d[o]), L::splat(d[o + 1]), L::splat(d[o + 2]), L::splat(d[o + 3]));
            let w0 = &w[o * in_dim + cols.start..o * in_dim + cols.end];
            let w1 = &w[(o + 1) * in_dim + cols.start..(o + 1) * in_dim + cols.end];
            let w2 = &w[(o + 2) * in_dim + cols.start..(o + 2) * in_dim + cols.end];
            let w3 = &w[(o + 3) * in_dim + cols.start..(o + 3) * in_dim + cols.end];
            let mut j = 0;
            while j + LANES <= width {
                let mut acc = L::ld(out, j);
                acc = L::fma(vd0, L::ld(w0, j), acc);
                acc = L::fma(vd1, L::ld(w1, j), acc);
                acc = L::fma(vd2, L::ld(w2, j), acc);
                acc = L::fma(vd3, L::ld(w3, j), acc);
                L::st(out, j, acc);
                j += LANES;
            }
            while j < width {
                let mut ov = out[j];
                ov = d[o].mul_add(w0[j], ov);
                ov = d[o + 1].mul_add(w1[j], ov);
                ov = d[o + 2].mul_add(w2[j], ov);
                ov = d[o + 3].mul_add(w3[j], ov);
                out[j] = ov;
                j += 1;
            }
            o += UNROLL;
        }
        while o < out_dim {
            let dv = d[o];
            let vd = L::splat(dv);
            let row = &w[o * in_dim + cols.start..o * in_dim + cols.end];
            let mut j = 0;
            while j + LANES <= width {
                L::st(out, j, L::fma(vd, L::ld(row, j), L::ld(out, j)));
                j += LANES;
            }
            while j < width {
                out[j] = dv.mul_add(row[j], out[j]);
                j += 1;
            }
            o += 1;
        }
    }

    /// Accumulate `d[rows] ⊗ x` into the `rows` slice of `gw`: one
    /// 8-wide saxpy per output row. `gw` covers `rows`
    /// (`rows.len() × x.len()`).
    #[inline(always)]
    pub(super) fn acc_outer_rows<L: Lanes>(
        d: &[f32],
        x: &[f32],
        rows: Range<usize>,
        gw: &mut [f32],
    ) {
        let n = x.len();
        debug_assert_eq!(gw.len(), rows.len() * n);
        for (ri, o) in rows.clone().enumerate() {
            let dv = d[o];
            let vd = L::splat(dv);
            let grow = &mut gw[ri * n..(ri + 1) * n];
            let mut j = 0;
            while j + LANES <= n {
                L::st(grow, j, L::fma(vd, L::ld(x, j), L::ld(grow, j)));
                j += LANES;
            }
            while j < n {
                grow[j] = dv.mul_add(x[j], grow[j]);
                j += 1;
            }
        }
    }

    /// `xs[r] += bias` for each row `r ∈ rows`: 8-wide adds plus scalar
    /// tail. `xs` covers `rows` (`rows.len() × n`).
    #[inline(always)]
    pub(super) fn add_bias_chunk<L: Lanes>(
        bias: &[f32],
        n: usize,
        rows: Range<usize>,
        xs: &mut [f32],
    ) {
        debug_assert_eq!(bias.len(), n);
        debug_assert_eq!(xs.len(), rows.len() * n);
        for ri in 0..rows.len() {
            let row = &mut xs[ri * n..(ri + 1) * n];
            let mut j = 0;
            while j + LANES <= n {
                L::st(row, j, L::add(L::ld(row, j), L::ld(bias, j)));
                j += LANES;
            }
            while j < n {
                row[j] += bias[j];
                j += 1;
            }
        }
    }
}

// ---- persistent worker pool ------------------------------------------------

/// Persistent worker pool for intra-op parallelism, built on the same
/// park-on-a-condvar progress-thread idiom as `mics-dataplane`'s
/// nonblocking engine. Workers are spawned lazily, keyed by a fixed id,
/// and handed `(items, parts)` jobs by epoch; worker `w` always runs
/// chunk `w` of the deterministic `chunk()` partition, the dispatching
/// thread runs chunk 0, and the dispatch blocks until every chunk
/// reports done. Concurrent dispatches (e.g. several rank threads) do
/// not queue: whoever loses the `try_lock` simply runs its kernel
/// inline, which is both deadlock-free and faster than serializing.
mod pool {
    use std::ops::Range;
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// Below this much work (FLOPs) per chunk, fan-out costs more than it
    /// saves and the kernel runs inline.
    const MIN_FLOPS_PER_CHUNK: usize = 16 * 1024;

    /// One published job. The erased closure pointer is only dereferenced
    /// between publication and the `pending == 0` barrier, both of which
    /// happen inside the caller's borrow of the original closure.
    #[derive(Clone, Copy)]
    struct Job {
        body: *const (dyn Fn(Range<usize>) + Sync),
        items: usize,
        parts: usize,
    }

    // SAFETY: see `Job` — the pointee outlives every dereference because
    // `dispatch` does not return until all participating workers have
    // decremented `pending`.
    unsafe impl Send for Job {}

    struct State {
        epoch: u64,
        job: Option<Job>,
        pending: usize,
    }

    struct Shared {
        state: Mutex<State>,
        work: Condvar,
        done: Condvar,
    }

    struct Pool {
        shared: Arc<Shared>,
        workers: usize,
    }

    static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

    /// The deterministic partition: chunk `w` of `parts` over `items`,
    /// remainder spread over the leading chunks. Depends only on the
    /// arguments, so a given `(items, parts)` always maps the same output
    /// rows to the same worker.
    fn chunk(items: usize, parts: usize, w: usize) -> Range<usize> {
        let base = items / parts;
        let rem = items % parts;
        let start = w * base + w.min(rem);
        let len = base + usize::from(w < rem);
        start..start + len
    }

    /// Ensure `threads - 1` workers exist so the first hot kernel call
    /// doesn't pay thread spawn cost.
    pub(super) fn warm(threads: usize) {
        if threads <= 1 {
            return;
        }
        let pool = POOL.get_or_init(|| Mutex::new(Pool::new()));
        if let Ok(mut pool) = pool.lock() {
            pool.ensure_workers(threads - 1);
        }
    }

    /// Run `body` over `0..items`, split into at most
    /// [`super::kernel_threads`] chunks when the total work justifies it.
    /// Chunks are ranges of *output* elements, so any split is
    /// bit-identical to the single-threaded order.
    pub(super) fn run(items: usize, flops_per_item: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let mut parts = super::kernel_threads().min(items);
        if parts > 1 {
            let quanta = items.saturating_mul(flops_per_item.max(1)) / MIN_FLOPS_PER_CHUNK;
            parts = parts.min(quanta.max(1));
        }
        if parts <= 1 {
            body(0..items);
            return;
        }
        let pool = POOL.get_or_init(|| Mutex::new(Pool::new()));
        match pool.try_lock() {
            Ok(mut pool) => pool.dispatch(items, parts, body),
            // Another thread owns the pool: run inline rather than queue.
            Err(_) => body(0..items),
        }
    }

    impl Pool {
        fn new() -> Pool {
            Pool {
                shared: Arc::new(Shared {
                    state: Mutex::new(State { epoch: 0, job: None, pending: 0 }),
                    work: Condvar::new(),
                    done: Condvar::new(),
                }),
                workers: 0,
            }
        }

        fn ensure_workers(&mut self, want: usize) {
            while self.workers < want {
                let id = self.workers + 1; // worker ids 1.. (0 = the caller)
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("mics-kernel-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn kernel pool worker");
                self.workers += 1;
            }
        }

        fn dispatch(&mut self, items: usize, parts: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
            super::cells().pool_dispatches.incr();
            self.ensure_workers(parts - 1);
            // SAFETY: lifetime erasure only — the pointer is dereferenced
            // exclusively between the publication below and the
            // `pending == 0` barrier, and `dispatch` (which holds the
            // real `&body` borrow) does not return until that barrier.
            let erased: *const (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(body) };
            {
                let mut st = self.shared.state.lock().unwrap();
                st.job = Some(Job { body: erased, items, parts });
                st.pending = parts - 1;
                st.epoch += 1;
            }
            self.shared.work.notify_all();
            let rec = mics_trace::global();
            if rec.is_enabled() {
                rec.counter("kernels", "pool", "tile queue depth", parts as f64);
            }
            body(chunk(items, parts, 0));
            let mut st = self.shared.state.lock().unwrap();
            while st.pending > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            drop(st);
            if rec.is_enabled() {
                rec.counter("kernels", "pool", "tile queue depth", 0.0);
            }
        }
    }

    fn worker_loop(shared: Arc<Shared>, id: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if st.epoch != seen {
                        seen = st.epoch;
                        // Workers beyond `parts` sit this epoch out (and
                        // a worker spawned mid-life skips the epochs it
                        // was not counted into).
                        if let Some(job) = st.job {
                            if id < job.parts && st.pending > 0 {
                                break job;
                            }
                        }
                    }
                    st = shared.work.wait(st).unwrap();
                }
            };
            // SAFETY: the dispatcher blocks on `pending` until after this
            // worker's decrement below, so the closure is still live.
            let body = unsafe { &*job.body };
            body(chunk(job.items, job.parts, id));
            let left = {
                let mut st = shared.state.lock().unwrap();
                st.pending -= 1;
                if st.pending == 0 {
                    shared.done.notify_all();
                }
                st.pending
            };
            let rec = mics_trace::global();
            if rec.is_enabled() {
                rec.counter("kernels", "pool", "tile queue depth", (left + 1) as f64);
            }
        }
    }
}

// ---- public kernels --------------------------------------------------------

/// Raw output pointer smuggled into the pool closure. Each chunk writes a
/// disjoint row range, so aliasing is impossible.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);

// SAFETY: chunks index disjoint ranges of the allocation; the allocation
// outlives the dispatch (the caller owns it across the blocking `run`).
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

impl OutPtr {
    /// The chunk's disjoint window `[off, off + len)` of the output.
    ///
    /// # Safety
    /// The allocation must be live for the duration of the dispatch and
    /// no two concurrent chunks may request overlapping windows.
    unsafe fn window<'a>(self, off: usize, len: usize) -> &'a mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(off), len)
    }
}

/// `out[m×n] = a[m×k] · b[k×n]`, row-major: k-tiled, 4-way unrolled,
/// 8-wide FMA lanes, parallel over output rows.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    let simd = simd_active();
    let base = OutPtr(out.as_mut_ptr());
    record("matmul", 2 * (m * k * n) as u64, simd, || {
        pool::run(m, 2 * k * n, &move |rows: Range<usize>| {
            // SAFETY: disjoint row ranges of a live allocation.
            let o = unsafe { base.window(rows.start * n, rows.len() * n) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::matmul_rows(a, b, k, n, rows, o) };
                return;
            }
            body::matmul_rows::<ScalarLanes>(a, b, k, n, rows, o);
        });
    });
    out
}

/// `out[m×k] = d[m×n] · bᵀ[n×k]` (gradient w.r.t. the left operand):
/// four simultaneous 8-wide dot products per pass, parallel over rows.
pub fn matmul_bt(dout: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    debug_assert_eq!(dout.len(), m * n);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * k];
    let simd = simd_active();
    let base = OutPtr(out.as_mut_ptr());
    record("matmul_bt", 2 * (m * n * k) as u64, simd, || {
        pool::run(m, 2 * n * k, &move |rows: Range<usize>| {
            // SAFETY: disjoint row ranges of a live allocation.
            let o = unsafe { base.window(rows.start * k, rows.len() * k) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::matmul_bt_rows(dout, b, n, k, rows, o) };
                return;
            }
            body::matmul_bt_rows::<ScalarLanes>(dout, b, n, k, rows, o);
        });
    });
    out
}

/// Accumulate `aᵀ[k×m] · d[m×n]` into `gw[k×n]` (gradient w.r.t. the
/// right operand of `a·w`): four samples fuse per pass, parallel over the
/// `k` rows of `gw` — the batch reduction order inside each row is fixed.
pub fn acc_matmul_at(a: &[f32], dout: &[f32], m: usize, k: usize, n: usize, gw: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(dout.len(), m * n);
    debug_assert_eq!(gw.len(), k * n);
    let simd = simd_active();
    let base = OutPtr(gw.as_mut_ptr());
    record("acc_matmul_at", 2 * (m * k * n) as u64, simd, || {
        pool::run(k, 2 * m * n, &move |kks: Range<usize>| {
            // SAFETY: disjoint row ranges of a live allocation.
            let g = unsafe { base.window(kks.start * n, kks.len() * n) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::acc_matmul_at_rows(a, dout, m, k, n, kks, g) };
                return;
            }
            body::acc_matmul_at_rows::<ScalarLanes>(a, dout, m, k, n, kks, g);
        });
    });
}

/// `out[o] = bias[o] + Σᵢ w[o×in][o][i] · x[i]`: one 8-wide dot product
/// per output row, parallel over output rows.
pub fn matvec_bias(w: &[f32], bias: &[f32], x: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
    debug_assert_eq!(w.len(), out_dim * in_dim);
    debug_assert_eq!(bias.len(), out_dim);
    debug_assert_eq!(x.len(), in_dim);
    let mut out = vec![0.0f32; out_dim];
    let simd = simd_active();
    let base = OutPtr(out.as_mut_ptr());
    record("matvec_bias", 2 * (out_dim * in_dim) as u64, simd, || {
        pool::run(out_dim, 2 * in_dim, &move |os: Range<usize>| {
            // SAFETY: disjoint ranges of a live allocation.
            let o = unsafe { base.window(os.start, os.len()) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::matvec_bias_rows(w, bias, x, in_dim, os, o) };
                return;
            }
            body::matvec_bias_rows::<ScalarLanes>(w, bias, x, in_dim, os, o);
        });
    });
    out
}

/// `out[i] = Σₒ w[o][i] · d[o]` (`wᵀ·d`, the backward input gradient):
/// four weight rows fuse into one pass, parallel over output *columns*
/// (the reduction over `o` stays whole per element).
pub fn matvec_t(w: &[f32], d: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
    debug_assert_eq!(w.len(), out_dim * in_dim);
    debug_assert_eq!(d.len(), out_dim);
    let mut out = vec![0.0f32; in_dim];
    let simd = simd_active();
    let base = OutPtr(out.as_mut_ptr());
    record("matvec_t", 2 * (out_dim * in_dim) as u64, simd, || {
        pool::run(in_dim, 2 * out_dim, &move |cols: Range<usize>| {
            // SAFETY: disjoint ranges of a live allocation.
            let o = unsafe { base.window(cols.start, cols.len()) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::matvec_t_cols(w, d, out_dim, in_dim, cols, o) };
                return;
            }
            body::matvec_t_cols::<ScalarLanes>(w, d, out_dim, in_dim, cols, o);
        });
    });
    out
}

/// Accumulate the outer product `d ⊗ x` into `gw[out×in]`: one 8-wide
/// row saxpy per output, parallel over output rows.
pub fn acc_outer(d: &[f32], x: &[f32], gw: &mut [f32]) {
    debug_assert_eq!(gw.len(), d.len() * x.len());
    let n = x.len();
    let simd = simd_active();
    let base = OutPtr(gw.as_mut_ptr());
    record("acc_outer", 2 * (d.len() * n) as u64, simd, || {
        pool::run(d.len(), 2 * n, &move |rows: Range<usize>| {
            // SAFETY: disjoint row ranges of a live allocation.
            let g = unsafe { base.window(rows.start * n, rows.len() * n) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::acc_outer_rows(d, x, rows, g) };
                return;
            }
            body::acc_outer_rows::<ScalarLanes>(d, x, rows, g);
        });
    });
}

/// `xs[r·n..][..n] += bias` for every row `r < m`: the broadcast bias add
/// the transformer previously did with scalar double loops, parallel
/// over rows. Pure per-lane adds, so it is trivially bit-stable.
pub fn add_bias_rows(xs: &mut [f32], bias: &[f32], m: usize, n: usize) {
    debug_assert_eq!(xs.len(), m * n);
    debug_assert_eq!(bias.len(), n);
    let simd = simd_active();
    let base = OutPtr(xs.as_mut_ptr());
    record("add_bias_rows", (m * n) as u64, simd, || {
        pool::run(m, n, &move |rows: Range<usize>| {
            // SAFETY: disjoint row ranges of a live allocation.
            let x = unsafe { base.window(rows.start * n, rows.len() * n) };
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd_active` verified AVX2+FMA on this host.
                unsafe { avx::add_bias_chunk(bias, n, rows, x) };
                return;
            }
            body::add_bias_chunk::<ScalarLanes>(bias, n, rows, x);
        });
    });
}

/// The cache-blocked, register-unrolled v1 kernels (PR 5), kept verbatim
/// as the autovectorization baseline the v2 SIMD kernels are benchmarked
/// against (`results/BENCH_kernels.json`'s `blocked_ns` column).
pub mod blocked {
    use super::{KC, UNROLL};

    /// Blocked `out[m×n] = a[m×k] · b[k×n]`, k-tiled and 4-way unrolled.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        let mut out = vec![0.0f32; m * n];
        for kk in (0..k).step_by(KC) {
            let kend = (kk + KC).min(k);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                let mut kc = kk;
                while kc + UNROLL <= kend {
                    let (a0, a1, a2, a3) = (arow[kc], arow[kc + 1], arow[kc + 2], arow[kc + 3]);
                    let b0 = &b[kc * n..(kc + 1) * n];
                    let b1 = &b[(kc + 1) * n..(kc + 2) * n];
                    let b2 = &b[(kc + 2) * n..(kc + 3) * n];
                    let b3 = &b[(kc + 3) * n..(kc + 4) * n];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    kc += UNROLL;
                }
                while kc < kend {
                    let av = arow[kc];
                    let brow = &b[kc * n..(kc + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                    kc += 1;
                }
            }
        }
        out
    }

    /// Blocked `out[m×k] = d[m×n] · bᵀ[n×k]`: four simultaneous dot
    /// products share each load of the `d` row.
    pub fn matmul_bt(dout: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        debug_assert_eq!(dout.len(), m * n);
        debug_assert_eq!(b.len(), k * n);
        let mut out = vec![0.0f32; m * k];
        for i in 0..m {
            let drow = &dout[i * n..(i + 1) * n];
            let orow = &mut out[i * k..(i + 1) * k];
            let mut kk = 0;
            while kk + UNROLL <= k {
                let b0 = &b[kk * n..(kk + 1) * n];
                let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (j, &dv) in drow.iter().enumerate() {
                    s0 += dv * b0[j];
                    s1 += dv * b1[j];
                    s2 += dv * b2[j];
                    s3 += dv * b3[j];
                }
                orow[kk] = s0;
                orow[kk + 1] = s1;
                orow[kk + 2] = s2;
                orow[kk + 3] = s3;
                kk += UNROLL;
            }
            while kk < k {
                let brow = &b[kk * n..(kk + 1) * n];
                let mut s = 0.0f32;
                for (&dv, &bv) in drow.iter().zip(brow.iter()) {
                    s += dv * bv;
                }
                orow[kk] = s;
                kk += 1;
            }
        }
        out
    }

    /// Blocked accumulation of `aᵀ[k×m] · d[m×n]` into `gw[k×n]`: four
    /// samples fuse per pass over the gradient rows.
    pub fn acc_matmul_at(a: &[f32], dout: &[f32], m: usize, k: usize, n: usize, gw: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(dout.len(), m * n);
        debug_assert_eq!(gw.len(), k * n);
        let mut i = 0;
        while i + UNROLL <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            let d0 = &dout[i * n..(i + 1) * n];
            let d1 = &dout[(i + 1) * n..(i + 2) * n];
            let d2 = &dout[(i + 2) * n..(i + 3) * n];
            let d3 = &dout[(i + 3) * n..(i + 4) * n];
            for kk in 0..k {
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                let grow = &mut gw[kk * n..(kk + 1) * n];
                for (j, gv) in grow.iter_mut().enumerate() {
                    *gv += x0 * d0[j] + x1 * d1[j] + x2 * d2[j] + x3 * d3[j];
                }
            }
            i += UNROLL;
        }
        while i < m {
            let arow = &a[i * k..(i + 1) * k];
            let drow = &dout[i * n..(i + 1) * n];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let grow = &mut gw[kk * n..(kk + 1) * n];
                for (gv, &dv) in grow.iter_mut().zip(drow.iter()) {
                    *gv += av * dv;
                }
            }
            i += 1;
        }
    }

    /// Blocked biased matvec: four rows' dot products share each load of
    /// `x`.
    pub fn matvec_bias(
        w: &[f32],
        bias: &[f32],
        x: &[f32],
        out_dim: usize,
        in_dim: usize,
    ) -> Vec<f32> {
        debug_assert_eq!(w.len(), out_dim * in_dim);
        debug_assert_eq!(bias.len(), out_dim);
        debug_assert_eq!(x.len(), in_dim);
        let mut out = vec![0.0f32; out_dim];
        let mut o = 0;
        while o + UNROLL <= out_dim {
            let w0 = &w[o * in_dim..(o + 1) * in_dim];
            let w1 = &w[(o + 1) * in_dim..(o + 2) * in_dim];
            let w2 = &w[(o + 2) * in_dim..(o + 3) * in_dim];
            let w3 = &w[(o + 3) * in_dim..(o + 4) * in_dim];
            let (mut s0, mut s1, mut s2, mut s3) = (bias[o], bias[o + 1], bias[o + 2], bias[o + 3]);
            for (i, &xv) in x.iter().enumerate() {
                s0 += xv * w0[i];
                s1 += xv * w1[i];
                s2 += xv * w2[i];
                s3 += xv * w3[i];
            }
            out[o] = s0;
            out[o + 1] = s1;
            out[o + 2] = s2;
            out[o + 3] = s3;
            o += UNROLL;
        }
        while o < out_dim {
            let row = &w[o * in_dim..(o + 1) * in_dim];
            let mut s = bias[o];
            for (&wv, &xv) in row.iter().zip(x.iter()) {
                s += wv * xv;
            }
            out[o] = s;
            o += 1;
        }
        out
    }

    /// Blocked `wᵀ·d`: four weight rows fuse into one pass over the
    /// accumulator stream.
    pub fn matvec_t(w: &[f32], d: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
        debug_assert_eq!(w.len(), out_dim * in_dim);
        debug_assert_eq!(d.len(), out_dim);
        let mut out = vec![0.0f32; in_dim];
        let mut o = 0;
        while o + UNROLL <= out_dim {
            let (d0, d1, d2, d3) = (d[o], d[o + 1], d[o + 2], d[o + 3]);
            let w0 = &w[o * in_dim..(o + 1) * in_dim];
            let w1 = &w[(o + 1) * in_dim..(o + 2) * in_dim];
            let w2 = &w[(o + 2) * in_dim..(o + 3) * in_dim];
            let w3 = &w[(o + 3) * in_dim..(o + 4) * in_dim];
            for (i, ov) in out.iter_mut().enumerate() {
                *ov += d0 * w0[i] + d1 * w1[i] + d2 * w2[i] + d3 * w3[i];
            }
            o += UNROLL;
        }
        while o < out_dim {
            let dv = d[o];
            let row = &w[o * in_dim..(o + 1) * in_dim];
            for (ov, &wv) in out.iter_mut().zip(row.iter()) {
                *ov += dv * wv;
            }
            o += 1;
        }
        out
    }

    /// Blocked outer-product accumulation (already unit-stride).
    pub fn acc_outer(d: &[f32], x: &[f32], gw: &mut [f32]) {
        debug_assert_eq!(gw.len(), d.len() * x.len());
        for (grow, &dv) in gw.chunks_exact_mut(x.len()).zip(d.iter()) {
            for (gv, &xv) in grow.iter_mut().zip(x.iter()) {
                *gv += dv * xv;
            }
        }
    }
}

/// The scalar kernels both the blocked and SIMD versions are measured
/// against, kept as the numeric drift oracle: the drift tests bound
/// divergence from these exact sums, and the microbenches
/// (`crates/bench/benches/kernels.rs`) measure speedups against them.
pub mod reference {
    /// Naive `out[m×n] = a[m×k] · b[k×n]`, sequential saxpy over `k`.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Naive `out[m×k] = d[m×n] · bᵀ[n×k]`, one dot product per element.
    pub fn matmul_bt(dout: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        debug_assert_eq!(dout.len(), m * n);
        debug_assert_eq!(b.len(), k * n);
        let mut out = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                let mut s = 0.0;
                let brow = &b[kk * n..(kk + 1) * n];
                let drow = &dout[i * n..(i + 1) * n];
                for (dv, bv) in drow.iter().zip(brow.iter()) {
                    s += dv * bv;
                }
                out[i * k + kk] = s;
            }
        }
        out
    }

    /// Naive accumulation of `aᵀ[k×m] · d[m×n]` into `gw[k×n]`.
    pub fn acc_matmul_at(a: &[f32], dout: &[f32], m: usize, k: usize, n: usize, gw: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(dout.len(), m * n);
        debug_assert_eq!(gw.len(), k * n);
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let drow = &dout[i * n..(i + 1) * n];
                let grow = &mut gw[kk * n..(kk + 1) * n];
                for (gv, &dv) in grow.iter_mut().zip(drow.iter()) {
                    *gv += av * dv;
                }
            }
        }
    }

    /// Naive biased matvec, one sequential dot per output.
    pub fn matvec_bias(
        w: &[f32],
        bias: &[f32],
        x: &[f32],
        out_dim: usize,
        in_dim: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; out_dim];
        for (o, ov) in out.iter_mut().enumerate() {
            let row = &w[o * in_dim..(o + 1) * in_dim];
            let mut s = bias[o];
            for (&wv, &xv) in row.iter().zip(x.iter()) {
                s += wv * xv;
            }
            *ov = s;
        }
        out
    }

    /// Naive `wᵀ·d`, sequential saxpy over weight rows.
    pub fn matvec_t(w: &[f32], d: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; in_dim];
        for o in 0..out_dim {
            let row = &w[o * in_dim..(o + 1) * in_dim];
            for (ov, &wv) in out.iter_mut().zip(row.iter()) {
                *ov += d[o] * wv;
            }
        }
        out
    }

    /// Naive outer-product accumulation into `gw[out×in]`.
    pub fn acc_outer(d: &[f32], x: &[f32], gw: &mut [f32]) {
        debug_assert_eq!(gw.len(), d.len() * x.len());
        for (o, &dv) in d.iter().enumerate() {
            for (i, &xv) in x.iter().enumerate() {
                gw[o * x.len() + i] += dv * xv;
            }
        }
    }

    /// Naive broadcast bias add over rows.
    pub fn add_bias_rows(xs: &mut [f32], bias: &[f32], m: usize, n: usize) {
        debug_assert_eq!(xs.len(), m * n);
        debug_assert_eq!(bias.len(), n);
        for r in 0..m {
            for j in 0..n {
                xs[r * n + j] += bias[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random buffer in roughly [-1, 1].
    fn buf(len: usize, salt: u64) -> Vec<f32> {
        let mut s = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "{what}[{i}]: kernel {x} vs reference {y}"
            );
        }
    }

    /// Shapes chosen to hit both the unrolled body and every remainder
    /// path, plus one reduction long enough to cross the KC tile boundary.
    const SHAPES: &[(usize, usize, usize)] =
        &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (6, 300, 5), (5, 7, 9), (8, 257, 16)];

    #[test]
    fn drift_matmul_is_bounded_reassociation() {
        for &(m, k, n) in SHAPES {
            let a = buf(m * k, 1);
            let b = buf(k * n, 2);
            assert_close(
                &matmul(&a, &b, m, k, n),
                &reference::matmul(&a, &b, m, k, n),
                1e-5,
                "matmul",
            );
            assert_close(
                &blocked::matmul(&a, &b, m, k, n),
                &reference::matmul(&a, &b, m, k, n),
                1e-5,
                "blocked::matmul",
            );
        }
    }

    #[test]
    fn drift_matmul_bt_is_bounded_reassociation() {
        for &(m, n, k) in SHAPES {
            let d = buf(m * n, 3);
            let b = buf(k * n, 4);
            assert_close(
                &matmul_bt(&d, &b, m, n, k),
                &reference::matmul_bt(&d, &b, m, n, k),
                1e-5,
                "matmul_bt",
            );
            assert_close(
                &blocked::matmul_bt(&d, &b, m, n, k),
                &reference::matmul_bt(&d, &b, m, n, k),
                1e-5,
                "blocked::matmul_bt",
            );
        }
    }

    #[test]
    fn drift_acc_matmul_at_is_bounded_reassociation() {
        for &(m, k, n) in SHAPES {
            let a = buf(m * k, 5);
            let d = buf(m * n, 6);
            let mut g1 = buf(k * n, 7);
            let mut g2 = g1.clone();
            acc_matmul_at(&a, &d, m, k, n, &mut g1);
            reference::acc_matmul_at(&a, &d, m, k, n, &mut g2);
            assert_close(&g1, &g2, 1e-5, "acc_matmul_at");
        }
    }

    #[test]
    fn drift_matvec_kernels_are_bounded_reassociation() {
        for &(out_dim, in_dim, _) in SHAPES {
            let w = buf(out_dim * in_dim, 8);
            let bias = buf(out_dim, 9);
            let x = buf(in_dim, 10);
            let d = buf(out_dim, 11);
            assert_close(
                &matvec_bias(&w, &bias, &x, out_dim, in_dim),
                &reference::matvec_bias(&w, &bias, &x, out_dim, in_dim),
                1e-5,
                "matvec_bias",
            );
            assert_close(
                &matvec_t(&w, &d, out_dim, in_dim),
                &reference::matvec_t(&w, &d, out_dim, in_dim),
                1e-5,
                "matvec_t",
            );
        }
    }

    #[test]
    fn zero_inputs_stay_exactly_zero() {
        // 0·x fused into a zero accumulator is still exactly ±0 for
        // finite x, and IEEE (+0) + (−0) = +0, so zero inputs yield
        // exact zeros on both the SIMD and fallback paths.
        let (m, k, n) = (6, 9, 5);
        let a = vec![0.0f32; m * k];
        let b = buf(k * n, 12);
        assert!(matmul(&a, &b, m, k, n).iter().all(|&v| v == 0.0));
        let mut gw = vec![0.0f32; k * n];
        acc_matmul_at(&a, &buf(m * n, 13), m, k, n, &mut gw);
        assert!(gw.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn acc_outer_matches_manual_expansion() {
        // v2 accumulates with fused mul_add, so the expected value uses
        // the same single-rounding operation.
        let d = buf(5, 14);
        let x = buf(7, 15);
        let mut gw = buf(35, 16);
        let before = gw.clone();
        acc_outer(&d, &x, &mut gw);
        for o in 0..5 {
            for i in 0..7 {
                assert_eq!(gw[o * 7 + i], d[o].mul_add(x[i], before[o * 7 + i]));
            }
        }
    }

    #[test]
    fn add_bias_rows_matches_reference() {
        let (m, n) = (5, 11);
        let bias = buf(n, 17);
        let mut a = buf(m * n, 18);
        let mut b = a.clone();
        add_bias_rows(&mut a, &bias, m, n);
        reference::add_bias_rows(&mut b, &bias, m, n);
        assert_eq!(a, b, "bias add is pure per-lane addition: exactly equal");
    }
}
