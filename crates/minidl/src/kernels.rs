//! Cache-blocked, register-unrolled f32 kernels for the real backend's
//! forward/backward passes, plus the naive [`mod@reference`] implementations
//! they are drift-bounded against.
//!
//! The design translates the standard GPU matmul hierarchy to CPU
//! autovectorization:
//!
//! * the innermost loop is always unit-stride over contiguous rows, so the
//!   compiler can vectorize it without gathers;
//! * the reduction (or batch) dimension is consumed `UNROLL` rows at a
//!   time whose partial products fuse into one accumulator stream — each
//!   load of the shared operand is reused `UNROLL` times and the four
//!   products form independent FMA chains;
//! * the reduction dimension of [`matmul`] is additionally tiled by `KC` (256)
//!   so the active panel of the right operand stays cache-resident across
//!   output rows.
//!
//! Every kernel computes exactly the reference sums in a different
//! association order: results drift only by float re-association (bounded
//! by the `drift_*` tests below), never by dropped or duplicated terms.

/// Register-block height: rows of the reduction dimension fused per pass.
const UNROLL: usize = 4;
/// Cache tile for the reduction dimension of [`matmul`].
const KC: usize = 256;

/// `out[m×n] = a[m×k] · b[k×n]`, row-major, k-tiled and 4-way unrolled.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for kk in (0..k).step_by(KC) {
        let kend = (kk + KC).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut kc = kk;
            while kc + UNROLL <= kend {
                let (a0, a1, a2, a3) = (arow[kc], arow[kc + 1], arow[kc + 2], arow[kc + 3]);
                let b0 = &b[kc * n..(kc + 1) * n];
                let b1 = &b[(kc + 1) * n..(kc + 2) * n];
                let b2 = &b[(kc + 2) * n..(kc + 3) * n];
                let b3 = &b[(kc + 3) * n..(kc + 4) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                }
                kc += UNROLL;
            }
            while kc < kend {
                let av = arow[kc];
                let brow = &b[kc * n..(kc + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
                kc += 1;
            }
        }
    }
    out
}

/// `out[m×k] = d[m×n] · bᵀ[n×k]` (gradient w.r.t. the left operand):
/// four simultaneous dot products share each load of the `d` row.
pub fn matmul_bt(dout: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    debug_assert_eq!(dout.len(), m * n);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * k];
    for i in 0..m {
        let drow = &dout[i * n..(i + 1) * n];
        let orow = &mut out[i * k..(i + 1) * k];
        let mut kk = 0;
        while kk + UNROLL <= k {
            let b0 = &b[kk * n..(kk + 1) * n];
            let b1 = &b[(kk + 1) * n..(kk + 2) * n];
            let b2 = &b[(kk + 2) * n..(kk + 3) * n];
            let b3 = &b[(kk + 3) * n..(kk + 4) * n];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (j, &dv) in drow.iter().enumerate() {
                s0 += dv * b0[j];
                s1 += dv * b1[j];
                s2 += dv * b2[j];
                s3 += dv * b3[j];
            }
            orow[kk] = s0;
            orow[kk + 1] = s1;
            orow[kk + 2] = s2;
            orow[kk + 3] = s3;
            kk += UNROLL;
        }
        while kk < k {
            let brow = &b[kk * n..(kk + 1) * n];
            let mut s = 0.0f32;
            for (&dv, &bv) in drow.iter().zip(brow.iter()) {
                s += dv * bv;
            }
            orow[kk] = s;
            kk += 1;
        }
    }
    out
}

/// Accumulate `aᵀ[k×m] · d[m×n]` into `gw[k×n]` (gradient w.r.t. the right
/// operand of `a·w`): four samples fuse per pass over the gradient rows.
pub fn acc_matmul_at(a: &[f32], dout: &[f32], m: usize, k: usize, n: usize, gw: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(dout.len(), m * n);
    debug_assert_eq!(gw.len(), k * n);
    let mut i = 0;
    while i + UNROLL <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let d0 = &dout[i * n..(i + 1) * n];
        let d1 = &dout[(i + 1) * n..(i + 2) * n];
        let d2 = &dout[(i + 2) * n..(i + 3) * n];
        let d3 = &dout[(i + 3) * n..(i + 4) * n];
        for kk in 0..k {
            let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            let grow = &mut gw[kk * n..(kk + 1) * n];
            for (j, gv) in grow.iter_mut().enumerate() {
                *gv += x0 * d0[j] + x1 * d1[j] + x2 * d2[j] + x3 * d3[j];
            }
        }
        i += UNROLL;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let drow = &dout[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let grow = &mut gw[kk * n..(kk + 1) * n];
            for (gv, &dv) in grow.iter_mut().zip(drow.iter()) {
                *gv += av * dv;
            }
        }
        i += 1;
    }
}

/// `out[o] = bias[o] + Σᵢ w[o×in][o][i] · x[i]`: four rows' dot products
/// share each load of `x`.
pub fn matvec_bias(w: &[f32], bias: &[f32], x: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
    debug_assert_eq!(w.len(), out_dim * in_dim);
    debug_assert_eq!(bias.len(), out_dim);
    debug_assert_eq!(x.len(), in_dim);
    let mut out = vec![0.0f32; out_dim];
    let mut o = 0;
    while o + UNROLL <= out_dim {
        let w0 = &w[o * in_dim..(o + 1) * in_dim];
        let w1 = &w[(o + 1) * in_dim..(o + 2) * in_dim];
        let w2 = &w[(o + 2) * in_dim..(o + 3) * in_dim];
        let w3 = &w[(o + 3) * in_dim..(o + 4) * in_dim];
        let (mut s0, mut s1, mut s2, mut s3) = (bias[o], bias[o + 1], bias[o + 2], bias[o + 3]);
        for (i, &xv) in x.iter().enumerate() {
            s0 += xv * w0[i];
            s1 += xv * w1[i];
            s2 += xv * w2[i];
            s3 += xv * w3[i];
        }
        out[o] = s0;
        out[o + 1] = s1;
        out[o + 2] = s2;
        out[o + 3] = s3;
        o += UNROLL;
    }
    while o < out_dim {
        let row = &w[o * in_dim..(o + 1) * in_dim];
        let mut s = bias[o];
        for (&wv, &xv) in row.iter().zip(x.iter()) {
            s += wv * xv;
        }
        out[o] = s;
        o += 1;
    }
    out
}

/// `out[i] = Σₒ w[o][i] · d[o]` (`wᵀ·d`, the backward input gradient):
/// four weight rows fuse into one pass over the accumulator stream.
pub fn matvec_t(w: &[f32], d: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
    debug_assert_eq!(w.len(), out_dim * in_dim);
    debug_assert_eq!(d.len(), out_dim);
    let mut out = vec![0.0f32; in_dim];
    let mut o = 0;
    while o + UNROLL <= out_dim {
        let (d0, d1, d2, d3) = (d[o], d[o + 1], d[o + 2], d[o + 3]);
        let w0 = &w[o * in_dim..(o + 1) * in_dim];
        let w1 = &w[(o + 1) * in_dim..(o + 2) * in_dim];
        let w2 = &w[(o + 2) * in_dim..(o + 3) * in_dim];
        let w3 = &w[(o + 3) * in_dim..(o + 4) * in_dim];
        for (i, ov) in out.iter_mut().enumerate() {
            *ov += d0 * w0[i] + d1 * w1[i] + d2 * w2[i] + d3 * w3[i];
        }
        o += UNROLL;
    }
    while o < out_dim {
        let dv = d[o];
        let row = &w[o * in_dim..(o + 1) * in_dim];
        for (ov, &wv) in out.iter_mut().zip(row.iter()) {
            *ov += dv * wv;
        }
        o += 1;
    }
    out
}

/// Accumulate the outer product `d ⊗ x` into `gw[out×in]`, one contiguous
/// row saxpy per output (already unit-stride; no reassociation at all).
pub fn acc_outer(d: &[f32], x: &[f32], gw: &mut [f32]) {
    debug_assert_eq!(gw.len(), d.len() * x.len());
    for (grow, &dv) in gw.chunks_exact_mut(x.len()).zip(d.iter()) {
        for (gv, &xv) in grow.iter_mut().zip(x.iter()) {
            *gv += dv * xv;
        }
    }
}

/// The scalar kernels the blocked versions replaced, kept as the numeric
/// baseline: the drift tests bound blocked−reference divergence, and the
/// criterion microbenches (`crates/bench/benches/kernels.rs`) measure the
/// speedup against them.
pub mod reference {
    /// Naive `out[m×n] = a[m×k] · b[k×n]`, sequential saxpy over `k`.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Naive `out[m×k] = d[m×n] · bᵀ[n×k]`, one dot product per element.
    pub fn matmul_bt(dout: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        debug_assert_eq!(dout.len(), m * n);
        debug_assert_eq!(b.len(), k * n);
        let mut out = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                let mut s = 0.0;
                let brow = &b[kk * n..(kk + 1) * n];
                let drow = &dout[i * n..(i + 1) * n];
                for (dv, bv) in drow.iter().zip(brow.iter()) {
                    s += dv * bv;
                }
                out[i * k + kk] = s;
            }
        }
        out
    }

    /// Naive accumulation of `aᵀ[k×m] · d[m×n]` into `gw[k×n]`.
    pub fn acc_matmul_at(a: &[f32], dout: &[f32], m: usize, k: usize, n: usize, gw: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(dout.len(), m * n);
        debug_assert_eq!(gw.len(), k * n);
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let drow = &dout[i * n..(i + 1) * n];
                let grow = &mut gw[kk * n..(kk + 1) * n];
                for (gv, &dv) in grow.iter_mut().zip(drow.iter()) {
                    *gv += av * dv;
                }
            }
        }
    }

    /// Naive biased matvec, one sequential dot per output.
    pub fn matvec_bias(
        w: &[f32],
        bias: &[f32],
        x: &[f32],
        out_dim: usize,
        in_dim: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; out_dim];
        for (o, ov) in out.iter_mut().enumerate() {
            let row = &w[o * in_dim..(o + 1) * in_dim];
            let mut s = bias[o];
            for (&wv, &xv) in row.iter().zip(x.iter()) {
                s += wv * xv;
            }
            *ov = s;
        }
        out
    }

    /// Naive `wᵀ·d`, sequential saxpy over weight rows.
    pub fn matvec_t(w: &[f32], d: &[f32], out_dim: usize, in_dim: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; in_dim];
        for o in 0..out_dim {
            let row = &w[o * in_dim..(o + 1) * in_dim];
            for (ov, &wv) in out.iter_mut().zip(row.iter()) {
                *ov += d[o] * wv;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random buffer in roughly [-1, 1].
    fn buf(len: usize, salt: u64) -> Vec<f32> {
        let mut s = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 40) as f32 / (1u64 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "{what}[{i}]: blocked {x} vs reference {y}"
            );
        }
    }

    /// Shapes chosen to hit both the unrolled body and every remainder
    /// path, plus one reduction long enough to cross the KC tile boundary.
    const SHAPES: &[(usize, usize, usize)] =
        &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (6, 300, 5), (5, 7, 9), (8, 257, 16)];

    #[test]
    fn drift_matmul_is_bounded_reassociation() {
        for &(m, k, n) in SHAPES {
            let a = buf(m * k, 1);
            let b = buf(k * n, 2);
            assert_close(
                &matmul(&a, &b, m, k, n),
                &reference::matmul(&a, &b, m, k, n),
                1e-5,
                "matmul",
            );
        }
    }

    #[test]
    fn drift_matmul_bt_is_bounded_reassociation() {
        for &(m, n, k) in SHAPES {
            let d = buf(m * n, 3);
            let b = buf(k * n, 4);
            assert_close(
                &matmul_bt(&d, &b, m, n, k),
                &reference::matmul_bt(&d, &b, m, n, k),
                1e-5,
                "matmul_bt",
            );
        }
    }

    #[test]
    fn drift_acc_matmul_at_is_bounded_reassociation() {
        for &(m, k, n) in SHAPES {
            let a = buf(m * k, 5);
            let d = buf(m * n, 6);
            let mut g1 = buf(k * n, 7);
            let mut g2 = g1.clone();
            acc_matmul_at(&a, &d, m, k, n, &mut g1);
            reference::acc_matmul_at(&a, &d, m, k, n, &mut g2);
            assert_close(&g1, &g2, 1e-5, "acc_matmul_at");
        }
    }

    #[test]
    fn drift_matvec_kernels_are_bounded_reassociation() {
        for &(out_dim, in_dim, _) in SHAPES {
            let w = buf(out_dim * in_dim, 8);
            let bias = buf(out_dim, 9);
            let x = buf(in_dim, 10);
            let d = buf(out_dim, 11);
            assert_close(
                &matvec_bias(&w, &bias, &x, out_dim, in_dim),
                &reference::matvec_bias(&w, &bias, &x, out_dim, in_dim),
                1e-5,
                "matvec_bias",
            );
            assert_close(
                &matvec_t(&w, &d, out_dim, in_dim),
                &reference::matvec_t(&w, &d, out_dim, in_dim),
                1e-5,
                "matvec_t",
            );
        }
    }

    #[test]
    fn zero_inputs_stay_exactly_zero() {
        // The blocked kernels drop the reference's `av == 0.0` skip inside
        // the unrolled body; adding 0·x must still leave exact zeros.
        let (m, k, n) = (6, 9, 5);
        let a = vec![0.0f32; m * k];
        let b = buf(k * n, 12);
        assert!(matmul(&a, &b, m, k, n).iter().all(|&v| v == 0.0));
        let mut gw = vec![0.0f32; k * n];
        acc_matmul_at(&a, &buf(m * n, 13), m, k, n, &mut gw);
        assert!(gw.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn acc_outer_matches_manual_expansion() {
        let d = buf(5, 14);
        let x = buf(7, 15);
        let mut gw = buf(35, 16);
        let before = gw.clone();
        acc_outer(&d, &x, &mut gw);
        for o in 0..5 {
            for i in 0..7 {
                assert_eq!(gw[o * 7 + i], before[o * 7 + i] + d[o] * x[i]);
            }
        }
    }
}
