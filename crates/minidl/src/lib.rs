//! A minimal, fully deterministic deep-learning stack used to validate the
//! *fidelity* of MiCS's synchronization schedules (paper §5.4, Figure 15).
//!
//! The paper's fidelity experiment trains the same model under DeepSpeed and
//! MiCS and shows matching loss curves. What that experiment actually
//! stresses is the **gradient synchronization algebra**: per-micro-step
//! reduce-scatter inside the partition group plus boundary all-reduce across
//! replication groups (2-hop) must accumulate the same gradient sums as a
//! global all-reduce. That algebra needs a real optimizer, real gradients,
//! and real sharded state — not a GPU. This crate provides:
//!
//! * [`Mlp`] — a configurable multi-layer perceptron with hand-written
//!   forward/backward (no autograd dependency);
//! * [`Adam`] — the optimizer used throughout the paper's experiments,
//!   operating on an arbitrary shard of the parameter space;
//! * mixed-precision emulation (fp32 master weights, f16-quantized forward
//!   copies) via `mics_tensor`'s converters;
//! * [`train::train`] — data-parallel training loops over the real
//!   `mics-dataplane` communicator under three schedules:
//!   [`train::SyncSchedule::Ddp`] (classic data parallelism),
//!   [`train::SyncSchedule::PerMicroStepAllReduce`] (DeepSpeed ZeRO-3's
//!   default, the "alternative schedule" of §3.4), and
//!   [`train::SyncSchedule::TwoHop`] (MiCS).

#![warn(missing_docs)]

pub mod adam;
pub mod checkpoint;
pub mod data;
pub mod executor;
pub mod kernels;
pub mod lm;
pub mod nn;
pub mod scaler;
pub mod train;
pub mod transformer;

pub use adam::Adam;
pub use checkpoint::{load as load_checkpoint, save as save_checkpoint, TrainState};
pub use executor::{overlappable_wire_ops, CounterSample, ExecLane, LaneSpan, LaneStats};
pub use kernels::{
    flops_total, kernel_stats, kernel_threads, set_kernel_threads, set_simd, simd_active,
    simd_available,
};
pub use lm::{train_lm, train_lm_on, LmSetup};
pub use mics_compress::{CompressionConfig, CompressionScope, QuantScheme};
pub use nn::Mlp;
pub use scaler::{LossScale, ScalerSnapshot};
pub use train::{
    resume_from, step_program, step_program_with_flops, train, train_elastic, train_elastic_on,
    train_generic_on, train_pipeline, train_pipeline_on, train_resumable, CheckpointSink,
    ElasticPhase, ScheduleHyper, SyncSchedule, TrainCheckpoint, TrainOutcome, TrainSetup,
};
pub use transformer::TinyTransformer;
