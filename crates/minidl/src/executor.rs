//! Lane accounting and dependency analysis for the asynchronous training
//! executor.
//!
//! Since the async-engine refactor, [`mod@crate::train`]'s engine is no longer a
//! purely inline interpreter: with `prefetch_depth ≥ 1` it walks the
//! [`StepProgram`] issuing reduce-lane collectives onto the per-communicator
//! progress threads (`mics_dataplane::nonblocking`) and retiring them at the
//! points the program's dependency edges demand — the WAR edge from a
//! micro-step's reduce batch to the *next* micro-step's backward compute,
//! the [`OpKind::MicroBarrier`] drains of the ZeRO-3 schedule, and the
//! implicit read of the accumulated gradient by the boundary collectives
//! and the optimizer. Between issue and retire, forward compute runs — the
//! real-backend realization of the overlap MiCS §4 describes and the
//! simulator backend already charges.
//!
//! This module holds the pieces of that executor that are observable from
//! outside the engine:
//!
//! * [`LaneSpan`] / [`LaneStats`] — wall-clock spans measured per execution
//!   lane, aggregated into per-lane busy time and a measured overlap
//!   fraction, and carried on [`crate::train::TrainOutcome`];
//! * [`overlappable_wire_ops`] — a *static* analysis of a [`StepProgram`]
//!   answering "which wire ops admit compute between their issue point and
//!   their first dependent?". The executor independently records which ops
//!   it actually retired later than it issued them
//!   ([`LaneStats::deferred_wire_ops`]); the cross-check tests assert the
//!   two derivations agree, op id for op id, which is what ties the
//!   executor's measured concurrency to the concurrency `execute_on_sim`
//!   charges for the same program.

use mics_core::schedule::{GradSource, OpKind, StepProgram};
use mics_trace::{Arg, Trace};
use std::collections::BTreeSet;
use std::time::Instant;

/// Execution lanes of the real backend, mirroring the schedule IR's lane
/// split: one compute stream plus separate gather/reduce communication
/// lanes, and a control lane for the collectives that are not part of the
/// costed program (overflow agreement, loss reporting, clip-norm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecLane {
    /// Forward/backward kernels and the optimizer step.
    Compute,
    /// Parameter all-gathers.
    Gather,
    /// Gradient reduce-scatters and all-reduces.
    Reduce,
    /// Control-plane collectives (not in the costed program).
    Control,
}

/// One measured wall-clock span on a lane, in nanoseconds relative to the
/// start of the rank's run. Spans of async collectives cover the progress
/// thread's execution (rendezvous wait included) — the same occupancy the
/// simulator's lane streams model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSpan {
    /// Which lane was busy.
    pub lane: ExecLane,
    /// What it was doing (stable, lowercase; used as the trace event name).
    pub label: &'static str,
    /// Training iteration the span belongs to.
    pub iteration: usize,
    /// Span start, ns since the rank's run began.
    pub start_ns: u64,
    /// Span end, ns since the rank's run began.
    pub end_ns: u64,
}

/// One measured counter sample: the engine records cumulative
/// deferred-reduce and prefetched-gather counts as they happen, so the
/// exported trace shows *when* overlap was banked, not just the totals.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Counter series name (stable, used as the trace counter name).
    pub name: &'static str,
    /// Sample time, ns since the rank's run began.
    pub ts_ns: u64,
    /// Sampled value (cumulative counts here).
    pub value: f64,
}

/// Measured per-lane occupancy of a training run on one rank.
///
/// Timing is run-specific, so `TrainOutcome`'s `PartialEq` deliberately
/// ignores this struct — two bit-identical trainings will not report
/// bit-identical nanoseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneStats {
    /// Every measured span, in retirement order.
    pub spans: Vec<LaneSpan>,
    /// Counter samples recorded by the engine, in time order.
    pub counters: Vec<CounterSample>,
    /// Wall-clock duration of the whole run on this rank, ns.
    pub wall_ns: u64,
    /// Wire ops (program op ids, first logged iteration) that the executor
    /// retired strictly later than it issued them — i.e. at least one
    /// compute op ran while the collective was in flight. Empty under
    /// `prefetch_depth = 0`.
    pub deferred_wire_ops: Vec<usize>,
    /// Cross-iteration parameter gathers issued ahead of time into the
    /// double-buffer pool (one per iteration after the first, when enabled).
    pub prefetched_gathers: u32,
}

impl LaneStats {
    /// Total busy time of one lane, ns.
    pub fn busy_ns(&self, lane: ExecLane) -> u64 {
        self.spans.iter().filter(|s| s.lane == lane).map(|s| s.end_ns - s.start_ns).sum()
    }

    /// Busy time of the costed communication lanes (gather + reduce), ns.
    pub fn comm_busy_ns(&self) -> u64 {
        self.busy_ns(ExecLane::Gather) + self.busy_ns(ExecLane::Reduce)
    }

    /// Communication time that was hidden under compute: the total
    /// intersection of gather/reduce spans with the union of compute spans.
    pub fn overlap_ns(&self) -> u64 {
        let mut compute: Vec<(u64, u64)> = self
            .spans
            .iter()
            .filter(|s| s.lane == ExecLane::Compute)
            .map(|s| (s.start_ns, s.end_ns))
            .collect();
        compute.sort_unstable();
        // Merge into disjoint intervals.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(compute.len());
        for (s, e) in compute {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let mut overlap = 0u64;
        for span in &self.spans {
            if !matches!(span.lane, ExecLane::Gather | ExecLane::Reduce) {
                continue;
            }
            for &(s, e) in &merged {
                if e <= span.start_ns {
                    continue;
                }
                if s >= span.end_ns {
                    break;
                }
                overlap += e.min(span.end_ns) - s.max(span.start_ns);
            }
        }
        overlap
    }

    /// Fraction of communication time hidden under compute, in `[0, 1]`.
    /// `0` when no costed communication was measured.
    pub fn overlap_fraction(&self) -> f64 {
        let comm = self.comm_busy_ns();
        if comm == 0 {
            0.0
        } else {
            self.overlap_ns() as f64 / comm as f64
        }
    }

    /// Append this rank's measured timeline to `trace` under process
    /// `process`: one track per lane carrying the spans (tagged with their
    /// iteration), a derived *lane occupancy* counter per busy lane, and
    /// the engine's cumulative deferred/prefetched counter samples.
    /// Recording into a caller-owned [`Trace`] is what lets the CLI splice
    /// the backend's measured timeline into the same document as the
    /// simulator's charged one, rendered by the single shared writer.
    pub fn trace_into(&self, trace: &mut Trace, process: &str) {
        // Lane occupancy counters first, in canonical lane order — this
        // also pins the lane tracks' first-appearance (= tid) order.
        for (lane, name) in LANE_NAMES {
            let mut edges: Vec<(u64, i64)> = Vec::new();
            for s in self.spans.iter().filter(|s| s.lane == lane) {
                edges.push((s.start_ns, 1));
                edges.push((s.end_ns, -1));
            }
            if edges.is_empty() {
                continue;
            }
            // -1 before +1 at equal timestamps, so back-to-back spans do
            // not read as depth 2.
            edges.sort_unstable_by_key(|&(ts, delta)| (ts, delta));
            let series = format!("lane occupancy ({name})");
            let mut depth = 0i64;
            for (ts, delta) in edges {
                depth += delta;
                trace.counter(process, name, &series, ts, depth as f64);
            }
        }
        for s in &self.spans {
            let (_, track) = LANE_NAMES.iter().find(|(l, _)| *l == s.lane).unwrap();
            trace.span(
                process,
                track,
                s.label,
                "minidl",
                s.start_ns,
                s.end_ns.saturating_sub(s.start_ns),
                vec![("iteration", Arg::from(s.iteration))],
            );
        }
        for c in &self.counters {
            trace.counter(process, c.name, c.name, c.ts_ns, c.value);
        }
    }

    /// This rank's measured timeline as a standalone [`Trace`] (render
    /// with [`Trace::to_json`] for `chrome://tracing` / ui.perfetto.dev).
    pub fn trace(&self, process: &str) -> Trace {
        let mut t = Trace::new();
        self.trace_into(&mut t, process);
        t
    }
}

/// Canonical lane order and display names (also the tid order of the
/// exported tracks).
const LANE_NAMES: [(ExecLane, &str); 4] = [
    (ExecLane::Compute, "compute"),
    (ExecLane::Gather, "gather"),
    (ExecLane::Reduce, "reduce"),
    (ExecLane::Control, "control"),
];

/// Wall-clock span recorder for one rank: a shared epoch plus an append log.
/// The epoch `Instant` is `Copy`, so async collectives capture it into their
/// progress-thread closures and report spans on the same clock.
#[derive(Debug)]
pub(crate) struct SpanRecorder {
    epoch: Instant,
    spans: Vec<LaneSpan>,
    samples: Vec<CounterSample>,
}

impl SpanRecorder {
    pub(crate) fn new() -> Self {
        SpanRecorder { epoch: Instant::now(), spans: Vec::new(), samples: Vec::new() }
    }

    /// The shared clock epoch, for measuring inside async closures.
    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds since the epoch.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub(crate) fn push(
        &mut self,
        lane: ExecLane,
        label: &'static str,
        iteration: usize,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.spans.push(LaneSpan { lane, label, iteration, start_ns, end_ns });
    }

    /// Record a cumulative counter sample stamped now.
    pub(crate) fn sample(&mut self, name: &'static str, value: f64) {
        let ts_ns = self.now_ns();
        self.samples.push(CounterSample { name, ts_ns, value });
    }

    pub(crate) fn finish(
        self,
        deferred_wire_ops: Vec<usize>,
        prefetched_gathers: u32,
    ) -> LaneStats {
        let wall_ns = self.epoch.elapsed().as_nanos() as u64;
        LaneStats {
            spans: self.spans,
            counters: self.samples,
            wall_ns,
            deferred_wire_ops,
            prefetched_gathers,
        }
    }
}

/// Static overlap analysis of a [`StepProgram`]: the wire ops that admit at
/// least one compute op between their position and their first blocker in
/// program order.
///
/// A later op *blocks* wire op `i` when any of these hold:
///
/// * it lists `i` in its `deps` (this is how the emitter encodes the WAR
///   hazard from a reduce batch to the next micro-step's backward compute);
/// * it is a [`OpKind::MicroBarrier`] — the executor drains all in-flight
///   work there, exactly as `execute_on_sim` makes every stream wait;
/// * `i` folds into the accumulated gradient (a micro-step reduce) and the
///   later op *reads* the accumulation — a boundary collective or the
///   optimizer update. This hazard is implicit in the IR (the emitters
///   leave e.g. `CrossGroupAllReduce.deps` empty because the sim serializes
///   it through the reduce lane), so the analysis must model it explicitly.
///
/// The executor issues micro-step reduces asynchronously and drains at
/// precisely these blockers, so the set returned here must equal the set of
/// ops it observes retiring after intervening compute
/// ([`LaneStats::deferred_wire_ops`], filtered to the ops whose group
/// contains the observing rank). The cross-check test in `tests/overlap.rs`
/// holds the two implementations to that.
pub fn overlappable_wire_ops(prog: &StepProgram) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    for (i, op) in prog.ops.iter().enumerate() {
        let is_wire = matches!(
            op.kind,
            OpKind::GatherShards { .. }
                | OpKind::ReduceScatterGrads { .. }
                | OpKind::AllReduceGrads { .. }
                | OpKind::CrossGroupAllReduce { .. }
                | OpKind::ParamRefresh { .. }
        );
        if !is_wire {
            continue;
        }
        let folds_into_accum = matches!(
            op.kind,
            OpKind::ReduceScatterGrads { source: GradSource::MicroGrad, .. }
                | OpKind::AllReduceGrads { source: GradSource::MicroGrad, .. }
        );
        // Count compute ops strictly between `i` and its first blocker;
        // end-of-program is as much a drain point as an explicit blocker.
        let mut computes_between = 0usize;
        for later in prog.ops.iter().skip(i + 1) {
            let reads_accum = matches!(
                later.kind,
                OpKind::CrossGroupAllReduce { .. }
                    | OpKind::AllReduceGrads { source: GradSource::Accum, .. }
                    | OpKind::OptimizerUpdate { .. }
            );
            if later.deps.contains(&i)
                || matches!(later.kind, OpKind::MicroBarrier)
                || (folds_into_accum && reads_accum)
            {
                break;
            }
            if matches!(later.kind, OpKind::Compute { .. }) {
                computes_between += 1;
            }
        }
        if computes_between > 0 {
            out.insert(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(spans: Vec<LaneSpan>) -> LaneStats {
        LaneStats { spans, wall_ns: 100, ..LaneStats::default() }
    }

    fn span(lane: ExecLane, start_ns: u64, end_ns: u64) -> LaneSpan {
        LaneSpan { lane, label: "t", iteration: 0, start_ns, end_ns }
    }

    #[test]
    fn overlap_is_the_intersection_with_merged_compute() {
        let s = stats(vec![
            span(ExecLane::Compute, 0, 10),
            span(ExecLane::Compute, 5, 20), // overlapping compute spans merge
            span(ExecLane::Reduce, 15, 30), // 5 ns under compute
            span(ExecLane::Gather, 18, 19), // 1 ns under compute
            span(ExecLane::Control, 0, 50), // control never counts
        ]);
        assert_eq!(s.busy_ns(ExecLane::Compute), 25);
        assert_eq!(s.comm_busy_ns(), 16);
        assert_eq!(s.overlap_ns(), 6);
        assert!((s.overlap_fraction() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn no_comm_means_zero_overlap_fraction() {
        let s = stats(vec![span(ExecLane::Compute, 0, 10)]);
        assert_eq!(s.overlap_fraction(), 0.0);
    }

    #[test]
    fn fully_serial_lanes_report_zero_overlap() {
        let s = stats(vec![span(ExecLane::Compute, 0, 10), span(ExecLane::Reduce, 10, 20)]);
        assert_eq!(s.overlap_ns(), 0);
    }

    #[test]
    fn trace_export_is_trace_event_shaped() {
        let mut s =
            stats(vec![span(ExecLane::Compute, 1_000, 3_000), span(ExecLane::Reduce, 0, 500)]);
        s.counters.push(CounterSample { name: "deferred reduces (cum)", ts_ns: 600, value: 1.0 });
        let json = s.trace("real \"backend\"").to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1")); // ns → µs
        assert!(json.contains("\"dur\":2"));
        assert!(json.contains("\"args\":{\"name\":\"reduce\"}"), "lane tracks are named");
        assert!(json.contains("real \\\"backend\\\""), "process name escaped");
        assert!(json.contains("lane occupancy (compute)"), "occupancy counters derived");
        assert!(json.contains("deferred reduces (cum)"), "engine counter samples exported");
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"iteration\":0}"));
    }

    #[test]
    fn merged_trace_keeps_processes_separate() {
        // Splicing the measured timeline after a sim trace puts it under
        // its own pid — the side-by-side fidelity view.
        let s = stats(vec![span(ExecLane::Compute, 0, 10)]);
        let mut merged = Trace::new();
        merged.span("simulator (charged)", "compute[0]", "compute", "sim", 0, 10, vec![]);
        s.trace_into(&mut merged, "real backend (measured)");
        assert_eq!(merged.processes(), vec!["simulator (charged)", "real backend (measured)"]);
        let json = merged.to_json();
        assert!(json.contains("\"pid\":1"), "measured events live under their own pid: {json}");
    }

    #[test]
    fn occupancy_counter_handles_back_to_back_spans() {
        let s = stats(vec![span(ExecLane::Gather, 0, 10), span(ExecLane::Gather, 10, 20)]);
        let t = s.trace("p");
        let values: Vec<f64> = t
            .events
            .iter()
            .filter_map(|e| match e.kind {
                mics_trace::EventKind::Counter { value } if e.name.contains("gather") => {
                    Some(value)
                }
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![1.0, 0.0, 1.0, 0.0], "no spurious depth-2 sample");
    }
}
