//! ZeRO/MiCS-style training checkpoints: sharded save, lossless restore,
//! and **resharding** — loading a checkpoint taken at one partition-group
//! size into a different one, the operation that lets a MiCS job move
//! between cluster shapes.
//!
//! Format: little-endian binary with a magic header, explicit lengths, and
//! an XOR-fold checksum; each rank serializes its own shard (parameters +
//! Adam moments + step counter), and a full state is just the `p = 1` case.

use crate::adam::Adam;
use mics_tensor::ShardSpec;
use std::fmt;

/// Complete (unsharded) training state of one model.
///
/// ```
/// use mics_minidl::checkpoint::{load, save, TrainState};
/// let state = TrainState { params: vec![1.0, 2.0, 3.0], m: vec![0.0; 3], v: vec![0.0; 3], step: 7 };
/// // Serialize, reshard to 2 ranks, reassemble — all lossless.
/// let restored = load(&save(&state)).unwrap();
/// assert_eq!(restored, state);
/// let shards = state.shard(2);
/// assert_eq!(TrainState::unshard(&shards, 3), state);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// fp32 master parameters.
    pub params: Vec<f32>,
    /// Adam first moments.
    pub m: Vec<f32>,
    /// Adam second moments.
    pub v: Vec<f32>,
    /// Optimizer step counter.
    pub step: u32,
}

impl TrainState {
    /// Capture the full state from parameters and their optimizer.
    pub fn capture(params: &[f32], opt: &Adam) -> Self {
        let (m, v, step) = opt.state();
        assert_eq!(params.len(), m.len(), "optimizer does not match parameters");
        TrainState { params: params.to_vec(), m: m.to_vec(), v: v.to_vec(), step }
    }

    /// Rebuild `(params, optimizer)` from this state.
    pub fn restore(&self, lr: f32) -> (Vec<f32>, Adam) {
        (self.params.clone(), Adam::from_state(self.m.clone(), self.v.clone(), self.step, lr))
    }

    /// Split into `p` per-rank shards (padded, ZeRO layout).
    pub fn shard(&self, p: usize) -> Vec<TrainState> {
        let spec = ShardSpec::new(self.params.len(), p);
        (0..p)
            .map(|r| TrainState {
                params: spec.extract_padded(&self.params, r),
                m: spec.extract_padded(&self.m, r),
                v: spec.extract_padded(&self.v, r),
                step: self.step,
            })
            .collect()
    }

    /// Reassemble a full state from per-rank shards produced by
    /// [`TrainState::shard`] for a model of `numel` parameters.
    ///
    /// # Panics
    /// Panics on inconsistent shard shapes or step counters.
    pub fn unshard(shards: &[TrainState], numel: usize) -> TrainState {
        assert!(!shards.is_empty());
        let spec = ShardSpec::new(numel, shards.len());
        let step = shards[0].step;
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.step, step, "shard {i} has a different step counter");
            assert_eq!(s.params.len(), spec.shard_len(), "shard {i} has wrong length");
        }
        let collect = |f: fn(&TrainState) -> &Vec<f32>| {
            let pieces: Vec<Vec<f32>> = shards.iter().map(|s| f(s).clone()).collect();
            spec.assemble(&pieces)
        };
        TrainState {
            params: collect(|s| &s.params),
            m: collect(|s| &s.m),
            v: collect(|s| &s.v),
            step,
        }
    }

    /// Re-shard a checkpoint taken with `from` ranks into `to` ranks:
    /// `unshard` then `shard` (the paper-relevant operation when the
    /// partition group size changes between runs).
    pub fn reshard(shards: &[TrainState], numel: usize, to: usize) -> Vec<TrainState> {
        Self::unshard(shards, numel).shard(to)
    }
}

/// Checkpoint decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Wrong magic bytes / not a checkpoint.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Truncated or oversized payload.
    BadLength,
    /// Checksum mismatch (corruption).
    BadChecksum,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a MiCS checkpoint (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::BadLength => write!(f, "checkpoint truncated or malformed"),
            CkptError::BadChecksum => write!(f, "checkpoint checksum mismatch"),
        }
    }
}

impl std::error::Error for CkptError {}

const MAGIC: &[u8; 8] = b"MICSCKP1";
const VERSION: u32 = 1;

fn fold_checksum(data: &[u8]) -> u64 {
    // FNV-1a — cheap, deterministic, good enough for corruption detection.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self.at.checked_add(n).ok_or(CkptError::BadLength)?;
        if end > self.data.len() {
            return Err(CkptError::BadLength);
        }
        let s = &self.data[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CkptError> {
        let n = self.u64()? as usize;
        let raw = self.bytes(n.checked_mul(4).ok_or(CkptError::BadLength)?)?;
        Ok(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }
}

/// Serialize a (possibly sharded) training state.
pub fn save(state: &TrainState) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&state.step.to_le_bytes());
    push_f32s(&mut body, &state.params);
    push_f32s(&mut body, &state.m);
    push_f32s(&mut body, &state.v);
    let mut out = Vec::with_capacity(body.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fold_checksum(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Deserialize a checkpoint produced by [`save`].
pub fn load(data: &[u8]) -> Result<TrainState, CkptError> {
    let mut r = Reader { data, at: 0 };
    if r.bytes(8)? != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let checksum = r.u64()?;
    let body = &data[r.at..];
    if fold_checksum(body) != checksum {
        return Err(CkptError::BadChecksum);
    }
    let step = r.u32()?;
    let params = r.f32s()?;
    let m = r.f32s()?;
    let v = r.f32s()?;
    if m.len() != params.len() || v.len() != params.len() {
        return Err(CkptError::BadLength);
    }
    if r.at != data.len() {
        return Err(CkptError::BadLength);
    }
    Ok(TrainState { params, m, v, step })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn state(numel: usize) -> TrainState {
        TrainState {
            params: (0..numel).map(|i| (i as f32 * 0.31).sin()).collect(),
            m: (0..numel).map(|i| (i as f32 * 0.17).cos()).collect(),
            v: (0..numel).map(|i| (i as f32 * 0.07).abs()).collect(),
            step: 42,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let s = state(37);
        assert_eq!(load(&save(&s)).unwrap(), s);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = save(&state(10));
        assert_eq!(load(&bytes).unwrap().step, 42);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert_eq!(load(&bytes).unwrap_err(), CkptError::BadChecksum);
    }

    #[test]
    fn wrong_magic_and_version_detected() {
        let mut bytes = save(&state(3));
        bytes[0] = b'X';
        assert_eq!(load(&bytes).unwrap_err(), CkptError::BadMagic);
        let mut bytes = save(&state(3));
        bytes[8] = 99;
        assert!(matches!(load(&bytes).unwrap_err(), CkptError::BadVersion(_)));
    }

    #[test]
    fn truncation_detected() {
        let bytes = save(&state(8));
        for cut in [5usize, 15, bytes.len() - 3] {
            assert!(load(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage also rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(load(&extended).unwrap_err(), CkptError::BadChecksum);
    }

    #[test]
    fn resume_after_resharding_is_exact() {
        // 10 Adam steps unsharded, checkpoint, reshard 1 → 4, continue
        // sharded for 10 more steps; must equal 20 unsharded steps exactly.
        let numel = 23;
        let grads = |t: usize| -> Vec<f32> {
            (0..numel).map(|i| ((t * numel + i) as f32 * 0.11).sin()).collect()
        };
        // Reference: 20 full steps.
        let mut ref_p: Vec<f32> = (0..numel).map(|i| i as f32 * 0.05).collect();
        let mut ref_opt = Adam::new(numel, 0.01);
        for t in 0..20 {
            ref_opt.step(&mut ref_p, &grads(t));
        }
        // 10 full steps → checkpoint → reshard to 4 → 10 sharded steps.
        let mut p: Vec<f32> = (0..numel).map(|i| i as f32 * 0.05).collect();
        let mut opt = Adam::new(numel, 0.01);
        for t in 0..10 {
            opt.step(&mut p, &grads(t));
        }
        let full = TrainState::capture(&p, &opt);
        let blobs: Vec<Vec<u8>> = full.shard(4).iter().map(save).collect();
        let shards: Vec<TrainState> = blobs.iter().map(|b| load(b).unwrap()).collect();
        let spec = mics_tensor::ShardSpec::new(numel, 4);
        let mut done: Vec<TrainState> = Vec::new();
        for (r, shard) in shards.into_iter().enumerate() {
            let (mut sp, mut sopt) = shard.restore(0.01);
            for t in 10..20 {
                let g = spec.extract_padded(&grads(t), r);
                sopt.step(&mut sp, &g);
            }
            done.push(TrainState::capture(&sp, &sopt));
        }
        let merged = TrainState::unshard(&done, numel);
        assert_eq!(merged.params, ref_p);
        assert_eq!(merged.step, 20);
    }

    proptest! {
        #[test]
        fn shard_unshard_roundtrip(numel in 1usize..200, p in 1usize..9) {
            let s = state(numel);
            let shards = s.shard(p);
            prop_assert_eq!(TrainState::unshard(&shards, numel), s);
        }

        #[test]
        fn reshard_preserves_state(numel in 1usize..120, from in 1usize..7, to in 1usize..7) {
            let s = state(numel);
            let resharded = TrainState::reshard(&s.shard(from), numel, to);
            prop_assert_eq!(TrainState::unshard(&resharded, numel), s);
        }

        #[test]
        fn save_load_roundtrip_prop(numel in 0usize..64, step in 0u32..1000) {
            let mut s = state(numel);
            s.step = step;
            prop_assert_eq!(load(&save(&s)).unwrap(), s);
        }
    }
}
