//! A small multi-layer perceptron with hand-written backpropagation.
//!
//! Parameters live in one flat `Vec<f32>` (layer by layer: weight matrix in
//! row-major `out × in` order, then bias), which makes ZeRO/MiCS-style flat
//! sharding trivial and keeps every schedule numerically comparable.

use crate::kernels::{acc_outer, matvec_bias, matvec_t};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully-connected network with `tanh` hidden activations and a linear
/// output layer, trained with mean-squared error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mlp {
    /// Layer widths, including input and output: `[in, h1, …, out]`.
    pub dims: Vec<usize>,
}

impl Mlp {
    /// Build an MLP with the given layer widths.
    ///
    /// # Panics
    /// Panics unless at least an input and an output width are given and all
    /// widths are positive.
    pub fn new(dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        Mlp { dims: dims.to_vec() }
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        *self.dims.last().unwrap()
    }

    /// Number of layers (weight matrices).
    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.dims.windows(2).map(|w| w[1] * w[0] + w[1]).sum()
    }

    /// Flat offset of layer `l`'s weights (biases follow immediately).
    fn layer_offset(&self, l: usize) -> usize {
        self.dims[..l + 1].windows(2).map(|w| w[1] * w[0] + w[1]).sum()
    }

    /// Flat parameter range of the contiguous layer slice `lo..hi` — the
    /// piece of the network a pipeline stage owns.
    pub fn stage_param_range(&self, lo: usize, hi: usize) -> std::ops::Range<usize> {
        assert!(lo < hi && hi <= self.num_layers(), "bad stage slice {lo}..{hi}");
        self.layer_offset(lo)..self.layer_offset(hi)
    }

    /// Parameter count of the layer slice `lo..hi`.
    pub fn stage_num_params(&self, lo: usize, hi: usize) -> usize {
        self.stage_param_range(lo, hi).len()
    }

    /// Width of the activation entering layer `l` (the tensor a pipeline
    /// boundary at `l` carries).
    pub fn boundary_dim(&self, l: usize) -> usize {
        self.dims[l]
    }

    /// Forward pass of the layer slice `lo..hi` for one sample, given only
    /// the slice's own parameters (layout of [`Mlp::stage_param_range`]).
    /// Activation boundaries follow the *global* layer indices: `tanh`
    /// everywhere except after the network's final layer, so stacking the
    /// slices reproduces [`Mlp::forward`] bit-for-bit.
    pub fn stage_forward(
        &self,
        stage_params: &[f32],
        lo: usize,
        hi: usize,
        x: &[f32],
    ) -> Vec<Vec<f32>> {
        assert_eq!(stage_params.len(), self.stage_num_params(lo, hi), "stage params mismatch");
        assert_eq!(x.len(), self.dims[lo], "stage input length mismatch");
        let base = self.layer_offset(lo);
        let mut acts = Vec::with_capacity(hi - lo + 1);
        acts.push(x.to_vec());
        for l in lo..hi {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let off = self.layer_offset(l) - base;
            let (w, b) = stage_params[off..].split_at(fan_out * fan_in);
            let b = &b[..fan_out];
            let h = &acts[l - lo];
            let mut z = matvec_bias(w, b, h, fan_out, fan_in);
            if l + 1 < self.num_layers() {
                for zo in z.iter_mut() {
                    *zo = zo.tanh();
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Backward pass of the layer slice `lo..hi` for one sample: given the
    /// slice's forward activations and the loss gradient w.r.t. the slice
    /// *output*, accumulate the slice's parameter gradients into `grad`
    /// (slice layout) and return the gradient w.r.t. the slice *input* —
    /// the tensor the pipeline sends to the previous stage (empty when
    /// `lo == 0`; there is no upstream). Identical operation order to
    /// [`Mlp::backward`] restricted to the slice.
    pub fn stage_backward(
        &self,
        stage_params: &[f32],
        lo: usize,
        hi: usize,
        acts: &[Vec<f32>],
        dout: &[f32],
        grad: &mut [f32],
    ) -> Vec<f32> {
        assert_eq!(grad.len(), self.stage_num_params(lo, hi), "stage gradient mismatch");
        assert_eq!(dout.len(), self.dims[hi], "stage output gradient mismatch");
        let base = self.layer_offset(lo);
        let mut delta = dout.to_vec();
        for l in (lo..hi).rev() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let off = self.layer_offset(l) - base;
            let w = &stage_params[off..off + fan_out * fan_in];
            let h = &acts[l - lo];
            if l + 1 < self.num_layers() {
                let out = &acts[l + 1 - lo];
                for (d, o) in delta.iter_mut().zip(out.iter()) {
                    *d *= 1.0 - o * o;
                }
            }
            let (gw, gb) =
                grad[off..off + fan_out * fan_in + fan_out].split_at_mut(fan_out * fan_in);
            acc_outer(&delta, h, gw);
            for (gbo, &d) in gb.iter_mut().zip(delta.iter()) {
                *gbo += d;
            }
            if l > lo {
                delta = matvec_t(w, &delta, fan_out, fan_in);
            } else if lo > 0 {
                // The boundary gradient the previous stage consumes.
                delta = matvec_t(w, &delta, fan_out, fan_in);
            } else {
                delta = Vec::new();
            }
        }
        delta
    }

    /// Deterministic Xavier-style initialization.
    pub fn init_params(&self, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Vec::with_capacity(self.num_params());
        for w in self.dims.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
            for _ in 0..fan_out * fan_in {
                params.push(rng.gen_range(-bound..bound));
            }
            params.extend(std::iter::repeat_n(0.0, fan_out));
        }
        params
    }

    /// Forward pass for one sample; returns all layer activations (including
    /// the input) for use by [`Mlp::backward`].
    pub fn forward(&self, params: &[f32], x: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        let mut acts = Vec::with_capacity(self.dims.len());
        acts.push(x.to_vec());
        for l in 0..self.num_layers() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let off = self.layer_offset(l);
            let (w, b) = params[off..].split_at(fan_out * fan_in);
            let b = &b[..fan_out];
            let h = &acts[l];
            let mut z = matvec_bias(w, b, h, fan_out, fan_in);
            if l + 1 < self.num_layers() {
                for zo in z.iter_mut() {
                    *zo = zo.tanh();
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Network output for one sample (last activation of [`Mlp::forward`]).
    pub fn predict(&self, params: &[f32], x: &[f32]) -> Vec<f32> {
        self.forward(params, x).pop().unwrap()
    }

    /// Backward pass for one sample given its forward activations and the
    /// loss gradient w.r.t. the output. Accumulates parameter gradients into
    /// `grad` (same layout as `params`) and returns nothing.
    pub fn backward(&self, params: &[f32], acts: &[Vec<f32>], dout: &[f32], grad: &mut [f32]) {
        assert_eq!(grad.len(), self.num_params(), "gradient length mismatch");
        assert_eq!(dout.len(), self.output_dim(), "output gradient length mismatch");
        let mut delta = dout.to_vec();
        for l in (0..self.num_layers()).rev() {
            let (fan_in, fan_out) = (self.dims[l], self.dims[l + 1]);
            let off = self.layer_offset(l);
            let w = &params[off..off + fan_out * fan_in];
            let h = &acts[l];
            // tanh' applied to this layer's output (hidden layers only).
            if l + 1 < self.num_layers() {
                let out = &acts[l + 1];
                for (d, o) in delta.iter_mut().zip(out.iter()) {
                    *d *= 1.0 - o * o;
                }
            }
            // dW = delta ⊗ h, db = delta.
            let (gw, gb) =
                grad[off..off + fan_out * fan_in + fan_out].split_at_mut(fan_out * fan_in);
            acc_outer(&delta, h, gw);
            for (gbo, &d) in gb.iter_mut().zip(delta.iter()) {
                *gbo += d;
            }
            // Propagate: delta_prev = Wᵀ delta.
            if l > 0 {
                delta = matvec_t(w, &delta, fan_out, fan_in);
            }
        }
    }

    /// Mean-squared-error loss and parameter gradient over a micro-batch
    /// (gradient is the *mean* over samples). `xs`/`ys` are row-major
    /// `batch × dim` buffers.
    pub fn loss_and_grad(&self, params: &[f32], xs: &[f32], ys: &[f32]) -> (f32, Vec<f32>) {
        let in_dim = self.input_dim();
        let out_dim = self.output_dim();
        assert!(xs.len().is_multiple_of(in_dim), "xs not a whole number of samples");
        let batch = xs.len() / in_dim;
        assert_eq!(ys.len(), batch * out_dim, "ys shape mismatch");
        assert!(batch > 0, "empty micro-batch");

        let mut grad = vec![0.0f32; self.num_params()];
        let mut loss = 0.0f32;
        let scale = 1.0 / (batch as f32 * out_dim as f32);
        for s in 0..batch {
            let x = &xs[s * in_dim..(s + 1) * in_dim];
            let y = &ys[s * out_dim..(s + 1) * out_dim];
            let acts = self.forward(params, x);
            let out = acts.last().unwrap();
            let mut dout = vec![0.0f32; out_dim];
            for o in 0..out_dim {
                let err = out[o] - y[o];
                loss += 0.5 * err * err * scale;
                dout[o] = err * scale;
            }
            self.backward(params, &acts, &dout, &mut grad);
        }
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_and_offsets() {
        let m = Mlp::new(&[3, 5, 2]);
        // (5*3 + 5) + (2*5 + 2) = 20 + 12 = 32
        assert_eq!(m.num_params(), 32);
        assert_eq!(m.layer_offset(0), 0);
        assert_eq!(m.layer_offset(1), 20);
    }

    #[test]
    fn init_is_deterministic_and_seed_sensitive() {
        let m = Mlp::new(&[4, 8, 1]);
        assert_eq!(m.init_params(7), m.init_params(7));
        assert_ne!(m.init_params(7), m.init_params(8));
    }

    #[test]
    fn forward_linear_network_is_matvec() {
        // Single linear layer: out = Wx + b.
        let m = Mlp::new(&[2, 2]);
        let params = vec![1.0, 2.0, 3.0, 4.0, 0.5, -0.5]; // W=[[1,2],[3,4]], b=[0.5,-0.5]
        let out = m.predict(&params, &[1.0, 1.0]);
        assert_eq!(out, vec![3.5, 6.5]);
    }

    #[test]
    fn zero_error_means_zero_gradient() {
        let m = Mlp::new(&[2, 3, 1]);
        let params = m.init_params(3);
        let x = vec![0.3, -0.7];
        let y = m.predict(&params, &x);
        let (loss, grad) = m.loss_and_grad(&params, &x, &y);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let m = Mlp::new(&[3, 4, 2]);
        let mut params = m.init_params(11);
        let xs: Vec<f32> = vec![0.2, -0.4, 0.9, -0.1, 0.6, 0.3];
        let ys: Vec<f32> = vec![0.5, -0.2, 0.1, 0.7];
        let (_, grad) = m.loss_and_grad(&params, &xs, &ys);
        let eps = 1e-3f32;
        for idx in (0..m.num_params()).step_by(3) {
            let orig = params[idx];
            params[idx] = orig + eps;
            let (lp, _) = m.loss_and_grad(&params, &xs, &ys);
            params[idx] = orig - eps;
            let (lm, _) = m.loss_and_grad(&params, &xs, &ys);
            params[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[idx]).abs() < 2e-3,
                "param {idx}: numeric {numeric} vs analytic {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn batch_gradient_is_mean_of_sample_gradients() {
        let m = Mlp::new(&[2, 3, 1]);
        let params = m.init_params(5);
        let x1 = vec![0.1, 0.2];
        let x2 = vec![-0.5, 0.8];
        let y1 = vec![1.0];
        let y2 = vec![-1.0];
        let (_, g1) = m.loss_and_grad(&params, &x1, &y1);
        let (_, g2) = m.loss_and_grad(&params, &x2, &y2);
        let xs: Vec<f32> = [x1, x2].concat();
        let ys: Vec<f32> = [y1, y2].concat();
        let (_, gb) = m.loss_and_grad(&params, &xs, &ys);
        for i in 0..m.num_params() {
            let mean = (g1[i] + g2[i]) / 2.0;
            assert!((gb[i] - mean).abs() < 1e-6, "index {i}");
        }
    }

    #[test]
    fn stage_slices_compose_to_the_full_network_bit_exactly() {
        let m = Mlp::new(&[3, 5, 4, 2]);
        let params = m.init_params(13);
        let x = vec![0.4, -0.2, 0.9];
        let full = m.forward(&params, &x);
        // Split 0..2 | 2..3 and stack the slice forwards.
        let p0 = &params[m.stage_param_range(0, 2)];
        let p1 = &params[m.stage_param_range(2, 3)];
        let a0 = m.stage_forward(p0, 0, 2, &x);
        let a1 = m.stage_forward(p1, 2, 3, a0.last().unwrap());
        assert_eq!(a0.last().unwrap(), &full[2]);
        assert_eq!(a1.last().unwrap(), full.last().unwrap());
        // Backward: full gradient vs slice gradients + boundary delta.
        let y = vec![0.1, -0.3];
        let out = full.last().unwrap();
        let dout: Vec<f32> = out.iter().zip(&y).map(|(o, t)| o - t).collect();
        let mut grad = vec![0.0f32; m.num_params()];
        m.backward(&params, &full, &dout, &mut grad);
        let mut g1 = vec![0.0f32; p1.len()];
        let dmid = m.stage_backward(p1, 2, 3, &a1, &dout, &mut g1);
        let mut g0 = vec![0.0f32; p0.len()];
        let dback = m.stage_backward(p0, 0, 2, &a0, &dmid, &mut g0);
        assert!(dback.is_empty(), "stage 0 has no upstream");
        assert_eq!([g0, g1].concat(), grad);
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn wrong_param_length_panics() {
        let m = Mlp::new(&[2, 2]);
        m.forward(&[0.0; 3], &[0.0, 0.0]);
    }

    #[test]
    fn deep_network_trains_a_step() {
        // One SGD step on a 3-layer net reduces loss on the same batch.
        let m = Mlp::new(&[4, 16, 16, 2]);
        let mut params = m.init_params(42);
        let xs: Vec<f32> = (0..40).map(|i| ((i as f32) * 0.37).sin()).collect();
        let ys: Vec<f32> = (0..20).map(|i| ((i as f32) * 0.11).cos()).collect();
        let (l0, g) = m.loss_and_grad(&params, &xs, &ys);
        for (p, gi) in params.iter_mut().zip(g.iter()) {
            *p -= 0.5 * gi;
        }
        let (l1, _) = m.loss_and_grad(&params, &xs, &ys);
        assert!(l1 < l0, "{l1} !< {l0}");
    }
}
