//! Dynamic loss scaling for mixed-precision training.
//!
//! fp16 gradients underflow easily; production stacks (including the
//! DeepSpeed base MiCS builds on) multiply the loss by a large scale before
//! backward, divide gradients by it before the optimizer step, *skip* steps
//! whose gradients overflowed to inf/NaN, and adapt the scale: halve on
//! overflow, double after a window of clean steps.

/// Loss-scaling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossScale {
    /// No scaling (fp32 training).
    None,
    /// Fixed scale.
    Static(f32),
    /// DeepSpeed-style dynamic scaling.
    Dynamic {
        /// Initial scale (DeepSpeed default: 2¹⁶).
        init: f32,
        /// Clean steps before the scale doubles (DeepSpeed default: 2000;
        /// tests use small values).
        growth_interval: u32,
    },
}

/// Mutable state of the dynamic scaler.
#[derive(Debug, Clone)]
pub struct ScalerState {
    policy: LossScale,
    scale: f32,
    good_steps: u32,
    skipped: u32,
}

/// A point-in-time snapshot of a [`ScalerState`] — part of a training
/// checkpoint. Resuming without it would silently reset the dynamic scale
/// and the growth window, breaking bit-exact resume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalerSnapshot {
    /// The loss scale at the snapshot.
    pub scale: f32,
    /// Clean steps accumulated toward the next scale growth.
    pub good_steps: u32,
    /// Optimizer steps skipped so far.
    pub skipped: u32,
}

impl ScalerState {
    /// Initialize from a policy.
    pub fn new(policy: LossScale) -> Self {
        let scale = match policy {
            LossScale::None => 1.0,
            LossScale::Static(s) => s,
            LossScale::Dynamic { init, .. } => init,
        };
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        ScalerState { policy, scale, good_steps: 0, skipped: 0 }
    }

    /// Snapshot the mutable state for a checkpoint.
    pub fn snapshot(&self) -> ScalerSnapshot {
        ScalerSnapshot { scale: self.scale, good_steps: self.good_steps, skipped: self.skipped }
    }

    /// Rebuild a scaler from a checkpointed snapshot under `policy`.
    pub fn resume(policy: LossScale, snap: ScalerSnapshot) -> Self {
        assert!(snap.scale.is_finite() && snap.scale > 0.0, "scale must be positive");
        ScalerState {
            policy,
            scale: snap.scale,
            good_steps: snap.good_steps,
            skipped: snap.skipped,
        }
    }

    /// The current multiplier applied to the loss (and so to gradients).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of optimizer steps skipped due to overflow so far.
    pub fn skipped_steps(&self) -> u32 {
        self.skipped
    }

    /// Record the outcome of one global step. `overflowed` must be the
    /// *globally agreed* flag (identical on every rank). Returns whether the
    /// optimizer step should be applied.
    pub fn update(&mut self, overflowed: bool) -> bool {
        match self.policy {
            LossScale::None | LossScale::Static(_) => {
                if overflowed {
                    self.skipped += 1;
                }
                !overflowed
            }
            LossScale::Dynamic { growth_interval, .. } => {
                if overflowed {
                    self.skipped += 1;
                    self.good_steps = 0;
                    self.scale = (self.scale / 2.0).max(1.0);
                    false
                } else {
                    self.good_steps += 1;
                    if self.good_steps >= growth_interval {
                        self.good_steps = 0;
                        self.scale = (self.scale * 2.0).min(2f32.powi(24));
                    }
                    true
                }
            }
        }
    }
}

/// True if any element is non-finite (the per-rank half of overflow
/// detection; ranks combine their flags with a max-all-reduce).
pub fn has_overflow(grad: &[f32]) -> bool {
    grad.iter().any(|g| !g.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_static_policies_hold_scale() {
        let mut s = ScalerState::new(LossScale::None);
        assert_eq!(s.scale(), 1.0);
        assert!(s.update(false));
        assert_eq!(s.scale(), 1.0);

        let mut s = ScalerState::new(LossScale::Static(128.0));
        assert!(s.update(false));
        assert!(!s.update(true)); // overflow skips the step
        assert_eq!(s.scale(), 128.0); // but never adapts
        assert_eq!(s.skipped_steps(), 1);
    }

    #[test]
    fn dynamic_halves_on_overflow_and_doubles_after_window() {
        let mut s = ScalerState::new(LossScale::Dynamic { init: 1024.0, growth_interval: 3 });
        assert!(!s.update(true));
        assert_eq!(s.scale(), 512.0);
        assert!(s.update(false));
        assert!(s.update(false));
        assert_eq!(s.scale(), 512.0, "not yet grown");
        assert!(s.update(false));
        assert_eq!(s.scale(), 1024.0, "grown after 3 clean steps");
    }

    #[test]
    fn overflow_resets_growth_window() {
        let mut s = ScalerState::new(LossScale::Dynamic { init: 256.0, growth_interval: 2 });
        assert!(s.update(false));
        assert!(!s.update(true)); // reset
        assert!(s.update(false));
        assert_eq!(s.scale(), 128.0, "window restarted after the overflow");
        assert!(s.update(false));
        assert_eq!(s.scale(), 256.0);
    }

    #[test]
    fn scale_bounded() {
        let mut s = ScalerState::new(LossScale::Dynamic { init: 2.0, growth_interval: 1 });
        for _ in 0..100 {
            s.update(true);
        }
        assert_eq!(s.scale(), 1.0, "never below 1");
        for _ in 0..100 {
            s.update(false);
        }
        assert_eq!(s.scale(), 2f32.powi(24), "capped at 2^24");
    }

    #[test]
    fn snapshot_resume_roundtrip() {
        let policy = LossScale::Dynamic { init: 512.0, growth_interval: 3 };
        let mut s = ScalerState::new(policy);
        s.update(false);
        s.update(true);
        s.update(false);
        let mut resumed = ScalerState::resume(policy, s.snapshot());
        // Both copies evolve identically from the snapshot on.
        for overflowed in [false, false, true, false, false] {
            assert_eq!(s.update(overflowed), resumed.update(overflowed));
            assert_eq!(s.snapshot(), resumed.snapshot());
        }
    }

    #[test]
    fn overflow_detection() {
        assert!(!has_overflow(&[1.0, -2.0, 0.0]));
        assert!(has_overflow(&[1.0, f32::INFINITY]));
        assert!(has_overflow(&[f32::NAN]));
        assert!(has_overflow(&[f32::NEG_INFINITY, 0.0]));
        assert!(!has_overflow(&[]));
    }
}
