//! Data-parallel *language-model* training — the transformer counterpart of
//! [`crate::train::train`], matching the paper's §5.4 fidelity setup structurally
//! (a causal transformer trained with cross-entropy under MiCS vs DeepSpeed
//! schedules).
//!
//! The synthetic corpus is an affine token chain: given a seeded start
//! token, `tokenᵢ₊₁ = (3·tokenᵢ + 5) mod V`. The mapping is a function of
//! the previous token alone, so even a small causal transformer can drive
//! the cross-entropy toward zero — and any synchronization bug between the
//! schedules shows up as diverging loss curves.

use crate::scaler::LossScale;
use crate::train::{train_generic_on, ScheduleHyper, SyncSchedule, TrainOutcome};
use crate::transformer::TinyTransformer;
use mics_dataplane::TransportKind;

/// Configuration of a language-model fidelity run.
#[derive(Debug, Clone)]
pub struct LmSetup {
    /// The transformer to train.
    pub model: TinyTransformer,
    /// Data-parallel ranks.
    pub world: usize,
    /// Partition group size (ignored by DDP).
    pub partition_size: usize,
    /// Sequences per rank per micro-step.
    pub micro_batch: usize,
    /// Micro-steps per iteration.
    pub accum_steps: usize,
    /// Optimizer steps.
    pub iterations: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for initialization and data.
    pub seed: u64,
    /// f16-quantize forward parameter copies.
    pub quantize: bool,
    /// Loss-scaling policy.
    pub loss_scale: LossScale,
    /// Optional global-norm gradient clip.
    pub clip_grad_norm: Option<f32>,
    /// Quantized-communication configuration (`None` = exact wire).
    pub comm_quant: Option<mics_compress::CompressionConfig>,
    /// Collective look-ahead: `0` runs the historical inline interpreter;
    /// `≥ 1` enables the async executor (overlapped reduces + cross-iteration
    /// gather prefetch). Results are bit-identical either way.
    pub prefetch_depth: usize,
}

/// Deterministic micro-batch of token sequences for
/// (`iteration`, `micro_step`, `rank`): row-major
/// `micro_batch × (seq_len + 1)`.
pub fn token_batch(
    model: &TinyTransformer,
    seed: u64,
    iteration: usize,
    micro: usize,
    rank: usize,
    micro_batch: usize,
) -> Vec<usize> {
    let v = model.vocab;
    let mut out = Vec::with_capacity(micro_batch * (model.seq_len + 1));
    for sample in 0..micro_batch {
        // splitmix-style coordinate hash for the start token.
        let mut key = seed;
        for coord in [iteration as u64, micro as u64, rank as u64, sample as u64] {
            key = key
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(coord.wrapping_mul(0xd1b5_4a32_d192_ed03));
            key ^= key >> 29;
        }
        let mut tok = (key % v as u64) as usize;
        for _ in 0..model.seq_len + 1 {
            out.push(tok);
            tok = (tok * 3 + 5) % v;
        }
    }
    out
}

/// Train the transformer under `schedule` on real thread-ranks; returns the
/// rank-identical outcome (per-iteration mean cross-entropy and final
/// parameters).
pub fn train_lm(setup: &LmSetup, schedule: SyncSchedule) -> TrainOutcome {
    train_lm_on(TransportKind::Local, setup, schedule)
}

/// [`train_lm`] on an explicit data-plane transport: `Local` is the thread
/// harness, `Socket` routes every collective of the training step through a
/// framed rendezvous hub. Loss curves and final parameters are bit-identical
/// between the two — the §5.4 fidelity claim extended down the stack to the
/// wire.
pub fn train_lm_on(
    transport: TransportKind,
    setup: &LmSetup,
    schedule: SyncSchedule,
) -> TrainOutcome {
    let model = setup.model.clone();
    let init = model.init_params(setup.seed);
    let seed = setup.seed ^ 0x00c0_ffee_1234_5678;
    let micro_batch = setup.micro_batch;
    let hp = ScheduleHyper {
        world: setup.world,
        partition_size: setup.partition_size,
        accum_steps: setup.accum_steps,
        iterations: setup.iterations,
        lr: setup.lr,
        quantize: setup.quantize,
        loss_scale: setup.loss_scale,
        clip_grad_norm: setup.clip_grad_norm,
        comm_quant: setup.comm_quant,
        prefetch_depth: setup.prefetch_depth,
    };
    train_generic_on(transport, &hp, schedule, init, move |params, iter, micro, rank| {
        let toks = token_batch(&model, seed, iter, micro, rank, micro_batch);
        model.loss_and_grad(params, &toks)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> LmSetup {
        LmSetup {
            model: TinyTransformer::new(7, 5, 8, 2, 12, 1),
            world: 4,
            partition_size: 2,
            micro_batch: 4,
            accum_steps: 2,
            iterations: 30,
            lr: 0.02,
            seed: 424242,
            quantize: false,
            loss_scale: LossScale::None,
            clip_grad_norm: None,
            comm_quant: None,
            prefetch_depth: 0,
        }
    }

    #[test]
    fn token_batches_are_deterministic_and_follow_the_chain() {
        let m = TinyTransformer::new(7, 5, 8, 2, 12, 1);
        let a = token_batch(&m, 1, 0, 0, 0, 3);
        assert_eq!(a, token_batch(&m, 1, 0, 0, 0, 3));
        assert_ne!(a, token_batch(&m, 1, 0, 0, 1, 3), "rank must matter");
        // Every consecutive pair follows tokᵢ₊₁ = (3·tokᵢ + 5) mod V.
        for seq in a.chunks(6) {
            for w in seq.windows(2) {
                assert_eq!(w[1], (w[0] * 3 + 5) % 7);
            }
        }
    }

    #[test]
    fn transformer_lm_learns_the_chain_under_two_hop() {
        let out = train_lm(&setup(), SyncSchedule::TwoHop);
        let first = out.losses[0];
        let last = *out.losses.last().unwrap();
        assert!(
            last < first * 0.5,
            "cross-entropy {first} → {last} did not halve over 30 iterations"
        );
    }

    #[test]
    fn lm_schedules_produce_matching_loss_curves() {
        // The transformer version of Figure 15: MiCS 2-hop vs DDP vs the
        // ZeRO-3 schedule on the same token stream.
        let cfg = setup();
        let ddp = train_lm(&cfg, SyncSchedule::Ddp);
        let mics = train_lm(&cfg, SyncSchedule::TwoHop);
        let zero3 = train_lm(&cfg, SyncSchedule::PerMicroStepAllReduce);
        for i in 0..cfg.iterations {
            let a = ddp.losses[i];
            for (name, b) in [("mics", mics.losses[i]), ("zero3", zero3.losses[i])] {
                assert!(
                    (a - b).abs() / a.abs().max(1e-9) < 5e-3,
                    "iteration {i}: ddp {a} vs {name} {b}"
                );
            }
        }
    }

    #[test]
    fn lm_mixed_precision_with_dynamic_scaling_converges() {
        let mut cfg = setup();
        cfg.quantize = true;
        cfg.loss_scale = LossScale::Dynamic { init: 4096.0, growth_interval: 8 };
        cfg.clip_grad_norm = Some(1.0);
        let out = train_lm(&cfg, SyncSchedule::TwoHop);
        assert_eq!(out.skipped_steps, 0);
        assert!(out.final_loss_scale > 4096.0, "scale should have grown");
        assert!(*out.losses.last().unwrap() < out.losses[0] * 0.7);
    }

    #[test]
    fn lm_socket_transport_is_bit_identical_to_local() {
        // The whole training step — sharded gathers, reductions, boundary
        // collectives, optimizer — over real sockets must reproduce the
        // shared-memory run bit for bit.
        let mut cfg = setup();
        cfg.iterations = 8;
        let local = train_lm_on(TransportKind::Local, &cfg, SyncSchedule::TwoHop);
        let socket = train_lm_on(TransportKind::Socket, &cfg, SyncSchedule::TwoHop);
        assert_eq!(local.losses, socket.losses);
        assert_eq!(local.final_params, socket.final_params);
    }

    #[test]
    fn lm_two_hop_bitwise_equals_zero3_schedule_at_full_partition() {
        let mut cfg = setup();
        cfg.partition_size = cfg.world;
        cfg.iterations = 10;
        let a = train_lm(&cfg, SyncSchedule::TwoHop);
        let b = train_lm(&cfg, SyncSchedule::PerMicroStepAllReduce);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.final_params, b.final_params);
    }
}
