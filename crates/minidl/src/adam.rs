//! Adam optimizer over a flat parameter shard.
//!
//! The paper's memory accounting assumes Adam with mixed precision: 4-byte
//! master weights plus 4+4-byte first/second moments per parameter — the
//! "12 bytes of optimizer state" that make ZeRO/MiCS sharding worthwhile.

/// Adam with bias correction, operating on any contiguous parameter shard.
///
/// ```
/// use mics_minidl::Adam;
/// let mut opt = Adam::new(2, 0.1);
/// let mut params = vec![1.0f32, -1.0];
/// opt.step(&mut params, &[0.5, -0.5]);
/// // The first bias-corrected step moves each parameter by ≈ lr.
/// assert!((params[0] - 0.9).abs() < 1e-3);
/// assert!((params[1] + 0.9).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// First moments (same length as the shard).
    m: Vec<f32>,
    /// Second moments.
    v: Vec<f32>,
    /// Step counter for bias correction.
    t: u32,
}

impl Adam {
    /// Create an optimizer for a shard of `len` parameters with the standard
    /// hyper-parameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(len: usize, lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m: vec![0.0; len], v: vec![0.0; len], t: 0 }
    }

    /// Number of parameters this optimizer instance manages.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// True if the shard is empty (possible for padded tail shards).
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Bytes of optimizer state per parameter (fp32 m + v + master copy),
    /// the constant used throughout the paper's memory model.
    pub const STATE_BYTES_PER_PARAM: u64 = 12;

    /// Apply one Adam update to `params` given `grad` (both shard-length).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "shard length mismatch");
        assert_eq!(grad.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Current step count.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// Snapshot the optimizer state: `(first moments, second moments, step)`.
    pub fn state(&self) -> (&[f32], &[f32], u32) {
        (&self.m, &self.v, self.t)
    }

    /// Rebuild an optimizer from checkpointed state.
    ///
    /// # Panics
    /// Panics if the moment vectors have different lengths.
    pub fn from_state(m: Vec<f32>, v: Vec<f32>, t: u32, lr: f32) -> Self {
        assert_eq!(m.len(), v.len(), "moment length mismatch");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, m, v, t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step has magnitude ≈ lr for
        // any non-zero gradient.
        let mut opt = Adam::new(3, 0.01);
        let mut p = vec![1.0f32, -2.0, 0.5];
        opt.step(&mut p, &[0.3, -5.0, 1e-4]);
        assert!((p[0] - (1.0 - 0.01)).abs() < 1e-4);
        assert!((p[1] - (-2.0 + 0.01)).abs() < 1e-4);
        assert!((p[2] - (0.5 - 0.01)).abs() < 1e-3);
    }

    #[test]
    fn zero_gradient_is_a_fixed_point_initially() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![3.0f32, -4.0];
        opt.step(&mut p, &[0.0, 0.0]);
        assert_eq!(p, vec![3.0, -4.0]);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize 0.5 * x² — gradient is x.
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![5.0f32];
        for _ in 0..500 {
            let g = vec![p[0]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 0.05, "did not converge: {}", p[0]);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut opt = Adam::new(4, 0.01);
            let mut p = vec![1.0f32, 2.0, 3.0, 4.0];
            for i in 0..20 {
                let g: Vec<f32> = (0..4).map(|j| ((i * 4 + j) as f32).sin()).collect();
                opt.step(&mut p, &g);
            }
            p
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_update_equals_full_update() {
        // Running Adam on two half-shards must equal running it on the full
        // vector — the property ZeRO's optimizer-state sharding relies on.
        let grads: Vec<Vec<f32>> =
            (0..10).map(|i| (0..8).map(|j| ((i * 8 + j) as f32).cos()).collect()).collect();
        let mut full = Adam::new(8, 0.02);
        let mut pf: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut lo = Adam::new(4, 0.02);
        let mut hi = Adam::new(4, 0.02);
        let mut pl: Vec<f32> = pf[..4].to_vec();
        let mut ph: Vec<f32> = pf[4..].to_vec();
        for g in &grads {
            full.step(&mut pf, g);
            lo.step(&mut pl, &g[..4]);
            hi.step(&mut ph, &g[4..]);
        }
        assert_eq!(pf[..4], pl[..]);
        assert_eq!(pf[4..], ph[..]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut opt = Adam::new(2, 0.1);
        let mut p = vec![0.0f32; 3];
        opt.step(&mut p, &[0.0; 3]);
    }

    #[test]
    fn empty_shard_is_fine() {
        // Padded tail shards can be empty; stepping them is a no-op.
        let mut opt = Adam::new(0, 0.1);
        let mut p: Vec<f32> = vec![];
        opt.step(&mut p, &[]);
        assert!(opt.is_empty());
    }
}
