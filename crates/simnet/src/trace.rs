//! Trace export of simulated timelines, on the shared `mics-trace` layer.
//!
//! With tracing enabled, [`crate::Sim::run`] records one duration span per
//! executed `Compute`/`Transfer` op into a [`mics_trace::Trace`], with the
//! stream's name as the track and virtual nanoseconds as the time axis
//! (transfers carry their byte count as an arg). Events land on the
//! neutral process name [`SIM_PROCESS`]; consumers rename it for
//! presentation ([`mics_trace::Trace::rename_process`]) and render with
//! the single workspace writer ([`mics_trace::Trace::to_json`]) — the
//! hand-rolled chrome-trace emitter that used to live here is gone.

use crate::SimTime;
pub use mics_trace::{Arg, EventKind, Trace, TraceEvent};

/// Process name the simulator records under ("sim"); presentation names
/// like "simulator (charged)" belong to consumers.
pub const SIM_PROCESS: &str = "sim";

/// Record one executed op's occupancy of a stream as a span on the
/// stream's own track.
pub(crate) fn record_span(
    trace: &mut Trace,
    stream_name: &str,
    label: &'static str,
    start: SimTime,
    end: SimTime,
    bytes: Option<u64>,
) {
    let mut args: Vec<(&'static str, Arg)> = Vec::new();
    if let Some(b) = bytes {
        args.push(("bytes", Arg::from(b)));
    }
    let start_ns = start.as_nanos();
    let dur_ns = end.as_nanos().saturating_sub(start_ns);
    trace.span(SIM_PROCESS, stream_name, label, "sim", start_ns, dur_ns, args);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Sim};

    #[test]
    fn spans_recorded_when_tracing_enabled() {
        let mut sim = Sim::new();
        sim.enable_tracing();
        let link = sim.add_link("nic", 1e9);
        let a = sim.add_stream("compute[0]");
        let b = sim.add_stream("comm[0]");
        sim.push(a, Op::compute(SimTime::from_millis(2)));
        sim.push(b, Op::transfer(link, 1_000_000, SimTime::ZERO));
        let stats = sim.run().unwrap();
        assert_eq!(stats.trace.len(), 2);
        let compute = stats.trace.events.iter().find(|e| e.name == "compute").unwrap();
        assert_eq!(compute.track, "compute[0]");
        assert_eq!(compute.process, SIM_PROCESS);
        assert_eq!(compute.ts_ns, 0);
        assert_eq!(compute.kind, EventKind::Span { dur_ns: SimTime::from_millis(2).as_nanos() });
        let transfer = stats.trace.events.iter().find(|e| e.name == "transfer").unwrap();
        assert_eq!(transfer.track, "comm[0]");
        assert_eq!(transfer.kind, EventKind::Span { dur_ns: SimTime::from_millis(1).as_nanos() });
        assert!(
            transfer.args.contains(&("bytes", Arg::Int(1_000_000))),
            "transfers carry their byte count: {:?}",
            transfer.args
        );
    }

    #[test]
    fn no_spans_without_tracing() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        sim.push(a, Op::compute(SimTime::from_millis(1)));
        let stats = sim.run().unwrap();
        assert!(stats.trace.is_empty());
    }

    #[test]
    fn trace_json_is_trace_event_shaped_with_named_tracks() {
        let mut sim = Sim::new();
        sim.enable_tracing();
        let a = sim.add_stream("c\"0"); // hostile name exercises escaping
        sim.push(a, Op::compute(SimTime::from_micros(4)));
        let stats = sim.run().unwrap();
        let json = stats.trace.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0"));
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("c\\\"0"), "names must be escaped: {json}");
        assert!(json.contains("\"thread_name\""), "tracks must be named");
    }

    #[test]
    fn blocked_time_not_attributed_to_spans() {
        // A stream waiting on an event records only its execution span.
        let mut sim = Sim::new();
        sim.enable_tracing();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        let e = sim.add_event();
        sim.push(a, Op::compute(SimTime::from_millis(5)));
        sim.push(a, Op::RecordEvent(e));
        sim.push(b, Op::WaitEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(1)));
        let stats = sim.run().unwrap();
        let on_b = stats.trace.events.iter().find(|s| s.track == "b").unwrap();
        assert_eq!(on_b.ts_ns, SimTime::from_millis(5).as_nanos());
        assert_eq!(on_b.kind, EventKind::Span { dur_ns: SimTime::from_millis(1).as_nanos() });
    }
}
