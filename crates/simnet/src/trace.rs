//! Chrome-trace export of simulated timelines.
//!
//! With tracing enabled, [`crate::Sim::run`] records one span per executed
//! `Compute`/`Transfer` op. [`chrome_trace_json`] renders the spans in the
//! Trace Event Format, loadable in `chrome://tracing` / Perfetto — handy for
//! eyeballing how well an executor overlaps gathers with compute.

use crate::{SimTime, StreamId};

/// One executed operation's occupancy of a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The stream the op ran on.
    pub stream: StreamId,
    /// `"compute"` or `"transfer"`.
    pub label: &'static str,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render spans as Chrome Trace Event Format JSON (complete "X" events,
/// microsecond timestamps, one `tid` per stream). `stream_names[i]` labels
/// stream `i`.
pub fn chrome_trace_json(spans: &[Span], stream_names: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    // Thread-name metadata so the viewer shows stream names.
    for (i, name) in stream_names.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            i,
            escape(name)
        ));
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = s.start.as_nanos() as f64 / 1e3;
        let dur = (s.end.as_nanos() - s.start.as_nanos()) as f64 / 1e3;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{ts},\"dur\":{dur}}}",
            s.label, s.stream.0
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Sim};

    #[test]
    fn spans_recorded_when_tracing_enabled() {
        let mut sim = Sim::new();
        sim.enable_tracing();
        let link = sim.add_link("nic", 1e9);
        let a = sim.add_stream("compute[0]");
        let b = sim.add_stream("comm[0]");
        sim.push(a, Op::compute(SimTime::from_millis(2)));
        sim.push(b, Op::transfer(link, 1_000_000, SimTime::ZERO));
        let stats = sim.run().unwrap();
        assert_eq!(stats.trace.len(), 2);
        let compute = stats.trace.iter().find(|s| s.label == "compute").unwrap();
        assert_eq!(compute.stream, a);
        assert_eq!(compute.start, SimTime::ZERO);
        assert_eq!(compute.end, SimTime::from_millis(2));
        let transfer = stats.trace.iter().find(|s| s.label == "transfer").unwrap();
        assert_eq!(transfer.stream, b);
        assert_eq!(transfer.end, SimTime::from_millis(1));
    }

    #[test]
    fn no_spans_without_tracing() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        sim.push(a, Op::compute(SimTime::from_millis(1)));
        let stats = sim.run().unwrap();
        assert!(stats.trace.is_empty());
    }

    #[test]
    fn json_shape() {
        let spans = vec![Span {
            stream: StreamId(1),
            label: "compute",
            start: SimTime::from_micros(5),
            end: SimTime::from_micros(9),
        }];
        let json = chrome_trace_json(&spans, &["c0".into(), "c\"1".into()]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":5"));
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("c\\\"1"), "names must be escaped");
    }

    #[test]
    fn blocked_time_not_attributed_to_spans() {
        // A stream waiting on an event records only its execution span.
        let mut sim = Sim::new();
        sim.enable_tracing();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        let e = sim.add_event();
        sim.push(a, Op::compute(SimTime::from_millis(5)));
        sim.push(a, Op::RecordEvent(e));
        sim.push(b, Op::WaitEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(1)));
        let stats = sim.run().unwrap();
        let on_b = stats.trace.iter().find(|s| s.stream == b).unwrap();
        assert_eq!(on_b.start, SimTime::from_millis(5));
        assert_eq!(on_b.end, SimTime::from_millis(6));
    }
}
