//! Deterministic discrete-event simulation engine for modelling distributed
//! training timelines.
//!
//! The engine models three kinds of entities, mirroring how a GPU runtime
//! schedules work:
//!
//! * [`StreamId`] — an ordered executor (like a CUDA stream). Each device in a
//!   simulated cluster typically owns one compute stream and one or more
//!   communication streams. Operations pushed onto a stream run strictly in
//!   order.
//! * [`EventId`] — a one-shot synchronization token (like a CUDA event). A
//!   stream can [`Op::RecordEvent`] an event, and any stream can
//!   [`Op::WaitEvent`] on it; waiting after the record completes immediately.
//!   This is the *fine-grained* synchronization primitive the MiCS paper (§4)
//!   contrasts with coarse device-wide synchronization.
//! * [`LinkId`] — a capacity-limited shared resource (a node's NIC, a node's
//!   NVLink fabric, or a device-local memcpy engine). Concurrent transfers on
//!   one link share its bandwidth fairly ("fluid flow" model), so two
//!   collectives overlapping on the same NIC genuinely slow each other down.
//!
//! Determinism: virtual time is integer nanoseconds and the event queue breaks
//! ties by insertion sequence number, so a given program always produces the
//! same timeline.
//!
//! # Example
//!
//! ```
//! use mics_simnet::{Sim, Op, SimTime};
//!
//! let mut sim = Sim::new();
//! let nic = sim.add_link("nic", 12.5e9); // 100 Gbps in bytes/sec
//! let compute = sim.add_stream("compute");
//! let comm = sim.add_stream("comm");
//! let done = sim.add_event();
//!
//! // Communication overlapping computation, joined by an event.
//! sim.push(comm, Op::transfer(nic, 125_000_000, SimTime::from_micros(20)));
//! sim.push(comm, Op::RecordEvent(done));
//! sim.push(compute, Op::compute(SimTime::from_millis(5)));
//! sim.push(compute, Op::WaitEvent(done));
//! sim.push(compute, Op::compute(SimTime::from_millis(1)));
//!
//! let stats = sim.run().unwrap();
//! // 125 MB over 12.5 GB/s = 10 ms, dominating the 5 ms compute.
//! assert!(stats.makespan >= SimTime::from_millis(11));
//! ```

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

pub mod fault;
mod time;
pub mod trace;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, SIM_PROCESS};

/// Identifies a stream (ordered executor) inside a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

/// Identifies a one-shot synchronization event inside a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub usize);

/// Identifies a shared bandwidth resource (NIC, NVLink fabric, memcpy engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// A user-assigned marker used to retrieve completion times from [`RunStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

/// An operation executed on a stream.
#[derive(Debug, Clone)]
pub enum Op {
    /// Occupy the stream for a fixed duration (kernel execution).
    Compute {
        /// How long the stream is busy.
        duration: SimTime,
        /// Optional completion marker.
        tag: Option<Tag>,
    },
    /// Move `bytes` across `link`, sharing its bandwidth with other active
    /// transfers. `latency` is a fixed startup term paid before any byte moves
    /// (the α in the α–β collective cost model).
    Transfer {
        /// The shared resource the bytes traverse.
        link: LinkId,
        /// Payload size in bytes.
        bytes: u64,
        /// Fixed startup latency.
        latency: SimTime,
        /// Optional completion marker.
        tag: Option<Tag>,
    },
    /// Record `EventId` as completed at the current stream position.
    RecordEvent(EventId),
    /// Block the stream until the event has been recorded.
    WaitEvent(EventId),
    /// Zero-duration marker that stamps the current virtual time into
    /// [`RunStats::tag_times`].
    Mark(Tag),
}

impl Op {
    /// Convenience constructor for an untagged [`Op::Compute`].
    pub fn compute(duration: SimTime) -> Self {
        Op::Compute { duration, tag: None }
    }

    /// Convenience constructor for an untagged [`Op::Transfer`].
    pub fn transfer(link: LinkId, bytes: u64, latency: SimTime) -> Self {
        Op::Transfer { link, bytes, latency, tag: None }
    }
}

/// Error returned by [`Sim::run`] when the program cannot make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// One or more streams are blocked waiting on events that will never be
    /// recorded. Contains `(stream, event)` pairs for diagnosis.
    Deadlock(Vec<(StreamId, EventId)>),
    /// Streams are blocked on events that can no longer be recorded because
    /// the recording stream was killed by an injected fault. This is the
    /// simulation-level analogue of a collective hanging on a dead rank;
    /// recovery layers are expected to detect it and re-plan.
    OrphanedByFault {
        /// Streams removed by [`Sim::kill_stream_at`].
        killed: Vec<StreamId>,
        /// `(stream, event)` pairs still blocked when the queue drained.
        blocked: Vec<(StreamId, EventId)>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(pairs) => {
                write!(f, "simulation deadlock; blocked streams: ")?;
                for (s, e) in pairs {
                    write!(f, "stream {} on event {}; ", s.0, e.0)?;
                }
                Ok(())
            }
            SimError::OrphanedByFault { killed, blocked } => {
                write!(f, "streams orphaned by injected faults; killed: ")?;
                for s in killed {
                    write!(f, "stream {}; ", s.0)?;
                }
                write!(f, "blocked: ")?;
                for (s, e) in blocked {
                    write!(f, "stream {} on event {}; ", s.0, e.0)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One fault that actually fired during a run, in firing order. Together
/// these form the run's fault timeline, which is deterministic for a given
/// program + [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Virtual time at which the fault took effect.
    pub at: SimTime,
    /// What the fault did.
    pub kind: FaultRecordKind,
}

/// The effect of a fired fault, referencing concrete simulator entities.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRecordKind {
    /// A link's capacity changed to `factor` × its healthy rate.
    LinkRate {
        /// The affected link.
        link: LinkId,
        /// Multiplier relative to the link's base rate.
        factor: f64,
    },
    /// A stream was permanently removed mid-run.
    StreamKilled {
        /// The killed stream.
        stream: StreamId,
    },
}

/// Aggregate results of a completed simulation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Virtual time at which the last operation finished.
    pub makespan: SimTime,
    /// Completion time of every tagged operation / marker, in completion order.
    pub tag_times: Vec<(Tag, SimTime)>,
    /// Per-stream total busy time (Compute + Transfer occupancy).
    pub stream_busy: Vec<SimTime>,
    /// Per-link total bytes moved.
    pub link_bytes: Vec<u64>,
    /// Execution spans (only populated after [`Sim::enable_tracing`]),
    /// recorded on the shared `mics-trace` layer under [`SIM_PROCESS`].
    pub trace: Trace,
    /// Stream names, parallel to stream indices (populated with tracing).
    pub stream_names: Vec<String>,
    /// Timeline of injected faults that fired, in firing order.
    pub faults: Vec<FaultRecord>,
    /// Streams killed by [`Sim::kill_stream_at`] before they finished.
    pub killed_streams: Vec<StreamId>,
}

impl RunStats {
    /// Completion time of the first occurrence of `tag`, if any.
    pub fn time_of(&self, tag: Tag) -> Option<SimTime> {
        self.tag_times.iter().find(|(t, _)| *t == tag).map(|(_, at)| *at)
    }
}

#[derive(Debug)]
enum StreamStatus {
    /// Ready to start its next op.
    Idle,
    /// An op is executing; completion is already scheduled.
    Running,
    /// Blocked in a `WaitEvent`.
    Blocked(EventId),
    /// Program exhausted.
    Finished,
    /// Removed mid-run by an injected fault; never resumes.
    Killed,
}

#[derive(Debug)]
struct StreamState {
    #[allow(dead_code)]
    name: String,
    program: Vec<Op>,
    pc: usize,
    status: StreamStatus,
    busy: SimTime,
    /// When the currently running op started (for busy accounting).
    op_started: SimTime,
}

#[derive(Debug)]
struct EventState {
    recorded: Option<SimTime>,
    waiters: Vec<StreamId>,
}

#[derive(Debug, Clone)]
struct ActiveTransfer {
    stream: StreamId,
    remaining: f64,
    tag: Option<Tag>,
}

#[derive(Debug)]
struct LinkState {
    #[allow(dead_code)]
    name: String,
    /// Current bytes per nanosecond (may differ from `base_rate` while a
    /// degradation fault is in effect).
    rate: f64,
    /// Healthy bytes per nanosecond, as configured by [`Sim::add_link`].
    base_rate: f64,
    active: Vec<ActiveTransfer>,
    last_update: SimTime,
    /// Invalidates stale completion-check events after membership changes.
    generation: u64,
    total_bytes: u64,
}

impl LinkState {
    /// Advance the fluid model to `now`, draining each active transfer at its
    /// fair share of the link rate.
    fn settle(&mut self, now: SimTime) {
        if self.active.is_empty() {
            self.last_update = now;
            return;
        }
        let dt = now.as_nanos().saturating_sub(self.last_update.as_nanos()) as f64;
        if dt > 0.0 {
            let share = self.rate / self.active.len() as f64;
            for t in &mut self.active {
                t.remaining -= share * dt;
            }
        }
        self.last_update = now;
    }

    /// Time until the next transfer would complete at current shares.
    fn next_completion_in(&self) -> Option<f64> {
        if self.active.is_empty() {
            return None;
        }
        let share = self.rate / self.active.len() as f64;
        self.active
            .iter()
            .map(|t| (t.remaining.max(0.0)) / share)
            .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.min(x))))
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Pending {
    OpComplete {
        stream: StreamId,
    },
    TransferLatencyDone {
        stream: StreamId,
        link: LinkId,
        bytes: u64,
        tag_bits: i128,
    },
    LinkCheck {
        link: LinkId,
        generation: u64,
    },
    /// Injected fault: set `link`'s rate to `base_rate * f64::from_bits(factor_bits)`.
    SetLinkRate {
        link: LinkId,
        factor_bits: u64,
    },
    /// Injected fault: permanently remove `stream`.
    KillStream {
        stream: StreamId,
    },
}

#[derive(Debug, PartialEq, Eq)]
struct Queued {
    at: SimTime,
    seq: u64,
    what: Pending,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event simulator. See the crate docs for an overview.
#[derive(Debug, Default)]
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    streams: Vec<StreamState>,
    events: Vec<EventState>,
    links: Vec<LinkState>,
    stats: RunStats,
    tracing: bool,
    /// Time of the last op completion / effective kill; fault events that
    /// fire after all work is done must not inflate the makespan.
    last_progress: SimTime,
}

/// Tolerance (in bytes) below which a fluid transfer counts as complete.
const EPS_BYTES: f64 = 1e-6;

impl Sim {
    /// Create an empty simulator at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record execution spans for chrome-trace export (small overhead; off
    /// by default).
    pub fn enable_tracing(&mut self) {
        self.tracing = true;
    }

    /// Register a stream. `name` is only used for diagnostics.
    pub fn add_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams.push(StreamState {
            name: name.into(),
            program: Vec::new(),
            pc: 0,
            status: StreamStatus::Idle,
            busy: SimTime::ZERO,
            op_started: SimTime::ZERO,
        });
        StreamId(self.streams.len() - 1)
    }

    /// Register a synchronization event.
    pub fn add_event(&mut self) -> EventId {
        self.events.push(EventState { recorded: None, waiters: Vec::new() });
        EventId(self.events.len() - 1)
    }

    /// Register a shared link with `bytes_per_sec` capacity.
    pub fn add_link(&mut self, name: impl Into<String>, bytes_per_sec: f64) -> LinkId {
        assert!(bytes_per_sec > 0.0, "link bandwidth must be positive");
        let rate = bytes_per_sec / 1e9; // bytes per nanosecond
        self.links.push(LinkState {
            name: name.into(),
            rate,
            base_rate: rate,
            active: Vec::new(),
            last_update: SimTime::ZERO,
            generation: 0,
            total_bytes: 0,
        });
        LinkId(self.links.len() - 1)
    }

    /// Schedule an injected fault: at virtual time `at`, `link` runs at
    /// `factor` × its healthy bandwidth (1.0 restores it). In-flight
    /// transfers are settled at the old rate up to `at` and drain at the new
    /// rate afterwards, so a degradation window slows a transfer piecewise.
    ///
    /// Factors below `1e-9` are clamped up to it: a fully dead NIC is
    /// modelled by killing the streams using it, not by a zero rate.
    pub fn set_link_rate_at(&mut self, link: LinkId, at: SimTime, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "rate factor must be positive");
        let factor = factor.max(1e-9);
        self.schedule(at, Pending::SetLinkRate { link, factor_bits: factor.to_bits() });
    }

    /// Schedule an injected fault: at virtual time `at`, `stream` is
    /// permanently removed (node crash / spot preemption). Its in-flight
    /// transfer is dropped from the link (surviving transfers speed up), its
    /// remaining program never runs, and events it would have recorded stay
    /// unrecorded — streams blocked on those surface as
    /// [`SimError::OrphanedByFault`].
    pub fn kill_stream_at(&mut self, stream: StreamId, at: SimTime) {
        self.schedule(at, Pending::KillStream { stream });
    }

    /// Append an operation to a stream's program. Programs may only be
    /// extended before [`Sim::run`] is called.
    pub fn push(&mut self, stream: StreamId, op: Op) {
        self.streams[stream.0].program.push(op);
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    fn schedule(&mut self, at: SimTime, what: Pending) {
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq: self.seq, what }));
    }

    /// Start the op at `pc` of `stream`, or advance through zero-time ops.
    fn kick(&mut self, stream: StreamId) {
        loop {
            let s = &mut self.streams[stream.0];
            if s.pc >= s.program.len() {
                s.status = StreamStatus::Finished;
                return;
            }
            let op = s.program[s.pc].clone();
            match op {
                Op::Compute { duration, .. } => {
                    s.status = StreamStatus::Running;
                    s.op_started = self.now;
                    let at = self.now + duration;
                    self.schedule(at, Pending::OpComplete { stream });
                    return;
                }
                Op::Transfer { link, bytes, latency, tag } => {
                    s.status = StreamStatus::Running;
                    s.op_started = self.now;
                    let tag_bits = tag.map_or(-1i128, |t| t.0 as i128);
                    if latency > SimTime::ZERO {
                        let at = self.now + latency;
                        self.schedule(
                            at,
                            Pending::TransferLatencyDone { stream, link, bytes, tag_bits },
                        );
                    } else {
                        self.join_link(stream, link, bytes, tag_bits);
                    }
                    return;
                }
                Op::RecordEvent(e) => {
                    s.pc += 1;
                    self.record_event(e);
                    // continue the loop to run subsequent zero-time ops
                }
                Op::WaitEvent(e) => {
                    if self.events[e.0].recorded.is_some() {
                        s.pc += 1;
                        // proceed
                    } else {
                        s.status = StreamStatus::Blocked(e);
                        self.events[e.0].waiters.push(stream);
                        return;
                    }
                }
                Op::Mark(tag) => {
                    s.pc += 1;
                    self.stats.tag_times.push((tag, self.now));
                }
            }
        }
    }

    fn record_event(&mut self, e: EventId) {
        let ev = &mut self.events[e.0];
        if ev.recorded.is_some() {
            // Re-recording is idempotent in this model.
            return;
        }
        ev.recorded = Some(self.now);
        let waiters = std::mem::take(&mut ev.waiters);
        for w in waiters {
            if let StreamStatus::Blocked(be) = self.streams[w.0].status {
                if be == e {
                    self.streams[w.0].status = StreamStatus::Idle;
                    self.streams[w.0].pc += 1;
                    self.kick(w);
                }
            }
        }
    }

    fn join_link(&mut self, stream: StreamId, link: LinkId, bytes: u64, tag_bits: i128) {
        let now = self.now;
        let l = &mut self.links[link.0];
        l.settle(now);
        l.total_bytes += bytes;
        let tag = if tag_bits >= 0 { Some(Tag(tag_bits as u64)) } else { None };
        l.active.push(ActiveTransfer { stream, remaining: bytes as f64, tag });
        l.generation += 1;
        self.reschedule_link(link);
    }

    fn reschedule_link(&mut self, link: LinkId) {
        let l = &self.links[link.0];
        if let Some(dt) = l.next_completion_in() {
            let at = self.now + SimTime::from_nanos(dt.ceil() as u64);
            let generation = l.generation;
            self.schedule(at, Pending::LinkCheck { link, generation });
        }
    }

    fn finish_op(&mut self, stream: StreamId, tag: Option<Tag>) {
        self.last_progress = self.now;
        let s = &mut self.streams[stream.0];
        s.busy += self.now - s.op_started;
        if self.tracing {
            let (label, bytes) = match &s.program[s.pc] {
                Op::Compute { .. } => ("compute", None),
                Op::Transfer { bytes, .. } => ("transfer", Some(*bytes)),
                _ => ("op", None),
            };
            let name = s.name.clone();
            let started = s.op_started;
            trace::record_span(&mut self.stats.trace, &name, label, started, self.now, bytes);
        }
        let s = &mut self.streams[stream.0];
        // Extract the tag from the op if the caller did not supply one.
        let op_tag = tag.or_else(|| match &s.program[s.pc] {
            Op::Compute { tag, .. } | Op::Transfer { tag, .. } => *tag,
            _ => None,
        });
        s.pc += 1;
        s.status = StreamStatus::Idle;
        if let Some(t) = op_tag {
            self.stats.tag_times.push((t, self.now));
        }
        self.kick(stream);
    }

    /// Apply a kill fault at the current virtual time.
    fn kill_now(&mut self, stream: StreamId) {
        let prior = std::mem::replace(&mut self.streams[stream.0].status, StreamStatus::Killed);
        match prior {
            StreamStatus::Finished => {
                // Killing a completed stream is a no-op.
                self.streams[stream.0].status = StreamStatus::Finished;
                return;
            }
            StreamStatus::Killed => return,
            StreamStatus::Running => {
                let now = self.now;
                let s = &mut self.streams[stream.0];
                s.busy += now - s.op_started;
                // Drop any in-flight transfer; survivors re-share the link.
                let mut touched = Vec::new();
                for (li, l) in self.links.iter_mut().enumerate() {
                    if l.active.iter().any(|t| t.stream == stream) {
                        l.settle(now);
                        let mut undelivered = 0.0;
                        l.active.retain(|t| {
                            if t.stream == stream {
                                undelivered += t.remaining.max(0.0);
                                false
                            } else {
                                true
                            }
                        });
                        l.total_bytes = l.total_bytes.saturating_sub(undelivered.round() as u64);
                        l.generation += 1;
                        touched.push(LinkId(li));
                    }
                }
                for li in touched {
                    self.reschedule_link(li);
                }
            }
            StreamStatus::Idle | StreamStatus::Blocked(_) => {}
        }
        self.last_progress = self.now;
        self.stats.killed_streams.push(stream);
        self.stats
            .faults
            .push(FaultRecord { at: self.now, kind: FaultRecordKind::StreamKilled { stream } });
    }

    fn handle(&mut self, what: Pending) {
        match what {
            Pending::OpComplete { stream } => {
                if matches!(self.streams[stream.0].status, StreamStatus::Killed) {
                    return; // op belonged to a stream that has since been killed
                }
                self.finish_op(stream, None);
            }
            Pending::TransferLatencyDone { stream, link, bytes, tag_bits } => {
                if matches!(self.streams[stream.0].status, StreamStatus::Killed) {
                    return;
                }
                self.join_link(stream, link, bytes, tag_bits);
            }
            Pending::SetLinkRate { link, factor_bits } => {
                let factor = f64::from_bits(factor_bits);
                let now = self.now;
                let l = &mut self.links[link.0];
                l.settle(now);
                l.rate = l.base_rate * factor;
                l.generation += 1;
                self.reschedule_link(link);
                self.stats.faults.push(FaultRecord {
                    at: now,
                    kind: FaultRecordKind::LinkRate { link, factor },
                });
            }
            Pending::KillStream { stream } => self.kill_now(stream),
            Pending::LinkCheck { link, generation } => {
                if self.links[link.0].generation != generation {
                    return; // stale
                }
                let now = self.now;
                self.links[link.0].settle(now);
                let mut finished = Vec::new();
                self.links[link.0].active.retain(|t| {
                    if t.remaining <= EPS_BYTES {
                        finished.push((t.stream, t.tag));
                        false
                    } else {
                        true
                    }
                });
                if !finished.is_empty() {
                    self.links[link.0].generation += 1;
                }
                self.reschedule_link(link);
                for (stream, tag) in finished {
                    self.finish_op(stream, tag);
                }
            }
        }
    }

    /// Execute all stream programs to completion.
    ///
    /// Returns [`SimError::Deadlock`] if any stream remains blocked on an
    /// event that is never recorded.
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        for i in 0..self.streams.len() {
            if matches!(self.streams[i].status, StreamStatus::Idle) {
                self.kick(StreamId(i));
            }
        }
        while let Some(Reverse(q)) = self.queue.pop() {
            debug_assert!(q.at >= self.now, "time went backwards");
            self.now = q.at;
            self.handle(q.what);
        }
        // All queue drained: check every stream finished (or was killed by an
        // injected fault, which counts as terminal for the stream itself).
        let mut blocked = Vec::new();
        let mut killed = Vec::new();
        for (i, s) in self.streams.iter().enumerate() {
            match s.status {
                StreamStatus::Finished => {}
                StreamStatus::Killed => killed.push(StreamId(i)),
                StreamStatus::Blocked(e) => blocked.push((StreamId(i), e)),
                _ => blocked.push((StreamId(i), EventId(usize::MAX))),
            }
        }
        if !blocked.is_empty() {
            return Err(if killed.is_empty() {
                SimError::Deadlock(blocked)
            } else {
                SimError::OrphanedByFault { killed, blocked }
            });
        }
        let mut stats = std::mem::take(&mut self.stats);
        stats.makespan = self.last_progress;
        stats.stream_busy = self.streams.iter().map(|s| s.busy).collect();
        stats.link_bytes = self.links.iter().map(|l| l.total_bytes).collect();
        if self.tracing {
            stats.stream_names = self.streams.iter().map(|s| s.name.clone()).collect();
        }
        Ok(stats)
    }

    /// Current virtual time (useful in tests between runs).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw(gb_per_s: f64) -> f64 {
        gb_per_s * 1e9
    }

    #[test]
    fn empty_sim_finishes_at_zero() {
        let mut sim = Sim::new();
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::ZERO);
    }

    #[test]
    fn single_compute_duration() {
        let mut sim = Sim::new();
        let s = sim.add_stream("c");
        sim.push(s, Op::compute(SimTime::from_millis(7)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_millis(7));
        assert_eq!(stats.stream_busy[0], SimTime::from_millis(7));
    }

    #[test]
    fn sequential_ops_on_one_stream_add_up() {
        let mut sim = Sim::new();
        let s = sim.add_stream("c");
        for _ in 0..5 {
            sim.push(s, Op::compute(SimTime::from_micros(100)));
        }
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_micros(500));
    }

    #[test]
    fn parallel_streams_overlap() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        sim.push(a, Op::compute(SimTime::from_millis(3)));
        sim.push(b, Op::compute(SimTime::from_millis(4)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_millis(4));
    }

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_rate() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0)); // 10 GB/s
        let s = sim.add_stream("comm");
        sim.push(s, Op::transfer(l, 1_000_000_000, SimTime::from_micros(50)));
        let stats = sim.run().unwrap();
        // 1 GB / 10 GB/s = 100 ms, + 50 us latency.
        assert_eq!(stats.makespan, SimTime::from_micros(100_050));
        assert_eq!(stats.link_bytes[0], 1_000_000_000);
    }

    #[test]
    fn two_transfers_share_link_bandwidth() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        sim.push(a, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        sim.push(b, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        let stats = sim.run().unwrap();
        // Both share 10 GB/s: each effectively gets 5 GB/s → 200 ms.
        assert_eq!(stats.makespan, SimTime::from_millis(200));
    }

    #[test]
    fn unequal_transfers_fair_share_piecewise() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        sim.push(a, Op::transfer(l, 500_000_000, SimTime::ZERO));
        sim.push(b, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        let stats = sim.run().unwrap();
        // Phase 1: both at 5 GB/s until A (0.5 GB) finishes at t=100ms.
        // B has 0.5 GB left, now alone at 10 GB/s → finishes at 150 ms.
        assert_eq!(stats.makespan, SimTime::from_millis(150));
    }

    #[test]
    fn staggered_join_slows_existing_transfer() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        sim.push(a, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        // B starts 50 ms in (modelled with compute before the transfer).
        sim.push(b, Op::compute(SimTime::from_millis(50)));
        sim.push(b, Op::transfer(l, 250_000_000, SimTime::ZERO));
        let stats = sim.run().unwrap();
        // A alone: 0.5 GB done by t=50ms. Then both at 5 GB/s. B (0.25 GB)
        // finishes at t=100ms; A has 0.25 GB left, alone → 125 ms.
        assert_eq!(stats.makespan, SimTime::from_millis(125));
    }

    #[test]
    fn event_orders_cross_stream_work() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        let e = sim.add_event();
        sim.push(a, Op::compute(SimTime::from_millis(10)));
        sim.push(a, Op::RecordEvent(e));
        sim.push(b, Op::WaitEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(1)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_millis(11));
    }

    #[test]
    fn wait_after_record_does_not_block() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        let e = sim.add_event();
        sim.push(a, Op::RecordEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(5)));
        sim.push(b, Op::WaitEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(5)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_millis(10));
    }

    #[test]
    fn deadlock_detected() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        let e = sim.add_event();
        sim.push(a, Op::WaitEvent(e));
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::Deadlock(vec![(StreamId(0), EventId(0))]));
    }

    #[test]
    fn tags_capture_completion_times() {
        let mut sim = Sim::new();
        let s = sim.add_stream("c");
        sim.push(s, Op::Compute { duration: SimTime::from_millis(2), tag: Some(Tag(7)) });
        sim.push(s, Op::Mark(Tag(8)));
        sim.push(s, Op::compute(SimTime::from_millis(3)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.time_of(Tag(7)), Some(SimTime::from_millis(2)));
        assert_eq!(stats.time_of(Tag(8)), Some(SimTime::from_millis(2)));
        assert_eq!(stats.makespan, SimTime::from_millis(5));
    }

    #[test]
    fn tagged_transfer_reports_completion() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(1.0));
        let s = sim.add_stream("comm");
        sim.push(
            s,
            Op::Transfer { link: l, bytes: 1_000_000, latency: SimTime::ZERO, tag: Some(Tag(42)) },
        );
        let stats = sim.run().unwrap();
        assert_eq!(stats.time_of(Tag(42)), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn determinism_two_identical_runs() {
        let build = || {
            let mut sim = Sim::new();
            let l = sim.add_link("nic", bw(10.0));
            let nv = sim.add_link("nv", bw(100.0));
            for i in 0..8 {
                let c = sim.add_stream(format!("c{i}"));
                let m = sim.add_stream(format!("m{i}"));
                let e = sim.add_event();
                sim.push(m, Op::transfer(l, 10_000_000 * (i as u64 + 1), SimTime::from_micros(15)));
                sim.push(m, Op::transfer(nv, 50_000_000, SimTime::from_micros(2)));
                sim.push(m, Op::RecordEvent(e));
                sim.push(c, Op::compute(SimTime::from_micros(700)));
                sim.push(c, Op::WaitEvent(e));
                sim.push(c, Op::compute(SimTime::from_micros(300)));
            }
            sim.run().unwrap()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1.makespan, s2.makespan);
        assert_eq!(s1.tag_times, s2.tag_times);
        assert_eq!(s1.stream_busy, s2.stream_busy);
    }

    #[test]
    fn many_streams_on_one_link_aggregate_throughput_constant() {
        // n concurrent equal transfers take exactly n * t_single.
        for n in [1usize, 2, 4, 8] {
            let mut sim = Sim::new();
            let l = sim.add_link("nic", bw(10.0));
            for i in 0..n {
                let s = sim.add_stream(format!("s{i}"));
                sim.push(s, Op::transfer(l, 100_000_000, SimTime::ZERO));
            }
            let stats = sim.run().unwrap();
            assert_eq!(stats.makespan, SimTime::from_millis(10 * n as u64), "n = {n}");
        }
    }

    #[test]
    fn link_degradation_slows_transfer_piecewise() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let s = sim.add_stream("comm");
        sim.push(s, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        sim.set_link_rate_at(l, SimTime::from_millis(50), 0.5);
        let stats = sim.run().unwrap();
        // 0.5 GB done at full rate by t=50ms; remaining 0.5 GB at 5 GB/s
        // takes another 100 ms.
        assert_eq!(stats.makespan, SimTime::from_millis(150));
        assert_eq!(
            stats.faults,
            vec![FaultRecord {
                at: SimTime::from_millis(50),
                kind: FaultRecordKind::LinkRate { link: l, factor: 0.5 },
            }]
        );
    }

    #[test]
    fn link_restore_ends_degradation_window() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let s = sim.add_stream("comm");
        sim.push(s, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        sim.set_link_rate_at(l, SimTime::from_millis(50), 0.5);
        sim.set_link_rate_at(l, SimTime::from_millis(100), 1.0);
        let stats = sim.run().unwrap();
        // 0.5 GB by 50ms, +0.25 GB during the slow window, remaining
        // 0.25 GB at 10 GB/s → 125 ms.
        assert_eq!(stats.makespan, SimTime::from_millis(125));
        assert_eq!(stats.faults.len(), 2);
    }

    #[test]
    fn killed_stream_releases_its_link_share() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        sim.push(a, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        sim.push(b, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        sim.kill_stream_at(b, SimTime::from_millis(50));
        let stats = sim.run().unwrap();
        // Shared until 50ms (0.25 GB each); A then alone with 0.75 GB left
        // at 10 GB/s → 125 ms total.
        assert_eq!(stats.makespan, SimTime::from_millis(125));
        assert_eq!(stats.killed_streams, vec![b]);
        // Link accounting only counts bytes actually delivered: A's full
        // 1 GB plus the 0.25 GB B moved before dying.
        assert_eq!(stats.link_bytes[0], 1_250_000_000);
    }

    #[test]
    fn kill_orphans_event_waiters() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        let e = sim.add_event();
        sim.push(a, Op::compute(SimTime::from_millis(10)));
        sim.push(a, Op::RecordEvent(e));
        sim.push(b, Op::WaitEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(1)));
        sim.kill_stream_at(a, SimTime::from_millis(5));
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::OrphanedByFault { killed: vec![a], blocked: vec![(b, e)] });
    }

    #[test]
    fn faults_after_completion_do_not_inflate_makespan() {
        let mut sim = Sim::new();
        let l = sim.add_link("nic", bw(10.0));
        let s = sim.add_stream("comm");
        sim.push(s, Op::transfer(l, 1_000_000_000, SimTime::ZERO));
        sim.set_link_rate_at(l, SimTime::from_millis(500), 0.1);
        sim.kill_stream_at(s, SimTime::from_millis(600));
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_millis(100));
        assert!(stats.killed_streams.is_empty(), "finished streams cannot be killed");
    }

    #[test]
    fn fault_plan_driven_run_is_deterministic() {
        let build = || {
            let plan = FaultPlan::new(1234)
                .with_jitter(0, SimTime::from_millis(20), SimTime::from_millis(200), 0.3)
                .with_crash(1, SimTime::from_millis(60));
            let mut sim = Sim::new();
            let l = sim.add_link("nic", bw(10.0));
            let mut streams = Vec::new();
            for i in 0..4 {
                let s = sim.add_stream(format!("s{i}"));
                sim.push(s, Op::transfer(l, 400_000_000, SimTime::from_micros(10)));
                streams.push(s);
            }
            for ev in plan.events() {
                match ev.kind {
                    FaultKind::Crash => sim.kill_stream_at(streams[ev.node + 1], ev.at),
                    FaultKind::NicDegrade { factor } => sim.set_link_rate_at(l, ev.at, factor),
                    FaultKind::NicRestore => sim.set_link_rate_at(l, ev.at, 1.0),
                    FaultKind::Return => {}
                }
            }
            sim.run().unwrap()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1.makespan, s2.makespan);
        assert_eq!(s1.faults, s2.faults);
        assert_eq!(s1.killed_streams, s2.killed_streams);
        assert_eq!(s1.stream_busy, s2.stream_busy);
        assert!(!s1.faults.is_empty());
        assert_eq!(s1.killed_streams.len(), 1);
    }

    #[test]
    fn busy_time_excludes_blocked_time() {
        let mut sim = Sim::new();
        let a = sim.add_stream("a");
        let b = sim.add_stream("b");
        let e = sim.add_event();
        sim.push(a, Op::compute(SimTime::from_millis(10)));
        sim.push(a, Op::RecordEvent(e));
        sim.push(b, Op::WaitEvent(e));
        sim.push(b, Op::compute(SimTime::from_millis(2)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.stream_busy[1], SimTime::from_millis(2));
    }
}
