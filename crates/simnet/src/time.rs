//! Integer virtual time for the simulator.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) virtual time, in whole nanoseconds.
///
/// Integer representation keeps the simulator deterministic: adding durations
/// is exact and ordering never depends on floating-point rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / the zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from a floating-point number of seconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round() as u64)
    }

    /// Value in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn float_clamps_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(1);
        assert_eq!(a + b, SimTime::from_millis(4));
        assert_eq!(a - b, SimTime::from_millis(2));
        assert_eq!(a * 2, SimTime::from_millis(6));
        assert_eq!(a / 3, SimTime::from_millis(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_millis).sum();
        assert_eq!(total, SimTime::from_millis(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }
}
