//! Seeded, deterministic fault plans: the "unreliable public cloud" input to
//! a simulation.
//!
//! MiCS's setting is the public cloud, where NICs degrade, bandwidth
//! jitters, and spot instances vanish mid-run. A [`FaultPlan`] is a
//! schedule of such faults against abstract *node* indices, generated from
//! an explicit seed so that every run of the same plan produces the same
//! fault timeline (and therefore identical recovery statistics — an
//! acceptance requirement for the recovery experiments).
//!
//! The plan itself is topology-agnostic: it speaks of node indices and
//! relative NIC capacity factors. `mics-cluster` maps a plan onto concrete
//! [`crate::LinkId`]s / [`crate::StreamId`]s of a built fabric, and
//! `mics-core` interprets crashes against executor state.

use crate::SimTime;

/// One scheduled fault against a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault takes effect.
    pub at: SimTime,
    /// Index of the affected node.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node is permanently lost (spot preemption, hardware death).
    Crash,
    /// The node's NIC drops to `factor` × its healthy bandwidth (transient
    /// congestion, flapping link, noisy neighbour).
    NicDegrade {
        /// Multiplier in `(0, 1]` applied to the healthy NIC rate.
        factor: f64,
    },
    /// The node's NIC returns to its healthy bandwidth.
    NicRestore,
    /// The node slot's capacity is available again after a preemption — the
    /// spot market handed the instance type back, and an elastic job may
    /// re-admit the slot (grow). Only meaningful after a `Crash` of the
    /// same slot.
    Return,
}

/// A deterministic, seeded schedule of faults. Builders may be chained; the
/// event list is kept sorted by time (ties keep insertion order).
///
/// ```
/// use mics_simnet::{FaultPlan, SimTime};
///
/// let plan = FaultPlan::new(42)
///     .with_degradation(1, SimTime::from_millis(10), SimTime::from_millis(5), 0.25)
///     .with_crash(3, SimTime::from_millis(40));
/// assert_eq!(plan.events().len(), 3); // degrade + restore + crash
/// assert_eq!(plan, FaultPlan::new(42)
///     .with_degradation(1, SimTime::from_millis(10), SimTime::from_millis(5), 0.25)
///     .with_crash(3, SimTime::from_millis(40)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Consumed by the seeded builders so that chaining two generators on
    /// one plan yields independent (but still deterministic) draws.
    rng_state: u64,
    events: Vec<FaultEvent>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `(0, 1]` — safe as an argument to `ln`.
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

impl FaultPlan {
    /// An empty plan whose seeded generators derive from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rng_state: seed ^ 0xA076_1D64_78BD_642F, events: Vec::new() }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
        // Stable: equal-time events keep insertion order.
        self.events.sort_by_key(|e| e.at);
    }

    /// Schedule a permanent node loss at `at`.
    pub fn with_crash(mut self, node: usize, at: SimTime) -> Self {
        self.push(FaultEvent { at, node, kind: FaultKind::Crash });
        self
    }

    /// Schedule a transient NIC-degradation window: from `start` for
    /// `duration`, the node's NIC runs at `factor` × healthy bandwidth.
    pub fn with_degradation(
        mut self,
        node: usize,
        start: SimTime,
        duration: SimTime,
        factor: f64,
    ) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "degradation factor must be in (0, 1]");
        assert!(duration > SimTime::ZERO, "degradation window must have positive duration");
        self.push(FaultEvent { at: start, node, kind: FaultKind::NicDegrade { factor } });
        self.push(FaultEvent { at: start + duration, node, kind: FaultKind::NicRestore });
        self
    }

    /// Seeded bandwidth jitter: every `period` until `horizon`, the node's
    /// NIC capacity is redrawn uniformly from `[min_factor, 1]`, with a
    /// restore at `horizon`. Models the noisy-neighbour variability of
    /// shared cloud networks.
    pub fn with_jitter(
        mut self,
        node: usize,
        period: SimTime,
        horizon: SimTime,
        min_factor: f64,
    ) -> Self {
        assert!(period > SimTime::ZERO, "jitter period must be positive");
        assert!((0.0..=1.0).contains(&min_factor), "min_factor must be in [0, 1]");
        let mut at = SimTime::ZERO;
        while at < horizon {
            let factor = min_factor + unit_open(&mut self.rng_state) * (1.0 - min_factor);
            let factor = factor.max(f64::MIN_POSITIVE);
            self.push(FaultEvent { at, node, kind: FaultKind::NicDegrade { factor } });
            at += period;
        }
        self.push(FaultEvent { at: horizon, node, kind: FaultKind::NicRestore });
        self
    }

    /// Seeded Poisson crash process over `nodes` nodes: crash inter-arrival
    /// times are exponential with mean `mean_between`, victims are drawn
    /// uniformly among still-alive nodes, until `horizon` or until every
    /// node is dead.
    pub fn with_poisson_crashes(
        mut self,
        nodes: usize,
        mean_between: SimTime,
        horizon: SimTime,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(mean_between > SimTime::ZERO, "mean inter-arrival must be positive");
        let mut alive: Vec<usize> = (0..nodes).collect();
        let mut at = SimTime::ZERO;
        loop {
            let gap = -unit_open(&mut self.rng_state).ln() * mean_between.as_nanos() as f64;
            at += SimTime::from_nanos(gap.ceil() as u64);
            if at >= horizon || alive.is_empty() {
                break;
            }
            let victim = alive.remove(splitmix64(&mut self.rng_state) as usize % alive.len());
            self.push(FaultEvent { at, node: victim, kind: FaultKind::Crash });
        }
        self
    }

    /// Like [`FaultPlan::with_poisson_crashes`], but assumes every failed
    /// node is replaced by a fresh instance, so the same node *slot* can
    /// fail again — the right trace for recovery experiments, where the
    /// process never exhausts.
    pub fn with_replaced_poisson_crashes(
        mut self,
        nodes: usize,
        mean_between: SimTime,
        horizon: SimTime,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(mean_between > SimTime::ZERO, "mean inter-arrival must be positive");
        let mut at = SimTime::ZERO;
        loop {
            let gap = -unit_open(&mut self.rng_state).ln() * mean_between.as_nanos() as f64;
            at += SimTime::from_nanos(gap.ceil() as u64);
            if at >= horizon {
                break;
            }
            let victim = (splitmix64(&mut self.rng_state) as usize) % nodes;
            self.push(FaultEvent { at, node: victim, kind: FaultKind::Crash });
        }
        self
    }

    /// Seeded spot-market trace with capacity return: preemptions arrive as
    /// a Poisson process with mean `mean_between` over the currently-held
    /// slots; a preempted slot's capacity comes back (`FaultKind::Return`)
    /// after an exponential outage of mean `mean_outage`, and can then be
    /// preempted again. This is the elastic-training input: a `Crash` is a
    /// shrink opportunity, a `Return` a grow opportunity.
    pub fn with_spot_trace(
        mut self,
        nodes: usize,
        mean_between: SimTime,
        mean_outage: SimTime,
        horizon: SimTime,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(mean_between > SimTime::ZERO, "mean inter-arrival must be positive");
        assert!(mean_outage > SimTime::ZERO, "mean outage must be positive");
        // Per slot: when its capacity is next available (None = held now).
        let mut back_at: Vec<Option<SimTime>> = vec![None; nodes];
        let mut at = SimTime::ZERO;
        loop {
            let gap = -unit_open(&mut self.rng_state).ln() * mean_between.as_nanos() as f64;
            at += SimTime::from_nanos(gap.ceil() as u64);
            if at >= horizon {
                break;
            }
            // Slots whose outage ended before this arrival have returned.
            let held: Vec<usize> = (0..nodes)
                .filter(|&s| match back_at[s] {
                    None => true,
                    Some(b) => b <= at,
                })
                .collect();
            if held.is_empty() {
                continue;
            }
            let victim = held[splitmix64(&mut self.rng_state) as usize % held.len()];
            let outage = -unit_open(&mut self.rng_state).ln() * mean_outage.as_nanos() as f64;
            let back = at + SimTime::from_nanos(outage.ceil().max(1.0) as u64);
            self.push(FaultEvent { at, node: victim, kind: FaultKind::Crash });
            if back < horizon {
                self.push(FaultEvent { at: back, node: victim, kind: FaultKind::Return });
            }
            back_at[victim] = Some(back);
        }
        self
    }

    /// Merge every event of `other` into this plan (time order preserved).
    /// Lets callers compose independently seeded concerns — e.g. a jitter
    /// profile and a spot-preemption trace built from different seeds.
    pub fn with_plan(mut self, other: &FaultPlan) -> Self {
        for ev in other.events() {
            self.push(*ev);
        }
        self
    }

    /// The schedule, sorted by time (equal times in insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Crash events only, as `(time, node)` pairs in schedule order.
    pub fn crashes(&self) -> Vec<(SimTime, usize)> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Crash))
            .map(|e| (e.at, e.node))
            .collect()
    }

    /// Capacity-return events only, as `(time, node)` pairs in schedule
    /// order.
    pub fn returns(&self) -> Vec<(SimTime, usize)> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Return))
            .map(|e| (e.at, e.node))
            .collect()
    }

    /// A stable 64-bit digest of the full timeline, for asserting that two
    /// runs produced identical fault schedules.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for e in &self.events {
            mix(e.at.as_nanos());
            mix(e.node as u64);
            match e.kind {
                FaultKind::Crash => mix(1),
                FaultKind::NicDegrade { factor } => {
                    mix(2);
                    mix(factor.to_bits());
                }
                FaultKind::NicRestore => mix(3),
                FaultKind::Return => mix(4),
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_sorted_by_time() {
        let plan = FaultPlan::new(1).with_crash(2, SimTime::from_millis(30)).with_degradation(
            0,
            SimTime::from_millis(5),
            SimTime::from_millis(10),
            0.5,
        );
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn same_seed_same_timeline() {
        let build = |seed| {
            FaultPlan::new(seed)
                .with_jitter(0, SimTime::from_millis(10), SimTime::from_millis(100), 0.3)
                .with_poisson_crashes(8, SimTime::from_millis(200), SimTime::from_secs(2))
        };
        let a = build(7);
        let b = build(7);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = build(8);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn jitter_factors_are_bounded_and_restored() {
        let plan = FaultPlan::new(3).with_jitter(
            1,
            SimTime::from_millis(10),
            SimTime::from_millis(50),
            0.4,
        );
        let mut degrades = 0;
        for e in plan.events() {
            assert_eq!(e.node, 1);
            match e.kind {
                FaultKind::NicDegrade { factor } => {
                    degrades += 1;
                    assert!((0.4..=1.0).contains(&factor), "factor {factor}");
                }
                FaultKind::NicRestore => assert_eq!(e.at, SimTime::from_millis(50)),
                FaultKind::Crash | FaultKind::Return => panic!("jitter must not crash nodes"),
            }
        }
        assert_eq!(degrades, 5);
    }

    #[test]
    fn poisson_crashes_each_node_at_most_once() {
        let plan = FaultPlan::new(11).with_poisson_crashes(
            4,
            SimTime::from_millis(1),
            SimTime::from_secs(10),
        );
        let crashes = plan.crashes();
        assert!(crashes.len() <= 4);
        let mut nodes: Vec<usize> = crashes.iter().map(|&(_, n)| n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), crashes.len(), "no node crashes twice");
        // With mean 1 ms over 10 s, all four nodes die almost surely.
        assert_eq!(crashes.len(), 4);
    }

    #[test]
    fn spot_trace_pairs_every_crash_with_a_later_return() {
        let horizon = SimTime::from_secs(100);
        let plan = FaultPlan::new(9).with_spot_trace(
            4,
            SimTime::from_secs(5),
            SimTime::from_secs(3),
            horizon,
        );
        let crashes = plan.crashes();
        let returns = plan.returns();
        assert!(!crashes.is_empty(), "100 s at 5 s MTBF must preempt");
        // Every return follows a crash of the same slot; at most the last
        // outage per slot may extend past the horizon unreturned.
        assert!(returns.len() <= crashes.len());
        assert!(crashes.len() - returns.len() <= 4);
        for &(back, node) in &returns {
            assert!(
                crashes.iter().any(|&(at, n)| n == node && at < back),
                "return of node {node} at {back:?} has no preceding crash"
            );
            assert!(back < horizon);
        }
        // A slot never crashes while its capacity is away.
        let mut away: Vec<Option<SimTime>> = vec![None; 4];
        for e in plan.events() {
            match e.kind {
                FaultKind::Crash => {
                    if let Some(b) = away[e.node] {
                        assert!(e.at >= b, "node {} preempted while away", e.node);
                    }
                    away[e.node] = Some(SimTime::from_nanos(u64::MAX));
                }
                FaultKind::Return => away[e.node] = Some(e.at),
                _ => {}
            }
        }
    }

    #[test]
    fn spot_trace_is_seed_deterministic() {
        let build = |seed| {
            FaultPlan::new(seed).with_spot_trace(
                8,
                SimTime::from_secs(10),
                SimTime::from_secs(4),
                SimTime::from_secs(500),
            )
        };
        assert_eq!(build(3), build(3));
        assert_ne!(build(3).fingerprint(), build(4).fingerprint());
    }

    #[test]
    fn poisson_rate_scales_with_mean() {
        let count = |mean_ms: u64| {
            FaultPlan::new(5)
                .with_poisson_crashes(1000, SimTime::from_millis(mean_ms), SimTime::from_secs(1))
                .crashes()
                .len()
        };
        let fast = count(10); // ~100 expected
        let slow = count(100); // ~10 expected
        assert!(fast > slow * 3, "fast {fast} vs slow {slow}");
    }
}
