//! Parameter-sharding arithmetic shared across the workspace.

/// Describes how a flat buffer of `numel` elements is partitioned across `p`
/// shards (one per partition-group member), ZeRO/MiCS style: equal shards
/// with zero-padding at the tail so every shard has the same length.
///
/// ```
/// use mics_tensor::ShardSpec;
/// let spec = ShardSpec::new(10, 4);
/// assert_eq!(spec.shard_len(), 3);           // ceil(10 / 4)
/// assert_eq!(spec.range(3), 9..10);          // ragged tail
/// let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
/// assert_eq!(spec.extract_padded(&data, 3), vec![9.0, 0.0, 0.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    numel: usize,
    shards: usize,
}

impl ShardSpec {
    /// Partition `numel` elements into `shards` equal pieces.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(numel: usize, shards: usize) -> Self {
        assert!(shards > 0, "must have at least one shard");
        ShardSpec { numel, shards }
    }

    /// Unpadded total element count.
    pub fn numel(&self) -> usize {
        self.numel
    }

    /// Number of shards (`p`).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Elements per shard, including padding (`ceil(numel / shards)`).
    pub fn shard_len(&self) -> usize {
        self.numel.div_ceil(self.shards)
    }

    /// Padded total length (`shard_len × shards`).
    pub fn padded_len(&self) -> usize {
        self.shard_len() * self.shards
    }

    /// The half-open element range `[start, end)` of shard `i`, clamped to
    /// the unpadded length (the final shard may be short or empty).
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        assert!(shard < self.shards, "shard {shard} out of range");
        let len = self.shard_len();
        let start = (shard * len).min(self.numel);
        let end = ((shard + 1) * len).min(self.numel);
        start..end
    }

    /// Which shard owns element `idx`.
    pub fn owner_of(&self, idx: usize) -> usize {
        assert!(idx < self.numel, "element {idx} out of range");
        idx / self.shard_len()
    }

    /// Extract shard `i` of `data`, padded with zeros to `shard_len`.
    pub fn extract_padded(&self, data: &[f32], shard: usize) -> Vec<f32> {
        assert_eq!(data.len(), self.numel, "data length mismatch");
        let mut out = vec![0.0; self.shard_len()];
        let r = self.range(shard);
        out[..r.len()].copy_from_slice(&data[r]);
        out
    }

    /// Reassemble the full unpadded buffer from per-shard padded pieces.
    pub fn assemble(&self, shards: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(shards.len(), self.shards, "wrong number of shards");
        let mut out = Vec::with_capacity(self.numel);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.len(), self.shard_len(), "shard {i} has wrong length");
            let r = self.range(i);
            out.extend_from_slice(&s[..r.len()]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split() {
        let s = ShardSpec::new(16, 4);
        assert_eq!(s.shard_len(), 4);
        assert_eq!(s.padded_len(), 16);
        assert_eq!(s.range(0), 0..4);
        assert_eq!(s.range(3), 12..16);
    }

    #[test]
    fn ragged_split_pads_tail() {
        let s = ShardSpec::new(10, 4);
        assert_eq!(s.shard_len(), 3);
        assert_eq!(s.padded_len(), 12);
        assert_eq!(s.range(3), 9..10);
        let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let last = s.extract_padded(&data, 3);
        assert_eq!(last, vec![9.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_final_shard() {
        // 4 elements over 8 shards: shard_len 1, shards 4..8 are empty.
        let s = ShardSpec::new(4, 8);
        assert_eq!(s.range(5), 4..4);
        let data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.extract_padded(&data, 5), vec![0.0]);
    }

    #[test]
    fn owner_of_matches_range() {
        let s = ShardSpec::new(100, 7);
        for idx in 0..100 {
            let o = s.owner_of(idx);
            assert!(s.range(o).contains(&idx));
        }
    }

    proptest! {
        #[test]
        fn extract_then_assemble_roundtrips(numel in 1usize..500, shards in 1usize..17) {
            let spec = ShardSpec::new(numel, shards);
            let data: Vec<f32> = (0..numel).map(|i| i as f32 * 0.5 - 3.0).collect();
            let pieces: Vec<Vec<f32>> =
                (0..shards).map(|i| spec.extract_padded(&data, i)).collect();
            prop_assert_eq!(spec.assemble(&pieces), data);
        }

        #[test]
        fn ranges_tile_without_overlap(numel in 0usize..500, shards in 1usize..17) {
            let spec = ShardSpec::new(numel, shards);
            let mut covered = 0usize;
            for i in 0..shards {
                let r = spec.range(i);
                prop_assert_eq!(r.start, covered.min(numel));
                covered = r.end;
            }
            prop_assert_eq!(covered, numel);
        }
    }
}
