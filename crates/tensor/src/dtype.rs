//! Numeric element types used by the training stack.

/// Element type of a buffer. Mixed-precision training (the paper's default
/// setup) keeps fp16 parameters/gradients and fp32 optimizer states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE 754 half precision (storage only; math is done in f32).
    F16,
    /// IEEE 754 single precision.
    F32,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
        }
    }
}

/// Lossy conversion of an `f32` to IEEE 754 binary16, returned as its bit
/// pattern. Used by the mini-DL stack to emulate mixed-precision casts
/// deterministically (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN
        let mantissa = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | mantissa;
    }
    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal half.
        let half_exp = (unbiased + 15) as u32;
        let mut half_frac = frac >> 13;
        // Round to nearest even on the dropped 13 bits.
        let round_bits = frac & 0x1fff;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half_frac & 1) == 1) {
            half_frac += 1;
            if half_frac == 0x400 {
                // Mantissa overflowed into the exponent.
                return sign | (((half_exp + 1) as u16) << 10).min(0x7c00);
            }
        }
        sign | ((half_exp as u16) << 10) | half_frac as u16
    } else if unbiased >= -24 {
        // Subnormal half.
        let shift = (-14 - unbiased) as u32;
        let full_frac = frac | 0x0080_0000; // implicit leading 1
        let shifted = full_frac >> (13 + shift);
        let round_mask = 1u32 << (12 + shift);
        let rem = full_frac & ((round_mask << 1) - 1);
        let mut half_frac = shifted;
        if rem > round_mask || (rem == round_mask && (half_frac & 1) == 1) {
            half_frac += 1;
        }
        sign | half_frac as u16
    } else {
        sign // underflow → signed zero
    }
}

/// Exact conversion of an IEEE 754 binary16 bit pattern to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    let bits = if exp == 0x1f {
        // Inf / NaN
        sign | 0x7f80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign // zero
        } else {
            // Subnormal: value = frac × 2⁻²⁴. Normalize the mantissa.
            let mut e = -14i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            f &= 0x3ff;
            let exp32 = (e + 127) as u32;
            sign | (exp32 << 23) | (f << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Round-trip an `f32` through half precision (the core mixed-precision
/// quantization step).
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F32.size_bytes(), 4);
    }

    #[test]
    fn exact_halves_roundtrip() {
        for x in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.000061035156] {
            assert_eq!(quantize_f16(x), x, "{x} should be exactly representable");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(quantize_f16(1e6).is_infinite());
        assert!(quantize_f16(-1e6).is_infinite());
        assert!(quantize_f16(-1e6) < 0.0);
    }

    #[test]
    fn tiny_values_flush_to_zero() {
        assert_eq!(quantize_f16(1e-10), 0.0);
        assert_eq!(quantize_f16(-1e-10), 0.0);
        assert!(quantize_f16(-1e-10).is_sign_negative());
    }

    #[test]
    fn nan_stays_nan() {
        assert!(quantize_f16(f32::NAN).is_nan());
    }

    #[test]
    fn subnormals_roundtrip_through_bits() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = f16_bits_to_f32(1);
        assert_eq!(tiny, 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(tiny), 1);
    }

    #[test]
    fn rounding_is_to_nearest() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next half;
        // round-to-even keeps 1.0.
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(quantize_f16(x), 1.0);
        // Slightly above the midpoint rounds up.
        let y = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-13);
        assert_eq!(quantize_f16(y), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn quantization_error_bounded() {
        let mut x = -8.0f32;
        while x < 8.0 {
            let q = quantize_f16(x);
            let rel = if x != 0.0 { ((q - x) / x).abs() } else { q.abs() };
            assert!(rel <= 1.0 / 1024.0, "x={x} q={q} rel={rel}");
            x += 0.0137;
        }
    }
}
