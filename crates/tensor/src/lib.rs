//! Buffer substrate for the MiCS reproduction: numeric dtypes, parameter
//! sharding math, and device-memory allocators.
//!
//! Two allocators model the §4 "memory defragmentation" story:
//!
//! * [`DynamicAllocator`] behaves like a generic caching allocator (PyTorch's
//!   default): a first-fit free list over a flat address space. Repeated
//!   gather/partition cycles interleave short- and long-lived blocks and
//!   *fragment* it — a large contiguous request can fail even though enough
//!   total memory is free. That is precisely the OOM mode the paper
//!   attributes to DeepSpeed's partial solution.
//! * [`ArenaAllocator`] behaves like MiCS: contiguous pools for partitioned
//!   parameters, partitioned gradients, and temporary buffers are reserved
//!   up front and proactively reused, so fragmentation cannot occur.
//!
//! [`ShardSpec`] centralizes the "which rank owns which slice" arithmetic
//! shared by the real data plane, the mini-DL training loops, and the
//! simulator executors.

#![warn(missing_docs)]

mod alloc;
pub mod dtype;
mod shard;

pub use alloc::{AllocError, AllocStats, ArenaAllocator, BlockId, DynamicAllocator, GatherBuffers};
pub use dtype::{quantize_f16, DType};
pub use shard::ShardSpec;
