//! Device-memory allocators: a fragmenting dynamic allocator (the baseline's
//! failure mode) and a pre-allocated arena (MiCS's fix). Paper §4, "Memory
//! defragmentation".

use std::collections::BTreeMap;
use std::fmt;

/// Handle to a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(u64);

/// Why an allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough total free memory.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes free in total.
        free: u64,
    },
    /// Enough total memory is free, but no contiguous block fits — the
    /// fragmentation OOM the paper describes.
    Fragmented {
        /// Bytes requested.
        requested: u64,
        /// Bytes free in total.
        free: u64,
        /// Largest contiguous free block.
        largest: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} B, {free} B free")
            }
            AllocError::Fragmented { requested, free, largest } => write!(
                f,
                "fragmentation OOM: requested {requested} B, {free} B free but \
                 largest contiguous block is {largest} B"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Usage statistics of an allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes currently allocated.
    pub in_use: u64,
    /// Bytes free.
    pub free: u64,
    /// Largest contiguous free block.
    pub largest_free: u64,
    /// High-water mark of `in_use`.
    pub peak_in_use: u64,
}

impl AllocStats {
    /// External fragmentation in `[0, 1]`: the fraction of free memory that
    /// is unusable for a single maximal request.
    pub fn fragmentation(&self) -> f64 {
        if self.free == 0 {
            0.0
        } else {
            1.0 - self.largest_free as f64 / self.free as f64
        }
    }
}

/// A first-fit free-list allocator over a flat `capacity`-byte address
/// space, emulating a generic caching allocator. Interleaving long-lived
/// shard buffers with short-lived gathered-parameter buffers fragments it.
#[derive(Debug)]
pub struct DynamicAllocator {
    capacity: u64,
    /// Free extents: start → length, non-adjacent (merged on free).
    free: BTreeMap<u64, u64>,
    /// Live blocks: id → (start, length).
    live: BTreeMap<u64, (u64, u64)>,
    next_id: u64,
    in_use: u64,
    peak: u64,
}

impl DynamicAllocator {
    /// Create an allocator managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        DynamicAllocator { capacity, free, live: BTreeMap::new(), next_id: 0, in_use: 0, peak: 0 }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocate `bytes` contiguously (first fit). Zero-byte requests succeed
    /// and occupy nothing.
    pub fn alloc(&mut self, bytes: u64) -> Result<BlockId, AllocError> {
        let id = BlockId(self.next_id);
        if bytes == 0 {
            self.next_id += 1;
            self.live.insert(id.0, (u64::MAX, 0));
            return Ok(id);
        }
        let slot = self.free.iter().find(|(_, &len)| len >= bytes).map(|(&s, &l)| (s, l));
        match slot {
            Some((start, len)) => {
                self.free.remove(&start);
                if len > bytes {
                    self.free.insert(start + bytes, len - bytes);
                }
                self.next_id += 1;
                self.live.insert(id.0, (start, bytes));
                self.in_use += bytes;
                self.peak = self.peak.max(self.in_use);
                Ok(id)
            }
            None => {
                let stats = self.stats();
                if stats.free >= bytes {
                    Err(AllocError::Fragmented {
                        requested: bytes,
                        free: stats.free,
                        largest: stats.largest_free,
                    })
                } else {
                    Err(AllocError::OutOfMemory { requested: bytes, free: stats.free })
                }
            }
        }
    }

    /// Release a block, merging adjacent free extents.
    ///
    /// # Panics
    /// Panics on double free / unknown id.
    pub fn free(&mut self, id: BlockId) {
        let (start, len) = self.live.remove(&id.0).expect("free of unknown block");
        if len == 0 {
            return;
        }
        self.in_use -= len;
        // Merge with predecessor.
        let mut start = start;
        let mut len = len;
        if let Some((&ps, &pl)) = self.free.range(..start).next_back() {
            if ps + pl == start {
                self.free.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        // Merge with successor.
        if let Some(&sl) = self.free.get(&(start + len)) {
            self.free.remove(&(start + len));
            len += sl;
        }
        self.free.insert(start, len);
    }

    /// Snapshot usage statistics.
    pub fn stats(&self) -> AllocStats {
        let free: u64 = self.free.values().sum();
        let largest = self.free.values().copied().max().unwrap_or(0);
        AllocStats { in_use: self.in_use, free, largest_free: largest, peak_in_use: self.peak }
    }
}

/// Named pool inside an [`ArenaAllocator`].
#[derive(Debug)]
struct Pool {
    name: String,
    capacity: u64,
    used: u64,
}

/// MiCS-style memory management (§4): large contiguous buffers for
/// partitioned parameters, partitioned gradients, and temporaries are
/// reserved ahead of training and reused proactively. Allocation within a
/// pool is a bump pointer; `reset_pool` recycles a whole pool between
/// iterations. By construction there is no external fragmentation.
#[derive(Debug)]
pub struct ArenaAllocator {
    capacity: u64,
    reserved: u64,
    pools: Vec<Pool>,
    peak: u64,
}

impl ArenaAllocator {
    /// Create an arena managing `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        ArenaAllocator { capacity, reserved: 0, pools: Vec::new(), peak: 0 }
    }

    /// Reserve a named contiguous pool of `bytes`. Fails with
    /// [`AllocError::OutOfMemory`] if the reservations would exceed device
    /// memory — never with `Fragmented`.
    pub fn reserve_pool(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
    ) -> Result<usize, AllocError> {
        if self.reserved + bytes > self.capacity {
            return Err(AllocError::OutOfMemory {
                requested: bytes,
                free: self.capacity - self.reserved,
            });
        }
        self.reserved += bytes;
        self.peak = self.peak.max(self.reserved);
        self.pools.push(Pool { name: name.into(), capacity: bytes, used: 0 });
        Ok(self.pools.len() - 1)
    }

    /// Bump-allocate `bytes` from pool `pool`.
    pub fn alloc_from(&mut self, pool: usize, bytes: u64) -> Result<u64, AllocError> {
        let p = &mut self.pools[pool];
        if p.used + bytes > p.capacity {
            return Err(AllocError::OutOfMemory { requested: bytes, free: p.capacity - p.used });
        }
        let offset = p.used;
        p.used += bytes;
        Ok(offset)
    }

    /// Recycle everything in a pool (between micro-steps / iterations).
    pub fn reset_pool(&mut self, pool: usize) {
        self.pools[pool].used = 0;
    }

    /// Name of a pool (diagnostics).
    pub fn pool_name(&self, pool: usize) -> &str {
        &self.pools[pool].name
    }

    /// Total bytes reserved across pools.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Unreserved headroom.
    pub fn headroom(&self) -> u64 {
        self.capacity - self.reserved
    }
}

/// A checkout/checkin pool of fixed-capacity `f32` buffers for the gather
/// hot loop, backed by an [`ArenaAllocator`] reservation so its footprint is
/// visible in the same accounting as every other pool.
///
/// The minidl executor double-buffers gathered parameters: while compute
/// consumes one full-parameter buffer, the comm-progress thread fills the
/// other. Naively that reallocates a `numel`-sized `Vec` every layer of every
/// micro-step; this pool allocates each buffer once (bump-allocated from the
/// arena, so the count is bounded up front) and then recycles it for the rest
/// of training. `reuses()` exposes how many allocations were avoided so tests
/// can pin the steady-state-allocation-free property.
#[derive(Debug)]
pub struct GatherBuffers {
    arena_pool: usize,
    arena: ArenaAllocator,
    elems: usize,
    free: Vec<Vec<f32>>,
    outstanding: usize,
    allocations: u64,
    reuses: u64,
}

impl GatherBuffers {
    /// Build a pool of at most `count` buffers of `elems` `f32`s each. The
    /// backing arena reservation fails like any over-reservation would on a
    /// device ([`AllocError::OutOfMemory`]).
    pub fn new(elems: usize, count: usize) -> Result<Self, AllocError> {
        let bytes = (elems as u64) * 4 * (count as u64);
        let mut arena = ArenaAllocator::new(bytes);
        let arena_pool = arena.reserve_pool("gathered-params", bytes)?;
        Ok(GatherBuffers {
            arena_pool,
            arena,
            elems,
            free: Vec::with_capacity(count),
            outstanding: 0,
            allocations: 0,
            reuses: 0,
        })
    }

    /// Check a buffer out. Reuses a previously checked-in buffer when one is
    /// available; otherwise bump-allocates a fresh one from the arena, which
    /// fails once more than `count` buffers are simultaneously outstanding.
    pub fn checkout(&mut self) -> Result<Vec<f32>, AllocError> {
        if let Some(buf) = self.free.pop() {
            self.reuses += 1;
            self.outstanding += 1;
            return Ok(buf);
        }
        self.arena.alloc_from(self.arena_pool, self.elems as u64 * 4)?;
        self.allocations += 1;
        self.outstanding += 1;
        Ok(Vec::with_capacity(self.elems))
    }

    /// Return a buffer to the pool. Its contents are kept (the next checkout
    /// clears or overwrites as it sees fit); its capacity is what's recycled.
    pub fn checkin(&mut self, buf: Vec<f32>) {
        debug_assert!(self.outstanding > 0, "checkin without checkout");
        self.outstanding = self.outstanding.saturating_sub(1);
        self.free.push(buf);
    }

    /// Number of buffers handed out and not yet checked back in.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// How many checkouts were served by recycling instead of allocating.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many distinct buffers were ever allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1 << 10;

    #[test]
    fn dynamic_alloc_free_roundtrip() {
        let mut a = DynamicAllocator::new(10 * KB);
        let b1 = a.alloc(4 * KB).unwrap();
        let b2 = a.alloc(4 * KB).unwrap();
        assert_eq!(a.stats().in_use, 8 * KB);
        a.free(b1);
        a.free(b2);
        let s = a.stats();
        assert_eq!(s.in_use, 0);
        assert_eq!(s.free, 10 * KB);
        assert_eq!(s.largest_free, 10 * KB, "adjacent extents must merge");
    }

    #[test]
    fn dynamic_out_of_memory() {
        let mut a = DynamicAllocator::new(KB);
        assert!(matches!(a.alloc(2 * KB), Err(AllocError::OutOfMemory { .. })));
    }

    #[test]
    fn fragmentation_oom_reproduced() {
        // The §4 failure mode: free total is sufficient but not contiguous.
        let mut a = DynamicAllocator::new(10 * KB);
        let blocks: Vec<_> = (0..10).map(|_| a.alloc(KB).unwrap()).collect();
        // Free every other block: 5 KB free in 1 KB islands.
        for (i, b) in blocks.into_iter().enumerate() {
            if i % 2 == 0 {
                a.free(b);
            }
        }
        let s = a.stats();
        assert_eq!(s.free, 5 * KB);
        assert_eq!(s.largest_free, KB);
        assert!(s.fragmentation() > 0.7);
        match a.alloc(3 * KB) {
            Err(AllocError::Fragmented { requested, free, largest }) => {
                assert_eq!(requested, 3 * KB);
                assert_eq!(free, 5 * KB);
                assert_eq!(largest, KB);
            }
            other => panic!("expected Fragmented, got {other:?}"),
        }
    }

    #[test]
    fn free_merges_both_neighbours() {
        let mut a = DynamicAllocator::new(3 * KB);
        let b1 = a.alloc(KB).unwrap();
        let b2 = a.alloc(KB).unwrap();
        let b3 = a.alloc(KB).unwrap();
        a.free(b1);
        a.free(b3);
        a.free(b2); // middle: must merge with both sides
        assert_eq!(a.stats().largest_free, 3 * KB);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a = DynamicAllocator::new(10 * KB);
        let b = a.alloc(8 * KB).unwrap();
        a.free(b);
        let _ = a.alloc(KB).unwrap();
        assert_eq!(a.stats().peak_in_use, 8 * KB);
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let mut a = DynamicAllocator::new(KB);
        let b = a.alloc(0).unwrap();
        a.free(b);
        assert_eq!(a.stats().free, KB);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn double_free_panics() {
        let mut a = DynamicAllocator::new(KB);
        let b = a.alloc(KB).unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    fn arena_never_fragments() {
        let mut a = ArenaAllocator::new(10 * KB);
        let params = a.reserve_pool("params", 4 * KB).unwrap();
        let grads = a.reserve_pool("grads", 4 * KB).unwrap();
        assert_eq!(a.pool_name(grads), "grads");
        // Churn the params pool hard; reuse never fails.
        for _ in 0..100 {
            for _ in 0..4 {
                a.alloc_from(params, KB).unwrap();
            }
            assert!(a.alloc_from(params, 1).is_err(), "pool exhausted as expected");
            a.reset_pool(params);
        }
        assert_eq!(a.headroom(), 2 * KB);
    }

    #[test]
    fn gather_buffers_recycle_instead_of_allocating() {
        let mut pool = GatherBuffers::new(256, 2).unwrap();
        // Double-buffer steady state: at most two outstanding at once.
        let mut a = pool.checkout().unwrap();
        a.resize(256, 1.0);
        let b = pool.checkout().unwrap();
        assert_eq!(pool.outstanding(), 2);
        pool.checkin(a);
        pool.checkin(b);
        for _ in 0..50 {
            let x = pool.checkout().unwrap();
            let y = pool.checkout().unwrap();
            assert!(x.capacity() >= 256);
            pool.checkin(x);
            pool.checkin(y);
        }
        assert_eq!(pool.allocations(), 2, "steady state must not allocate");
        assert_eq!(pool.reuses(), 100);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn gather_buffers_bound_outstanding_count() {
        let mut pool = GatherBuffers::new(64, 2).unwrap();
        let _a = pool.checkout().unwrap();
        let _b = pool.checkout().unwrap();
        assert!(matches!(pool.checkout(), Err(AllocError::OutOfMemory { .. })));
    }

    #[test]
    fn arena_rejects_over_reservation() {
        let mut a = ArenaAllocator::new(4 * KB);
        a.reserve_pool("big", 3 * KB).unwrap();
        assert!(matches!(a.reserve_pool("more", 2 * KB), Err(AllocError::OutOfMemory { .. })));
    }

    #[test]
    fn same_workload_fragments_dynamic_but_not_arena() {
        // A miniature gather/partition loop: persistent shard buffers stay
        // live while variable-size gathered-parameter buffers come and go
        // (layer sizes differ). Under first fit the persistent blocks strand
        // small holes, until a gather request fails with *Fragmented* —
        // free memory is sufficient but not contiguous. The arena, which
        // sized its pools up front, serves the identical workload forever.
        let capacity = 64 * KB;
        let mut dynamic = DynamicAllocator::new(capacity);
        let mut arena = ArenaAllocator::new(capacity);

        let gather_pool = arena.reserve_pool("gather", 28 * KB).unwrap();
        let shard_pool = arena.reserve_pool("shards", 36 * KB).unwrap();

        let mut failure = None;
        for round in 1..=20u64 {
            let gather_bytes = (7 + round) * KB; // growing transient
            match dynamic.alloc(gather_bytes) {
                Ok(g) => {
                    let _persistent = dynamic.alloc(8 * KB).unwrap();
                    dynamic.free(g);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            // Arena: same logical workload (bounded by its pool sizes).
            if gather_bytes <= 28 * KB {
                arena.alloc_from(gather_pool, gather_bytes).unwrap();
                arena.reset_pool(gather_pool);
            }
            if (round * 8) * KB <= 36 * KB {
                arena.alloc_from(shard_pool, 8 * KB).unwrap();
            }
        }
        match failure {
            Some(AllocError::Fragmented { requested, free, largest }) => {
                assert!(free >= requested, "must be a fragmentation OOM, not capacity");
                assert!(largest < requested);
            }
            other => panic!("expected a Fragmented failure, got {other:?}"),
        }
    }
}
