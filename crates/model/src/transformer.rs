//! Transformer language-model configurations (paper Table 1).

use crate::workload::{LayerSpec, WorkloadSpec};

/// A BERT/RoBERTa/GPT-2-style transformer encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Display name.
    pub name: String,
    /// Hidden size `h`.
    pub hidden: usize,
    /// Feed-forward intermediate size (4·h in all paper configs).
    pub intermediate: usize,
    /// Number of transformer layers `L`.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Vocabulary size `V`.
    pub vocab: usize,
    /// Sequence length `l` (512 throughout the paper).
    pub seq_len: usize,
}

impl TransformerConfig {
    fn new(
        name: &str,
        hidden: usize,
        intermediate: usize,
        layers: usize,
        heads: usize,
        vocab: usize,
    ) -> Self {
        TransformerConfig {
            name: name.to_string(),
            hidden,
            intermediate,
            layers,
            heads,
            vocab,
            seq_len: 512,
        }
    }

    /// BERT 10B (Table 1).
    pub fn bert_10b() -> Self {
        Self::new("BERT 10B", 2560, 10240, 127, 40, 32008)
    }

    /// BERT 15B (Table 1).
    pub fn bert_15b() -> Self {
        Self::new("BERT 15B", 2560, 10240, 190, 40, 32008)
    }

    /// BERT 20B (Table 1).
    pub fn bert_20b() -> Self {
        Self::new("BERT 20B", 5120, 20480, 64, 40, 32008)
    }

    /// BERT 50B (Table 1).
    pub fn bert_50b() -> Self {
        Self::new("BERT 50B", 8192, 32768, 62, 40, 32008)
    }

    /// RoBERTa 20B (Table 1).
    pub fn roberta_20b() -> Self {
        Self::new("RoBERTa 20B", 5120, 20480, 62, 40, 50265)
    }

    /// GPT-2 20B (Table 1).
    pub fn gpt2_20b() -> Self {
        Self::new("GPT2 20B", 5120, 20480, 62, 40, 50265)
    }

    /// The 1.5B fidelity model of §5.4: 48 layers, hidden 1600,
    /// intermediate 6400.
    pub fn bert_1_5b() -> Self {
        Self::new("BERT 1.5B", 1600, 6400, 48, 25, 32008)
    }

    /// The Megatron-LM-3D comparison model of §5.1.3: BERT 10B widths with
    /// 128 layers (divisible by every pipeline size in Table 2).
    pub fn megatron_comparison() -> Self {
        Self::new("BERT 128L", 2560, 10240, 128, 40, 32008)
    }

    /// The 52B proprietary model stand-in of §5.1.5 (structure not
    /// disclosed; sized like a scaled GPT with h = 8192).
    pub fn proprietary_52b() -> Self {
        Self::new("Proprietary 52B", 8192, 32768, 64, 64, 50265)
    }

    /// The 100B proprietary model stand-in of §5.1.5 (h = 11264 gives
    /// ≈ 100B at 65 layers).
    pub fn proprietary_100b() -> Self {
        Self::new("Proprietary 100B", 11264, 45056, 65, 64, 50265)
    }

    /// Parameters in one transformer layer: QKV + attention output
    /// projections (4·h²) plus the two feed-forward matrices (2·h·i), plus
    /// biases and the two layer norms.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let i = self.intermediate as u64;
        4 * h * h + 2 * h * i // matrices
            + 4 * h + i + h // biases (qkv+out, ffn up, ffn down)
            + 4 * h // two layer norms (γ, β)
    }

    /// Embedding parameters: token + position embeddings and the final
    /// layer norm. The LM head is tied to the token embedding.
    pub fn embedding_params(&self) -> u64 {
        let h = self.hidden as u64;
        (self.vocab as u64) * h + (self.seq_len as u64) * h + 2 * h
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.embedding_params() + self.params_per_layer() * self.layers as u64
    }

    /// Forward FLOPs of one transformer layer for `micro_batch` sequences:
    /// `24·b·l·h² + 4·b·l²·h` (GEMMs count 2 FLOPs per multiply-add; the
    /// second term is attention score/context computation).
    pub fn layer_fwd_flops(&self, micro_batch: usize) -> f64 {
        let b = micro_batch as f64;
        let l = self.seq_len as f64;
        let h = self.hidden as f64;
        let i = self.intermediate as f64;
        // QKV + output projection: 8·b·l·h²; FFN: 4·b·l·h·i (= 16·b·l·h² at
        // i = 4h); attention scores + weighted sum: 4·b·l²·h.
        8.0 * b * l * h * h + 4.0 * b * l * h * i + 4.0 * b * l * l * h
    }

    /// Forward FLOPs of the LM head (logits GEMM) for `micro_batch`
    /// sequences: `2·b·l·h·V`.
    pub fn head_fwd_flops(&self, micro_batch: usize) -> f64 {
        2.0 * micro_batch as f64 * self.seq_len as f64 * self.hidden as f64 * self.vocab as f64
    }

    /// Bytes of checkpointed activation per layer per micro-batch
    /// (the layer input, fp16): `b·l·h·2`.
    pub fn checkpoint_bytes(&self, micro_batch: usize) -> u64 {
        (micro_batch * self.seq_len * self.hidden) as u64 * 2
    }

    /// Peak transient activation bytes while one layer executes: the
    /// intermediate FFN activation plus attention score matrices, fp16.
    pub fn working_bytes(&self, micro_batch: usize) -> u64 {
        let b = micro_batch as u64;
        let l = self.seq_len as u64;
        let act = b * l * (2 * self.hidden as u64 + 2 * self.intermediate as u64);
        let scores = b * self.heads as u64 * l * l;
        (act + scores) * 2
    }

    /// Lower to the executor-facing [`WorkloadSpec`] (mixed precision,
    /// activation checkpointing on — the paper's default training setup).
    pub fn workload(&self, micro_batch: usize) -> WorkloadSpec {
        let mut layers = Vec::with_capacity(self.layers + 2);
        // Embedding layer: parameters but negligible FLOPs (lookups).
        layers.push(LayerSpec {
            params: self.embedding_params(),
            fwd_flops: 0.0,
            bwd_flops: 0.0,
            recompute_flops: 0.0,
            checkpoint_bytes: self.checkpoint_bytes(micro_batch),
            working_bytes: 0,
        });
        let fwd = self.layer_fwd_flops(micro_batch);
        for _ in 0..self.layers {
            layers.push(LayerSpec {
                params: self.params_per_layer(),
                fwd_flops: fwd,
                bwd_flops: 2.0 * fwd,
                recompute_flops: fwd, // full activation checkpointing
                checkpoint_bytes: self.checkpoint_bytes(micro_batch),
                working_bytes: self.working_bytes(micro_batch),
            });
        }
        // LM head (tied weights → no extra parameters).
        let head = self.head_fwd_flops(micro_batch);
        layers.push(LayerSpec {
            params: 0,
            fwd_flops: head,
            bwd_flops: 2.0 * head,
            recompute_flops: 0.0,
            checkpoint_bytes: 0,
            working_bytes: (micro_batch * self.seq_len) as u64 * self.vocab as u64 * 2,
        });
        WorkloadSpec {
            name: self.name.clone(),
            layers,
            param_dtype_bytes: 2,
            activation_checkpointing: true,
            micro_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each Table-1 config must land near its nominal size.
    #[test]
    fn table1_param_counts() {
        let cases = [
            (TransformerConfig::bert_10b(), 10.0e9),
            (TransformerConfig::bert_15b(), 15.0e9),
            (TransformerConfig::bert_20b(), 20.0e9),
            (TransformerConfig::bert_50b(), 50.0e9),
            (TransformerConfig::roberta_20b(), 20.0e9),
            (TransformerConfig::gpt2_20b(), 20.0e9),
        ];
        for (cfg, nominal) in cases {
            let total = cfg.total_params() as f64;
            let err = (total - nominal).abs() / nominal;
            assert!(err < 0.06, "{}: {total:.3e} vs nominal {nominal:.1e}", cfg.name);
        }
    }

    #[test]
    fn fidelity_model_is_one_and_a_half_billion() {
        let cfg = TransformerConfig::bert_1_5b();
        let total = cfg.total_params() as f64;
        assert!((1.3e9..1.7e9).contains(&total), "{total:.3e}");
    }

    #[test]
    fn case_study_models_match_headline_sizes() {
        let p52 = TransformerConfig::proprietary_52b().total_params() as f64;
        assert!((49e9..56e9).contains(&p52), "{p52:.3e}");
        let p100 = TransformerConfig::proprietary_100b().total_params() as f64;
        assert!((95e9..106e9).contains(&p100), "{p100:.3e}");
    }

    #[test]
    fn megatron_model_layer_count_divisible_by_pipeline_sizes() {
        let cfg = TransformerConfig::megatron_comparison();
        for pp in [1usize, 4, 8] {
            assert_eq!(cfg.layers % pp, 0, "128 layers must divide PP={pp}");
        }
    }

    #[test]
    fn bert_15b_is_narrow_and_deep_vs_20b() {
        // §5.1.1 attributes MiCS's larger win on 15B to narrower layers.
        let b15 = TransformerConfig::bert_15b();
        let b20 = TransformerConfig::bert_20b();
        assert!(b15.hidden < b20.hidden);
        assert!(b15.layers > b20.layers);
        assert!(b15.params_per_layer() < b20.params_per_layer());
    }

    #[test]
    fn workload_lowering_consistent() {
        let cfg = TransformerConfig::bert_10b();
        let w = cfg.workload(8);
        assert_eq!(w.layers.len(), cfg.layers + 2);
        assert_eq!(w.total_params(), cfg.total_params());
        assert_eq!(w.micro_batch, 8);
        assert!(w.activation_checkpointing);
        // Backward is 2× forward; recompute equals forward for the
        // checkpointed transformer layers.
        let l = &w.layers[1];
        assert_eq!(l.bwd_flops, 2.0 * l.fwd_flops);
        assert_eq!(l.recompute_flops, l.fwd_flops);
    }

    #[test]
    fn flops_scale_linearly_with_micro_batch() {
        let cfg = TransformerConfig::bert_10b();
        let f1 = cfg.workload(1).total_flops();
        let f8 = cfg.workload(8).total_flops();
        assert!((f8 / f1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn activation_memory_example_plausible() {
        // BERT 10B at micro-batch 8: checkpoints ≈ 127 × 21 MB ≈ 2.7 GB.
        let cfg = TransformerConfig::bert_10b();
        let w = cfg.workload(8);
        let ckpt = w.checkpoint_bytes() as f64 / (1 << 30) as f64;
        assert!((2.0..3.5).contains(&ckpt), "checkpoint GB = {ckpt}");
    }
}
