//! The layer-granular workload description consumed by the simulator
//! executors.

/// One schedulable layer of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSpec {
    /// Trainable parameters in this layer.
    pub params: u64,
    /// Forward FLOPs for one micro-batch.
    pub fwd_flops: f64,
    /// Backward FLOPs for one micro-batch (typically 2× forward).
    pub bwd_flops: f64,
    /// Extra forward FLOPs re-executed during backward when activation
    /// checkpointing is enabled (typically 1× forward), else 0.
    pub recompute_flops: f64,
    /// Bytes of checkpointed activation this layer keeps alive for the whole
    /// forward+backward of one micro-batch.
    pub checkpoint_bytes: u64,
    /// Peak transient activation bytes while this layer is executing.
    pub working_bytes: u64,
}

/// A model lowered to an ordered layer list.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable model name (e.g. `"BERT 10B"`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
    /// Bytes per parameter/gradient element (2 = fp16 mixed precision,
    /// 4 = fp32).
    pub param_dtype_bytes: u64,
    /// Whether activation checkpointing is on (the paper's default for
    /// language models; off for WideResNet).
    pub activation_checkpointing: bool,
    /// Micro-batch size this spec was lowered for.
    pub micro_batch: usize,
}

impl WorkloadSpec {
    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total forward FLOPs for one micro-batch.
    pub fn fwd_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.fwd_flops).sum()
    }

    /// Total backward (+recompute) FLOPs for one micro-batch.
    pub fn bwd_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.bwd_flops + l.recompute_flops).sum()
    }

    /// Total FLOPs for one micro-batch (forward + backward + recompute).
    pub fn total_flops(&self) -> f64 {
        self.fwd_flops() + self.bwd_flops()
    }

    /// Sum of live checkpointed activations for one micro-batch.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.checkpoint_bytes).sum()
    }

    /// Largest transient activation across layers.
    pub fn peak_working_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.working_bytes).max().unwrap_or(0)
    }

    /// Parameter bytes of the largest single layer — sizes the gathered-
    /// parameter working buffers of ZeRO-3/MiCS.
    pub fn max_layer_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.params).max().unwrap_or(0) * self.param_dtype_bytes
    }

    /// Model-state bytes *before* any sharding, mixed-precision Adam
    /// convention: `param_dtype` params + `param_dtype` grads + 12 B/param
    /// optimizer states (fp32 master + two moments). This is the paper's
    /// "a model with 10 billion parameters takes about 160 GB" arithmetic.
    pub fn model_state_bytes(&self) -> u64 {
        let p = self.total_params();
        p * self.param_dtype_bytes // parameters
            + p * self.param_dtype_bytes // gradients
            + p * 12 // optimizer states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy".into(),
            layers: vec![
                LayerSpec {
                    params: 100,
                    fwd_flops: 10.0,
                    bwd_flops: 20.0,
                    recompute_flops: 10.0,
                    checkpoint_bytes: 5,
                    working_bytes: 50,
                },
                LayerSpec {
                    params: 300,
                    fwd_flops: 30.0,
                    bwd_flops: 60.0,
                    recompute_flops: 30.0,
                    checkpoint_bytes: 7,
                    working_bytes: 40,
                },
            ],
            param_dtype_bytes: 2,
            activation_checkpointing: true,
            micro_batch: 8,
        }
    }

    #[test]
    fn aggregates() {
        let s = spec();
        assert_eq!(s.total_params(), 400);
        assert_eq!(s.fwd_flops(), 40.0);
        assert_eq!(s.bwd_flops(), 120.0);
        assert_eq!(s.total_flops(), 160.0);
        assert_eq!(s.checkpoint_bytes(), 12);
        assert_eq!(s.peak_working_bytes(), 50);
        assert_eq!(s.max_layer_param_bytes(), 600);
    }

    #[test]
    fn model_state_bytes_match_paper_example() {
        // §3.2: 10B parameters ≈ 160 GB of model states with Adam + mixed
        // precision (16 bytes per parameter).
        let s = WorkloadSpec {
            name: "10B".into(),
            layers: vec![LayerSpec {
                params: 10_000_000_000,
                fwd_flops: 0.0,
                bwd_flops: 0.0,
                recompute_flops: 0.0,
                checkpoint_bytes: 0,
                working_bytes: 0,
            }],
            param_dtype_bytes: 2,
            activation_checkpointing: true,
            micro_batch: 8,
        };
        assert_eq!(s.model_state_bytes(), 160_000_000_000);
    }
}
