//! Workload descriptions: the models the MiCS paper evaluates, their
//! parameter counts, FLOPs, and activation footprints.
//!
//! Two model families appear in the paper:
//!
//! * **Transformer language models** (Table 1): BERT variants from 10B to
//!   50B parameters, RoBERTa 20B, GPT-2 20B, plus the 1.5B fidelity model of
//!   §5.4 and the 128-layer variant used for the Megatron-LM-3D comparison
//!   (§5.1.3) and the 52B/100B proprietary-scale case study (§5.1.5).
//! * **WideResNet** (§5.1.4): a 3B-parameter convolutional network that
//!   demonstrates generality beyond transformers.
//!
//! Every model lowers to a [`WorkloadSpec`] — an ordered list of
//! [`LayerSpec`]s with parameter bytes, forward/backward/recompute FLOPs and
//! activation footprints — which is the only interface the simulator
//! executors consume.

#![warn(missing_docs)]

pub mod flops;
pub mod transformer;
pub mod wideresnet;
pub mod workload;

pub use flops::megatron_flops_per_sample;
pub use transformer::TransformerConfig;
pub use wideresnet::WideResNetConfig;
pub use workload::{LayerSpec, WorkloadSpec};
