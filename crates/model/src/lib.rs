//! Workload descriptions: the models the MiCS paper evaluates, their
//! parameter counts, FLOPs, and activation footprints.
//!
//! Two model families appear in the paper:
//!
//! * **Transformer language models** (Table 1): BERT variants from 10B to
//!   50B parameters, RoBERTa 20B, GPT-2 20B, plus the 1.5B fidelity model of
//!   §5.4 and the 128-layer variant used for the Megatron-LM-3D comparison
//!   (§5.1.3) and the 52B/100B proprietary-scale case study (§5.1.5).
//! * **WideResNet** (§5.1.4): a 3B-parameter convolutional network that
//!   demonstrates generality beyond transformers.
//!
//! Every model lowers to a [`WorkloadSpec`] — an ordered list of
//! [`LayerSpec`]s with parameter bytes, forward/backward/recompute FLOPs and
//! activation footprints — which is the only interface the simulator
//! executors consume.

#![warn(missing_docs)]

pub mod flops;
pub mod transformer;
pub mod wideresnet;
pub mod workload;

pub use flops::megatron_flops_per_sample;
pub use transformer::TransformerConfig;
pub use wideresnet::WideResNetConfig;
pub use workload::{LayerSpec, WorkloadSpec};

/// Names of the built-in model presets, in display order. The single source
/// of truth shared by `mics-sim` and the planner service's wire decoder.
pub fn preset_names() -> &'static [&'static str] {
    &[
        "bert-1.5b",
        "bert-10b",
        "bert-15b",
        "bert-20b",
        "bert-50b",
        "roberta-20b",
        "gpt2-20b",
        "bert-128l",
        "52b",
        "100b",
        "wideresnet-3b",
    ]
}

/// Resolve a preset name to its workload, lowered for `micro_batch`
/// (`None` for unknown names — callers own their error surface).
pub fn preset(name: &str, micro_batch: usize) -> Option<WorkloadSpec> {
    let cfg = match name {
        "bert-1.5b" => TransformerConfig::bert_1_5b(),
        "bert-10b" => TransformerConfig::bert_10b(),
        "bert-15b" => TransformerConfig::bert_15b(),
        "bert-20b" => TransformerConfig::bert_20b(),
        "bert-50b" => TransformerConfig::bert_50b(),
        "roberta-20b" => TransformerConfig::roberta_20b(),
        "gpt2-20b" => TransformerConfig::gpt2_20b(),
        "bert-128l" => TransformerConfig::megatron_comparison(),
        "52b" => TransformerConfig::proprietary_52b(),
        "100b" => TransformerConfig::proprietary_100b(),
        "wideresnet-3b" => return Some(WideResNetConfig::wrn_3b().workload(micro_batch)),
        _ => return None,
    };
    Some(cfg.workload(micro_batch))
}

#[cfg(test)]
mod preset_tests {
    use super::*;

    #[test]
    fn every_preset_name_resolves() {
        for name in preset_names() {
            let w = preset(name, 2).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(w.total_params() > 0, "{name}");
        }
        assert!(preset("bert-9000b", 2).is_none());
    }
}
