//! The Megatron-LM FLOPs accounting formula the paper uses for Figure 8 and
//! the TFLOPS numbers of §5.1.5.
//!
//! Paper §5.1.1:
//! `F = 96·T·l·L·h²·(1 + l/(6h) + V/(16·L·h))`
//! where `T` is throughput in sequences/second, `l` sequence length, `h`
//! hidden size, `L` layer count and `V` vocabulary size. The factor 96
//! accounts for forward (×24), backward (×48) and activation recomputation
//! (×24). Dividing by `T` gives FLOPs per sequence.

use crate::transformer::TransformerConfig;

/// Model FLOPs for processing **one sequence** (forward + backward
/// + recompute when `checkpointing`), per the Megatron formula.
pub fn megatron_flops_per_sample(cfg: &TransformerConfig, checkpointing: bool) -> f64 {
    let l = cfg.seq_len as f64;
    let h = cfg.hidden as f64;
    let big_l = cfg.layers as f64;
    let v = cfg.vocab as f64;
    let factor = if checkpointing { 96.0 } else { 72.0 };
    factor * l * big_l * h * h * (1.0 + l / (6.0 * h) + v / (16.0 * big_l * h))
}

/// Aggregate cluster TFLOPS implied by a measured throughput of
/// `seq_per_sec` sequences/second (the paper's Figure 8 conversion).
pub fn cluster_tflops(cfg: &TransformerConfig, seq_per_sec: f64, checkpointing: bool) -> f64 {
    megatron_flops_per_sample(cfg, checkpointing) * seq_per_sec / 1e12
}

/// Per-GPU TFLOPS given a cluster-wide throughput over `gpus` devices.
pub fn per_gpu_tflops(
    cfg: &TransformerConfig,
    seq_per_sec: f64,
    gpus: usize,
    checkpointing: bool,
) -> f64 {
    cluster_tflops(cfg, seq_per_sec, checkpointing) / gpus as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        let cfg = TransformerConfig::bert_10b();
        let l = 512.0;
        let h = 2560.0;
        let big_l = 127.0;
        let v = 32008.0;
        let expect = 96.0 * l * big_l * h * h * (1.0 + l / (6.0 * h) + v / (16.0 * big_l * h));
        assert_eq!(megatron_flops_per_sample(&cfg, true), expect);
    }

    #[test]
    fn recompute_adds_a_quarter() {
        let cfg = TransformerConfig::bert_10b();
        let with = megatron_flops_per_sample(&cfg, true);
        let without = megatron_flops_per_sample(&cfg, false);
        assert!((with / without - 96.0 / 72.0).abs() < 1e-12);
    }

    #[test]
    fn formula_close_to_workload_lowering() {
        // Our per-layer FLOPs accounting and Megatron's closed form should
        // agree within ~15% (they differ in bias/layernorm/embedding terms).
        for cfg in [
            TransformerConfig::bert_10b(),
            TransformerConfig::bert_50b(),
            TransformerConfig::gpt2_20b(),
        ] {
            let formula = megatron_flops_per_sample(&cfg, true);
            let lowered = cfg.workload(1).total_flops();
            let ratio = lowered / formula;
            assert!((0.85..1.15).contains(&ratio), "{}: ratio {ratio}", cfg.name);
        }
    }

    #[test]
    fn per_gpu_conversion() {
        let cfg = TransformerConfig::bert_10b();
        let cluster = cluster_tflops(&cfg, 100.0, true);
        let per_gpu = per_gpu_tflops(&cfg, 100.0, 16, true);
        assert!((cluster / 16.0 - per_gpu).abs() < 1e-9);
    }

    #[test]
    fn paper_utilization_sanity_bert10b() {
        // §5.1.1: MiCS reaches ~42% of V100 peak (125 TFLOPS → ~52 TFLOPS
        // per GPU). At that utilization, 16 V100s sustain ≈ 840 TFLOPS; the
        // implied throughput is ≈ 840e12 / flops_per_sample ≈ 14 seq/s.
        let cfg = TransformerConfig::bert_10b();
        let per_sample = megatron_flops_per_sample(&cfg, true);
        let seq_per_sec = 0.42 * 125e12 * 16.0 / per_sample;
        assert!((10.0..20.0).contains(&seq_per_sec), "{seq_per_sec}");
    }
}
