//! WideResNet (paper §5.1.4): the CV workload that shows MiCS generalizes
//! beyond transformers.
//!
//! The paper's model has ≈ 3B parameters, 200 convolution layers, width
//! factor 8 and bottleneck block configuration `[6, 8, 46, 6]`, trained in
//! fp32 on synthetic 3×224×224 images with activation checkpointing
//! *disabled*. The inner bottleneck width is not disclosed; we calibrate the
//! base width (48 channels) so the total lands at ≈ 3B — the property the
//! experiment actually depends on.

use crate::workload::{LayerSpec, WorkloadSpec};

/// A bottleneck WideResNet configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideResNetConfig {
    /// Display name.
    pub name: String,
    /// Width multiplier (`k` in the WRN paper; 8 here).
    pub width: usize,
    /// Bottleneck blocks per stage.
    pub blocks: [usize; 4],
    /// Inner bottleneck channels of stage 0 before width scaling.
    pub base_channels: usize,
    /// Input image side (224).
    pub image_size: usize,
}

impl WideResNetConfig {
    /// The ≈ 3B-parameter model of §5.1.4.
    pub fn wrn_3b() -> Self {
        WideResNetConfig {
            name: "WideResNet 3B".into(),
            width: 8,
            blocks: [6, 8, 46, 6],
            base_channels: 48,
            image_size: 224,
        }
    }

    /// Inner bottleneck channels of stage `s` (0-based).
    fn inner(&self, stage: usize) -> u64 {
        (self.base_channels * self.width) as u64 * (1 << stage)
    }

    /// Output channels of stage `s` (expansion 4).
    fn outer(&self, stage: usize) -> u64 {
        4 * self.inner(stage)
    }

    /// Spatial side length at stage `s`: stem (stride 2) + maxpool
    /// (stride 2) give 56 at stage 0, halving each stage.
    fn side(&self, stage: usize) -> u64 {
        (self.image_size as u64 / 4) >> stage
    }

    /// Total convolution layers (stem + 3 per bottleneck block).
    pub fn conv_layers(&self) -> usize {
        1 + 3 * self.blocks.iter().sum::<usize>()
    }

    /// Parameters of one bottleneck block at `stage`, given the block's
    /// input channel count.
    fn block_params(&self, stage: usize, in_ch: u64) -> u64 {
        let c = self.inner(stage);
        let out = self.outer(stage);
        // 1×1 reduce + 3×3 + 1×1 expand (+BatchNorm γβ, negligible but
        // included for honesty).
        in_ch * c + 9 * c * c + c * out + 2 * (c + c + out)
    }

    /// Downsample (projection) parameters for the first block of a stage.
    fn downsample_params(&self, stage: usize, in_ch: u64) -> u64 {
        in_ch * self.outer(stage)
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.lower(1).total_params()
    }

    fn stem_params(&self) -> u64 {
        3 * 49 * self.inner(0) // 7×7 stem into stage-0 inner width
    }

    fn lower(&self, micro_batch: usize) -> WorkloadSpec {
        let b = micro_batch as u64;
        let mut layers = Vec::new();
        // Stem.
        let stem_side = self.image_size as u64 / 2;
        let stem_params = self.stem_params();
        let stem_flops = 2.0 * (stem_params as f64) * (stem_side * stem_side) as f64 * b as f64;
        layers.push(LayerSpec {
            params: stem_params,
            fwd_flops: stem_flops,
            bwd_flops: 2.0 * stem_flops,
            recompute_flops: 0.0,
            checkpoint_bytes: b * self.inner(0) * stem_side * stem_side * 4,
            working_bytes: b * self.inner(0) * stem_side * stem_side * 4,
        });
        let mut in_ch = self.inner(0);
        for stage in 0..4 {
            let side = self.side(stage);
            for block in 0..self.blocks[stage] {
                let mut params = self.block_params(stage, in_ch);
                if block == 0 {
                    params += self.downsample_params(stage, in_ch);
                }
                let flops = 2.0 * params as f64 * (side * side) as f64 * b as f64;
                // fp32 activations stay live for backward (no checkpointing
                // in the paper's CV setup). Factor 3 ≈ conv inputs + BatchNorm
                // saved statistics + ReLU masks (calibrated so the §5.1.4
                // runnability matrix holds: ZeRO-2 ×, ZeRO-3/MiCS ✓).
                let act = 3 * b * side * side * (2 * self.inner(stage) + self.outer(stage)) * 4;
                layers.push(LayerSpec {
                    params,
                    fwd_flops: flops,
                    bwd_flops: 2.0 * flops,
                    recompute_flops: 0.0,
                    checkpoint_bytes: act,
                    working_bytes: act,
                });
                in_ch = self.outer(stage);
            }
        }
        WorkloadSpec {
            name: self.name.clone(),
            layers,
            param_dtype_bytes: 4, // fp32 training (§5.1.4)
            activation_checkpointing: false,
            micro_batch,
        }
    }

    /// Lower to the executor-facing workload for a given micro-batch.
    pub fn workload(&self, micro_batch: usize) -> WorkloadSpec {
        self.lower(micro_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrn_3b_has_three_billion_params() {
        let total = WideResNetConfig::wrn_3b().total_params() as f64;
        assert!((2.5e9..3.5e9).contains(&total), "{total:.3e}");
    }

    #[test]
    fn conv_layer_count_near_200() {
        let c = WideResNetConfig::wrn_3b().conv_layers();
        assert_eq!(c, 199, "stem + 3×(6+8+46+6)");
    }

    #[test]
    fn block_configuration_matches_paper() {
        let cfg = WideResNetConfig::wrn_3b();
        assert_eq!(cfg.blocks, [6, 8, 46, 6]);
        assert_eq!(cfg.width, 8);
    }

    #[test]
    fn workload_is_fp32_without_checkpointing() {
        let w = WideResNetConfig::wrn_3b().workload(8);
        assert_eq!(w.param_dtype_bytes, 4);
        assert!(!w.activation_checkpointing);
        assert!(w.layers.iter().all(|l| l.recompute_flops == 0.0));
    }

    #[test]
    fn spatial_resolution_halves_per_stage() {
        let cfg = WideResNetConfig::wrn_3b();
        assert_eq!(cfg.side(0), 56);
        assert_eq!(cfg.side(3), 7);
    }

    #[test]
    fn flops_scale_with_micro_batch() {
        let cfg = WideResNetConfig::wrn_3b();
        let f2 = cfg.workload(2).total_flops();
        let f8 = cfg.workload(8).total_flops();
        assert!((f8 / f2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn late_stage_blocks_dominate_parameters() {
        // Stage 2 holds 46 of the 66 blocks; it must dominate the total.
        let cfg = WideResNetConfig::wrn_3b();
        let w = cfg.workload(1);
        let total = w.total_params() as f64;
        let stage2_start = 1 + 6 + 8;
        let stage2: u64 = w.layers[stage2_start..stage2_start + 46].iter().map(|l| l.params).sum();
        assert!(stage2 as f64 / total > 0.5, "stage2 share {}", stage2 as f64 / total);
    }
}
