//! The structured trace/metrics layer shared by every subsystem.
//!
//! The repo used to emit chrome-trace JSON from three unrelated places
//! (the simulator, the minidl executor, the CLI), each with its own span
//! type and hand-rolled writer. This crate replaces them with one event
//! model and one [Trace Event Format] writer:
//!
//! * [`TraceEvent`] — a typed event on a named *process* (top-level group
//!   in Perfetto) and *track* (row): a duration [`EventKind::Span`], an
//!   [`EventKind::Instant`] marker (fault injected, rank poisoned,
//!   heartbeat missed, cache eviction), or an [`EventKind::Counter`]
//!   sample (NIC bytes, queue depth, cache hits, ledger balance).
//! * [`Trace`] — an ordered event log with [`Trace::merge`] for splicing
//!   timelines from different subsystems into one document, and
//!   [`Trace::to_json`] — the single writer that allocates stable
//!   pids/tids (first-appearance order), emits `process_name` /
//!   `thread_name` metadata for every id it uses, and owns the one JSON
//!   string [`escape`] in the workspace.
//! * [`Recorder`] — a cheap shared handle for *measured* (wall-clock)
//!   subsystems: a no-op unless enabled, with a process-wide [`global`]
//!   instance so deeply nested code (the socket dataplane, the planner
//!   workers) can record without threading a handle through every API.
//! * [`Counters`] — a registry of named monotonic/gauge counters backing
//!   e.g. the planner's `stats` response, with cheap atomic handles.
//!
//! Virtual-time subsystems (the simulator) build a [`Trace`] directly
//! with simulated nanoseconds; wall-clock subsystems stamp events with
//! [`Recorder::now_ns`]. Both meet in the same writer, which is what lets
//! the CLI's fidelity command put the simulator's *charged* timeline and
//! the real backend's *measured* one side by side in a single
//! Perfetto-loadable file.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One argument value attached to an event (rendered under `"args"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A string argument.
    Str(String),
    /// An integer argument (bytes, iteration numbers, op ids).
    Int(i64),
    /// A floating-point argument.
    Num(f64),
    /// A boolean argument.
    Bool(bool),
}

impl From<&str> for Arg {
    fn from(v: &str) -> Self {
        Arg::Str(v.to_string())
    }
}
impl From<String> for Arg {
    fn from(v: String) -> Self {
        Arg::Str(v)
    }
}
impl From<i64> for Arg {
    fn from(v: i64) -> Self {
        Arg::Int(v)
    }
}
impl From<u64> for Arg {
    fn from(v: u64) -> Self {
        Arg::Int(v as i64)
    }
}
impl From<usize> for Arg {
    fn from(v: usize) -> Self {
        Arg::Int(v as i64)
    }
}
impl From<f64> for Arg {
    fn from(v: f64) -> Self {
        Arg::Num(v)
    }
}
impl From<bool> for Arg {
    fn from(v: bool) -> Self {
        Arg::Bool(v)
    }
}

/// What kind of event a [`TraceEvent`] is.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A duration span (`ph:"X"`): something occupied the track for
    /// `dur_ns` nanoseconds starting at the event's `ts_ns`.
    Span {
        /// Span duration, nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker (`ph:"i"`, thread-scoped).
    Instant,
    /// A counter sample (`ph:"C"`): the track's value at `ts_ns`.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One typed event. `process` and `track` are *names*; the writer maps
/// them to stable numeric pids/tids at emission time, so producers never
/// coordinate id allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Process-level group (e.g. `"simulator (charged)"`, `"dataplane"`).
    pub process: String,
    /// Track (thread row) within the process (e.g. `"gather[3]"`, `"rank0"`).
    pub track: String,
    /// Event name (span label, counter name, instant label).
    pub name: String,
    /// Category tag (`cat` field; groups events for filtering in the UI).
    pub cat: &'static str,
    /// Timestamp, nanoseconds (virtual or wall-clock — the producer's axis).
    pub ts_ns: u64,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Extra arguments rendered under `"args"`.
    pub args: Vec<(&'static str, Arg)>,
}

/// An ordered log of [`TraceEvent`]s plus the single TEF writer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Record a duration span.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        process: &str,
        track: &str,
        name: &str,
        cat: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.push(TraceEvent {
            process: process.to_string(),
            track: track.to_string(),
            name: name.to_string(),
            cat,
            ts_ns,
            kind: EventKind::Span { dur_ns },
            args,
        });
    }

    /// Record an instant marker.
    pub fn instant(
        &mut self,
        process: &str,
        track: &str,
        name: &str,
        cat: &'static str,
        ts_ns: u64,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.push(TraceEvent {
            process: process.to_string(),
            track: track.to_string(),
            name: name.to_string(),
            cat,
            ts_ns,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Record a counter sample. The `name` identifies the counter series;
    /// Perfetto renders one plot per `(process, name)`.
    pub fn counter(&mut self, process: &str, track: &str, name: &str, ts_ns: u64, value: f64) {
        self.push(TraceEvent {
            process: process.to_string(),
            track: track.to_string(),
            name: name.to_string(),
            cat: "counter",
            ts_ns,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        });
    }

    /// Splice another trace's events after this one's. Process/track
    /// *names* are the identity, so merging never renumbers anything —
    /// pid order is first appearance across the merged whole.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
    }

    /// Rename every event on process `from` to process `to` (presentation
    /// belongs to the consumer; producers use neutral names).
    pub fn rename_process(&mut self, from: &str, to: &str) {
        for e in &mut self.events {
            if e.process == from {
                e.process = to.to_string();
            }
        }
    }

    /// Process names in first-appearance (= pid) order.
    pub fn processes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.events {
            if !out.contains(&e.process.as_str()) {
                out.push(&e.process);
            }
        }
        out
    }

    /// Render the trace as a Trace Event Format JSON document (loadable in
    /// `chrome://tracing` / ui.perfetto.dev).
    ///
    /// Pids are allocated to processes in first-appearance order, tids to
    /// tracks in first-appearance order within their process; every
    /// pid/tid used by an event is named by `process_name` /
    /// `thread_name` metadata emitted up front. Timestamps are
    /// microseconds (TEF's unit), converted from the events' nanoseconds.
    pub fn to_json(&self) -> String {
        // Stable id allocation by first appearance.
        let mut pids: Vec<&str> = Vec::new();
        let mut tids: Vec<Vec<&str>> = Vec::new();
        for e in &self.events {
            let pid = match pids.iter().position(|p| *p == e.process) {
                Some(i) => i,
                None => {
                    pids.push(&e.process);
                    tids.push(Vec::new());
                    pids.len() - 1
                }
            };
            if !tids[pid].contains(&e.track.as_str()) {
                tids[pid].push(&e.track);
            }
        }
        let mut parts: Vec<String> = Vec::new();
        for (pid, pname) in pids.iter().enumerate() {
            parts.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(pname)
            ));
            for (tid, tname) in tids[pid].iter().enumerate() {
                parts.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(tname)
                ));
            }
        }
        for e in &self.events {
            let pid = pids.iter().position(|p| *p == e.process).unwrap();
            let tid = tids[pid].iter().position(|t| *t == e.track).unwrap();
            let ts = fmt_num(e.ts_ns as f64 / 1e3);
            let mut ev = format!("{{\"name\":\"{}\"", escape(&e.name));
            if !e.cat.is_empty() {
                ev.push_str(&format!(",\"cat\":\"{}\"", escape(e.cat)));
            }
            match &e.kind {
                EventKind::Span { dur_ns } => {
                    let dur = fmt_num(*dur_ns as f64 / 1e3);
                    ev.push_str(&format!(
                        ",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}"
                    ));
                    if !e.args.is_empty() {
                        ev.push_str(&format!(",\"args\":{}", args_json(&e.args)));
                    }
                }
                EventKind::Instant => {
                    ev.push_str(&format!(
                        ",\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\""
                    ));
                    if !e.args.is_empty() {
                        ev.push_str(&format!(",\"args\":{}", args_json(&e.args)));
                    }
                }
                EventKind::Counter { value } => {
                    ev.push_str(&format!(
                        ",\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                         \"args\":{{\"value\":{}}}",
                        fmt_num(*value)
                    ));
                }
            }
            ev.push('}');
            parts.push(ev);
        }
        format!("{{\"traceEvents\":[{}]}}", parts.join(","))
    }
}

fn args_json(args: &[(&'static str, Arg)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", escape(k)));
        match v {
            Arg::Str(s) => out.push_str(&format!("\"{}\"", escape(s))),
            Arg::Int(n) => out.push_str(&n.to_string()),
            Arg::Num(x) => out.push_str(&fmt_num(*x)),
            Arg::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

/// Escape a string for embedding in a JSON string literal. This is *the*
/// escaper for every trace emitted by the workspace (the three hand-rolled
/// ones it replaces each missed control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic float formatting: integral values print without a
/// fractional part (matching `mics-core`'s `Json::emit` convention).
fn fmt_num(x: f64) -> String {
    if x.is_finite() && x == x.trunc() && x.abs() < 9.0e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

// ---- recorder ---------------------------------------------------------------

#[derive(Debug)]
struct RecorderInner {
    enabled: AtomicBool,
    epoch: Instant,
    trace: Mutex<Trace>,
}

/// A cheap shared recorder for wall-clock subsystems.
///
/// Disabled by default: every recording call checks one relaxed atomic and
/// returns, so permanently-instrumented hot paths (the socket dataplane's
/// send/receive loops) cost nothing in ordinary runs. Enable it around the
/// region of interest, then [`Recorder::drain`] the accumulated events
/// into a [`Trace`] for merging/writing.
///
/// Timestamps come from one shared epoch ([`Recorder::now_ns`]), so spans
/// recorded by different threads land on a single consistent axis.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, disabled recorder.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(false),
                epoch: Instant::now(),
                trace: Mutex::new(Trace::new()),
            }),
        }
    }

    /// Start recording.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (already-recorded events stay until drained).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording calls currently capture anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Record a span from `start_ns` (a prior [`Recorder::now_ns`]) to now.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        process: &str,
        track: &str,
        name: &str,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, Arg)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let dur_ns = end_ns.saturating_sub(start_ns);
        self.inner.trace.lock().unwrap().span(process, track, name, cat, start_ns, dur_ns, args);
    }

    /// Record an instant marker stamped now.
    pub fn instant(
        &self,
        process: &str,
        track: &str,
        name: &str,
        cat: &'static str,
        args: Vec<(&'static str, Arg)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        // Stamp under the trace lock so emission order and timestamp order
        // agree even when multiple threads record concurrently.
        let mut trace = self.inner.trace.lock().unwrap();
        let ts = self.now_ns();
        trace.instant(process, track, name, cat, ts, args);
    }

    /// Record a counter sample stamped now.
    pub fn counter(&self, process: &str, track: &str, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        // Stamp under the trace lock so emission order and timestamp order
        // agree even when multiple threads record concurrently.
        let mut trace = self.inner.trace.lock().unwrap();
        let ts = self.now_ns();
        trace.counter(process, track, name, ts, value);
    }

    /// Take every recorded event, leaving the recorder empty (and still in
    /// whatever enabled state it was).
    pub fn drain(&self) -> Trace {
        std::mem::take(&mut *self.inner.trace.lock().unwrap())
    }
}

/// The process-wide recorder. Disabled until someone calls
/// [`Recorder::enable`] on it, so instrumented subsystems pay one atomic
/// load per event in ordinary runs.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

// ---- counters ---------------------------------------------------------------

/// A registry of named counters: monotonic tallies (bytes sent, cache
/// hits) and gauges (queue depth, in-flight waiters). Handles are cheap
/// atomics, shareable across threads; [`Counters::snapshot`] reads every
/// counter in registration order for `stats`-style reporting.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    cells: Arc<Mutex<CounterCells>>,
}

/// Registration-ordered name → cell pairs behind [`Counters`].
type CounterCells = Vec<(String, Arc<AtomicU64>)>;

/// One counter handle (see [`Counters::counter`]).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Get or create the counter named `name`. Handles to the same name
    /// share one cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.cells.lock().unwrap();
        if let Some((_, cell)) = cells.iter().find(|(n, _)| n == name) {
            return Counter(Arc::clone(cell));
        }
        let cell = Arc::new(AtomicU64::new(0));
        cells.push((name.to_string(), Arc::clone(&cell)));
        Counter(cell)
    }

    /// Current value of `name` (0 when never registered).
    pub fn get(&self, name: &str) -> u64 {
        let cells = self.cells.lock().unwrap();
        cells.iter().find(|(n, _)| n == name).map(|(_, c)| c.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Every counter's `(name, value)`, in registration order.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let cells = self.cells.lock().unwrap();
        cells.iter().map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed))).collect()
    }
}

impl Counter {
    /// Add `n`, returning the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Add 1, returning the new value.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Subtract 1 (saturating at 0), returning the new value — for gauges.
    pub fn dec(&self) -> u64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(1);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Overwrite the value — for gauges set from a computed depth.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape(r"a\b"), r"a\\b");
        assert_eq!(escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape("x\u{1}y"), "x\\u0001y");
        assert_eq!(escape("plain µs"), "plain µs");
    }

    #[test]
    fn writer_allocates_stable_pids_tids_and_names_them() {
        let mut t = Trace::new();
        t.span("simA", "track0", "op", "c", 1_000, 2_000, vec![]);
        t.span("simB", "other", "op", "c", 0, 500, vec![]);
        t.span("simA", "track1", "op", "c", 3_000, 1_000, vec![]);
        let json = t.to_json();
        // simA appeared first → pid 0 with tids 0/1; simB → pid 1.
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"simA\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"simB\"}}"
        ));
        assert!(json.contains("\"args\":{\"name\":\"track1\"}"));
        // ns → µs, integral values print as integers.
        assert!(json.contains("\"ts\":1,\"dur\":2"), "{json}");
        assert!(json.contains("\"ts\":0,\"dur\":0.5"), "{json}");
        assert_eq!(t.processes(), vec!["simA", "simB"]);
    }

    #[test]
    fn merge_preserves_first_trace_pid_order() {
        let mut a = Trace::new();
        a.span("first", "t", "x", "c", 0, 1, vec![]);
        let mut b = Trace::new();
        b.span("second", "t", "y", "c", 0, 1, vec![]);
        a.merge(b);
        assert_eq!(a.processes(), vec!["first", "second"]);
        let json = a.to_json();
        let first = json.find("\"name\":\"first\"").unwrap();
        let second = json.find("\"name\":\"second\"").unwrap();
        assert!(first < second);
    }

    #[test]
    fn rename_process_retargets_only_matching_events() {
        let mut t = Trace::new();
        t.span("sim", "t", "x", "c", 0, 1, vec![]);
        t.span("other", "t", "y", "c", 0, 1, vec![]);
        t.rename_process("sim", "simulator (charged)");
        assert_eq!(t.processes(), vec!["simulator (charged)", "other"]);
    }

    #[test]
    fn counter_and_instant_shapes() {
        let mut t = Trace::new();
        t.counter("p", "net", "tx bytes", 2_000, 4096.0);
        t.instant("p", "net", "rank poisoned", "fault", 3_000, vec![("code", Arg::from("Kill"))]);
        let json = t.to_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":4096}"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"code\":\"Kill\"}"));
    }

    #[test]
    fn span_args_render_typed_values() {
        let mut t = Trace::new();
        t.span(
            "p",
            "t",
            "transfer",
            "sim",
            0,
            10,
            vec![("bytes", Arg::from(123u64)), ("hit", Arg::from(true)), ("f", Arg::from(0.25))],
        );
        let json = t.to_json();
        assert!(json.contains("\"args\":{\"bytes\":123,\"hit\":true,\"f\":0.25}"), "{json}");
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = Recorder::new();
        rec.span("p", "t", "x", "c", 0, rec.now_ns(), vec![]);
        rec.counter("p", "t", "c", 1.0);
        rec.instant("p", "t", "i", "c", vec![]);
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn enabled_recorder_captures_and_drains() {
        let rec = Recorder::new();
        rec.enable();
        let start = rec.now_ns();
        rec.span("p", "t", "x", "c", start, rec.now_ns(), vec![]);
        rec.counter("p", "t", "depth", 3.0);
        let t = rec.drain();
        assert_eq!(t.len(), 2);
        assert!(rec.drain().is_empty(), "drain empties the log");
        assert!(rec.is_enabled(), "drain does not flip the enable bit");
    }

    #[test]
    fn counters_registry_shares_cells_by_name() {
        let reg = Counters::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.incr();
        b.add(2);
        assert_eq!(reg.get("hits"), 3);
        let gauge = reg.counter("depth");
        gauge.set(5);
        gauge.dec();
        assert_eq!(gauge.get(), 4);
        gauge.set(0);
        assert_eq!(gauge.dec(), 0, "gauges saturate at zero");
        assert_eq!(reg.snapshot(), vec![("hits".to_string(), 3), ("depth".to_string(), 0)]);
        assert_eq!(reg.get("absent"), 0);
    }

    #[test]
    fn global_recorder_is_one_instance() {
        let a = global();
        let b = global();
        assert!(std::ptr::eq(a, b));
    }
}
