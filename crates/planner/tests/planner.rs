//! Planner service integration tests: the concurrency contract (duplicate
//! collapse + byte-identical responses), deadline and budget enforcement,
//! disconnect resilience, and graceful shutdown — all over real sockets.

use mics_planner::{JobSpec, PlanError, PlannerClient, PlannerConfig, PlannerServer, SweepOutcome};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn start() -> PlannerServer {
    PlannerServer::start(PlannerConfig::default()).expect("server must start")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The single-flight contract, end to end: N clients firing the *same*
    /// query concurrently all receive byte-identical response frames, and
    /// the simulator ran exactly once.
    #[test]
    fn concurrent_duplicates_are_byte_identical_with_one_sim_run(
        clients in 2usize..6,
        nodes in 1usize..3,
        micro in 0usize..2,
        accum in 1usize..4,
    ) {
        let server = start();
        let addr = server.addr().to_string();
        let mut spec = JobSpec::mics("bert-1.5b", nodes, 8);
        spec.micro_batch = [4, 8][micro];
        spec.accum = accum;
        let request = format!(
            r#"{{"type":"simulate","id":11,"job":{}}}"#,
            mics_core::ToJson::to_json(&spec).emit()
        );
        let barrier = Arc::new(Barrier::new(clients));
        let responses: Vec<String> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                let request = request.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut c = PlannerClient::connect(&addr).unwrap();
                    barrier.wait();
                    c.request_text(&request).unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect();
        prop_assert!(responses.windows(2).all(|w| w[0] == w[1]),
            "duplicate queries must return byte-identical frames");
        prop_assert!(responses[0].contains(r#""type":"report""#), "{}", responses[0]);
        let (queries, hits, misses, dedup, sim_runs) = server.cache_stats();
        prop_assert_eq!(sim_runs, 1, "N duplicates must cost one simulation");
        prop_assert_eq!(queries, clients as u64);
        prop_assert_eq!(misses, 1, "exactly one leader computed");
        prop_assert_eq!(hits, clients as u64 - 1, "every non-leader resolved as a hit");
        prop_assert!(dedup < clients as u64, "waiters are a subset of the non-leaders");

        // The same numbers, plus evictions, must surface through the wire
        // `stats` request (the counter registry feeds both).
        let mut c = PlannerClient::connect(&addr).unwrap();
        let stats = c.stats().unwrap();
        prop_assert_eq!(stats.sim_runs, 1);
        prop_assert_eq!(stats.cache_hits, hits);
        prop_assert_eq!(stats.dedup_collapsed, dedup);
        prop_assert_eq!(stats.cache_evictions, 0, "unbounded default cache never evicts");
        server.shutdown();
        server.join();
    }
}

#[test]
fn bounded_cache_reports_evictions_through_stats() {
    let cfg = PlannerConfig { cache_capacity: 1, ..PlannerConfig::default() };
    let server = PlannerServer::start(cfg).expect("server must start");
    let mut client = PlannerClient::connect(server.addr()).unwrap();
    // Three distinct jobs through a one-entry cache: two evictions.
    for nodes in 1..=3 {
        client.simulate(&JobSpec::mics("bert-1.5b", nodes, 8), None).unwrap().unwrap();
    }
    assert_eq!(server.cache_evictions(), 2);
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_evictions, 2);
    assert_eq!(stats.cache_entries, 1, "capacity bounds the memoized entries");
    // The evicted first job recomputes rather than hitting.
    client.simulate(&JobSpec::mics("bert-1.5b", 1, 8), None).unwrap().unwrap();
    let (_, _, _, _, sim_runs) = server.cache_stats();
    assert_eq!(sim_runs, 4, "an evicted entry costs a fresh simulation");
    server.shutdown();
    server.join();
}

#[test]
fn zero_deadline_is_rejected_without_simulating() {
    let server = start();
    let mut client = PlannerClient::connect(server.addr()).unwrap();
    let err = client.simulate(&JobSpec::mics("bert-10b", 2, 8), Some(Duration::ZERO)).unwrap_err();
    assert!(matches!(err, PlanError::DeadlineExceeded { .. }), "{err:?}");
    let (_, _, _, _, sim_runs) = server.cache_stats();
    assert_eq!(sim_runs, 0);
    server.shutdown();
    server.join();
}

#[test]
fn budget_exhaustion_rejects_fresh_queries_but_serves_cached_ones() {
    let server = start();
    let mut client = PlannerClient::connect(server.addr()).unwrap();
    let spec = JobSpec::mics("bert-1.5b", 1, 8);

    // Funded: the first simulate runs.
    client.simulate(&spec, None).unwrap().unwrap();

    // Drain the ledger to (effectively) nothing.
    let remaining = client.hello(1.0).unwrap();
    assert_eq!(remaining, 0.0, "grant is below what was already spent");

    // A fresh query is a typed rejection carrying the evidence…
    let mut other = JobSpec::mics("bert-1.5b", 2, 8);
    other.accum = 2;
    match client.simulate(&other, None).unwrap_err() {
        PlanError::BudgetExceeded { needed, remaining } => {
            assert!(needed > 0.0);
            assert_eq!(remaining, 0.0);
        }
        err => panic!("wrong error: {err:?}"),
    }

    // …while the memoized query is still served, for free.
    client.simulate(&spec, None).unwrap().unwrap();
    server.shutdown();
    server.join();
}

#[test]
fn disconnect_mid_sweep_does_not_kill_the_server() {
    let server = start();
    let addr = server.addr().to_string();
    {
        // Raw connection: fire a sweep, read a single frame, vanish.
        use mics_planner::{read_frame, write_frame, PlanStream};
        let jobs: Vec<String> = (0..6)
            .map(|i| mics_core::ToJson::to_json(&JobSpec::mics("bert-1.5b", 1 + i % 2, 8)).emit())
            .collect();
        let mut c = PlanStream::connect(&addr).unwrap();
        write_frame(&mut c, &format!(r#"{{"type":"sweep","id":5,"jobs":[{}]}}"#, jobs.join(",")))
            .unwrap();
        let first = read_frame(&mut c).unwrap();
        assert!(first.contains("sweep_item"), "{first}");
        // Connection dropped here, mid-stream.
    }
    // The server must still answer new clients.
    let mut client = PlannerClient::connect(&addr).unwrap();
    let report = client.simulate(&JobSpec::mics("bert-1.5b", 1, 8), None).unwrap().unwrap();
    assert!(report.samples_per_sec > 0.0);
    server.shutdown();
    server.join();
}

#[test]
fn sweep_covers_fit_oom_and_bad_jobs_in_one_stream() {
    let server = start();
    let mut client = PlannerClient::connect(server.addr()).unwrap();
    let jobs = [
        JobSpec::mics("bert-1.5b", 1, 8),
        JobSpec::mics("100b", 2, 16),     // cannot fit: OOM answer
        JobSpec::mics("bert-1.5b", 1, 3), // 3 does not divide 8: typed error
    ];
    let mut seen = [None, None, None];
    let count = client.sweep(&jobs, None, |i, o| seen[i] = Some(o)).unwrap();
    assert_eq!(count, 3);
    assert!(matches!(seen[0], Some(SweepOutcome::Report(_))));
    assert!(matches!(seen[1], Some(SweepOutcome::Oom(_))));
    match &seen[2] {
        Some(SweepOutcome::Failed(PlanError::BadRequest { reason })) => {
            assert!(reason.contains("does not divide"), "{reason}");
        }
        other => panic!("wrong outcome: {other:?}"),
    }
    server.shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_rejects_stragglers_then_drains() {
    let server = start();
    let mut client = PlannerClient::connect(server.addr()).unwrap();
    client.simulate(&JobSpec::mics("bert-1.5b", 1, 8), None).unwrap().unwrap();
    client.shutdown_server().unwrap();
    // The connection stays readable during the drain; new queries get the
    // typed refusal instead of hanging.
    let err = client.simulate(&JobSpec::mics("bert-1.5b", 2, 8), None).unwrap_err();
    assert!(matches!(err, PlanError::ShuttingDown), "{err:?}");
    server.join();
}

#[test]
fn responses_match_in_process_calls_bit_for_bit() {
    let server = start();
    let mut client = PlannerClient::connect(server.addr()).unwrap();
    for (model, nodes, p) in [("bert-1.5b", 1, 8), ("bert-10b", 2, 8), ("bert-10b", 2, 16)] {
        let spec = JobSpec::mics(model, nodes, p);
        let served = client.simulate(&spec, None).unwrap().unwrap();
        let job = mics_core::TrainingJob {
            workload: mics_model::preset(model, 8).unwrap(),
            cluster: mics_cluster::ClusterSpec::new(
                mics_cluster::InstanceType::preset("p3dn").unwrap(),
                nodes,
            ),
            strategy: mics_core::Strategy::parse(&format!("mics:{p}")).unwrap(),
            accum_steps: 4,
        };
        let direct = mics_core::simulate(&job).unwrap();
        assert_eq!(
            mics_core::ToJson::to_json(&served).emit(),
            mics_core::ToJson::to_json(&direct).emit(),
            "served report must be bit-identical to the in-process simulation ({model})"
        );
    }
    server.shutdown();
    server.join();
}
