//! The planner wire protocol: length-prefixed compact-JSON frames.
//!
//! Framing follows `mics-dataplane::transport::socket`: every frame is a
//! `u32` little-endian payload length followed by that many bytes. Payloads
//! here are UTF-8 compact JSON documents ([`Json::emit`]) rather than the
//! dataplane's binary collective records — planning queries are small,
//! human-debuggable, and latency-insensitive enough that a text wire wins.
//!
//! # Requests
//!
//! ```text
//! {"type":"hello","budget_flops":1e18}
//! {"type":"simulate","id":7,"job":JOB[,"deadline_ms":N]}
//! {"type":"tune","id":8,"job":JOB[,"compression":["none","int8",…]][,"deadline_ms":N]}
//! {"type":"sweep","id":9,"jobs":[JOB,…][,"deadline_ms":N]}
//! {"type":"stats","id":10}
//! {"type":"shutdown"}
//! ```
//!
//! where `JOB` is `{"model":"bert-10b","micro_batch":8,"instance":"p3dn",
//! "nodes":2,"strategy":"mics:8","accum":4}` — model names from
//! [`mics_model::preset_names`], instances from
//! [`mics_cluster::InstanceType::preset`], strategies in the
//! [`mics_core::Strategy::parse`] grammar (`tune` ignores `strategy`).
//!
//! # Responses
//!
//! `simulate` answers `{"type":"report","id":N,"report":{…}}` or — when the
//! memory model rejects the job, which is a *result*, not an error —
//! `{"type":"oom","id":N,"oom":{…}}`. `tune` answers
//! `{"type":"tuned","id":N,"best":{…},"report":{…},"explored":K}` (or
//! `oom`). `sweep` streams one `{"type":"sweep_item","id":N,"index":I,…}`
//! per job *as each completes*, closed by
//! `{"type":"sweep_done","id":N,"count":K}`. Failures answer
//! `{"type":"error","id":N,"code":…,"message":…}` with codes from
//! [`PlanError`].

use mics_core::{Json, ToJson};
use std::io::{Read, Write};
use std::time::Duration;

/// Upper bound on one frame's payload. Planning documents are small; a
/// larger length prefix is a corrupt or hostile stream.
pub const MAX_FRAME: usize = 1 << 24;

/// Write one `u32`-length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    assert!(bytes.len() <= MAX_FRAME, "frame over MAX_FRAME");
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame's payload (blocking).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Why the planner refused or abandoned a query — the service-side analogue
/// of the dataplane's `CommError` taxonomy (`Timeout { waited }`,
/// `Io { kind }`, …): every failure mode is a typed variant with the
/// evidence a caller needs, stringly-typed only at the wire boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The request does not decode to a job (unknown model/instance/
    /// strategy, partition size not dividing the cluster, malformed JSON).
    BadRequest {
        /// What was wrong with it.
        reason: String,
    },
    /// The connection's FLOP ledger cannot cover this query.
    BudgetExceeded {
        /// Estimated simulated FLOPs this query would cost.
        needed: f64,
        /// FLOPs left in the ledger.
        remaining: f64,
    },
    /// The query's deadline passed before a result was ready (queued too
    /// long, or waited on an in-flight duplicate past the bound) — the
    /// planner's `CommError::Timeout`.
    DeadlineExceeded {
        /// How long the query waited before giving up.
        waited: Duration,
    },
    /// The bounded work queue was full — backpressure, try again.
    Overloaded {
        /// The queue depth that was full.
        depth: usize,
    },
    /// The server is draining; no new queries are accepted.
    ShuttingDown,
    /// The transport failed mid-query — the planner's `CommError::Io`.
    Io {
        /// Description of the underlying I/O error.
        message: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            PlanError::BudgetExceeded { needed, remaining } => write!(
                f,
                "budget exceeded: query needs {needed:.3e} simulated FLOPs, {remaining:.3e} left"
            ),
            PlanError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after {waited:?}")
            }
            PlanError::Overloaded { depth } => {
                write!(f, "server overloaded (queue of {depth} full)")
            }
            PlanError::ShuttingDown => write!(f, "server is shutting down"),
            PlanError::Io { message } => write!(f, "transport error: {message}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl PlanError {
    /// The stable wire code of this variant.
    pub fn code(&self) -> &'static str {
        match self {
            PlanError::BadRequest { .. } => "BadRequest",
            PlanError::BudgetExceeded { .. } => "BudgetExceeded",
            PlanError::DeadlineExceeded { .. } => "DeadlineExceeded",
            PlanError::Overloaded { .. } => "Overloaded",
            PlanError::ShuttingDown => "ShuttingDown",
            PlanError::Io { .. } => "Io",
        }
    }

    /// Encode as an `error` response frame for request `id`.
    pub fn to_response(&self, id: u64) -> Json {
        let mut pairs = vec![
            ("type".to_string(), Json::from("error")),
            ("id".to_string(), Json::Num(id as f64)),
            ("code".to_string(), Json::from(self.code())),
            ("message".to_string(), Json::from(self.to_string().as_str())),
        ];
        match self {
            PlanError::BudgetExceeded { needed, remaining } => {
                pairs.push(("needed".into(), Json::Num(*needed)));
                pairs.push(("remaining".into(), Json::Num(*remaining)));
            }
            PlanError::DeadlineExceeded { waited } => {
                pairs.push(("waited_ms".into(), Json::Num(waited.as_secs_f64() * 1e3)));
            }
            PlanError::Overloaded { depth } => {
                pairs.push(("depth".into(), Json::Num(*depth as f64)));
            }
            _ => {}
        }
        Json::Obj(pairs)
    }

    /// Decode an `error` response frame (`None` if `doc` is not one).
    pub fn from_response(doc: &Json) -> Option<Self> {
        if doc.get("type")?.as_str()? != "error" {
            return None;
        }
        let message =
            doc.get("message").and_then(Json::as_str).unwrap_or("unspecified").to_string();
        Some(match doc.get("code")?.as_str()? {
            "BudgetExceeded" => PlanError::BudgetExceeded {
                needed: doc.get("needed").and_then(Json::as_num).unwrap_or(0.0),
                remaining: doc.get("remaining").and_then(Json::as_num).unwrap_or(0.0),
            },
            "DeadlineExceeded" => PlanError::DeadlineExceeded {
                waited: Duration::from_secs_f64(
                    doc.get("waited_ms").and_then(Json::as_num).unwrap_or(0.0).max(0.0) / 1e3,
                ),
            },
            "Overloaded" => PlanError::Overloaded {
                depth: doc.get("depth").and_then(Json::as_num).unwrap_or(0.0) as usize,
            },
            "ShuttingDown" => PlanError::ShuttingDown,
            "Io" => PlanError::Io { message },
            _ => PlanError::BadRequest { reason: message },
        })
    }
}

/// One planning job as it travels on the wire: preset names plus geometry,
/// the same grammar `mics-sim` speaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Model preset name (see [`mics_model::preset_names`]).
    pub model: String,
    /// Micro-batch size per device.
    pub micro_batch: usize,
    /// Instance preset: `p3dn`, `p4d`, or `dgx`.
    pub instance: String,
    /// Cluster nodes.
    pub nodes: usize,
    /// Strategy in the [`mics_core::Strategy::parse`] grammar (ignored by
    /// `tune`, which searches strategies itself).
    pub strategy: String,
    /// Gradient-accumulation depth.
    pub accum: usize,
}

impl JobSpec {
    /// A MiCS paper-default job: `model` on `nodes` p3dn nodes, micro-batch
    /// 8, accumulation 4, partition size `p`.
    pub fn mics(model: &str, nodes: usize, p: usize) -> Self {
        JobSpec {
            model: model.to_string(),
            micro_batch: 8,
            instance: "p3dn".to_string(),
            nodes,
            strategy: format!("mics:{p}"),
            accum: 4,
        }
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("model", Json::from(self.model.as_str())),
            ("micro_batch", Json::Num(self.micro_batch as f64)),
            ("instance", Json::from(self.instance.as_str())),
            ("nodes", Json::Num(self.nodes as f64)),
            ("strategy", Json::from(self.strategy.as_str())),
            ("accum", Json::Num(self.accum as f64)),
        ])
    }
}

impl JobSpec {
    /// Decode the [`ToJson`] encoding.
    pub fn from_json(doc: &Json) -> Option<Self> {
        Some(JobSpec {
            model: doc.get("model")?.as_str()?.to_string(),
            micro_batch: doc.get("micro_batch")?.as_num()? as usize,
            instance: doc.get("instance")?.as_str()?.to_string(),
            nodes: doc.get("nodes")?.as_num()? as usize,
            strategy: doc.get("strategy")?.as_str()?.to_string(),
            accum: doc.get("accum")?.as_num()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"type":"stats","id":1}"#).unwrap();
        write_frame(&mut buf, "x").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), r#"{"type":"stats","id":1}"#);
        assert_eq!(read_frame(&mut r).unwrap(), "x");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn oversized_and_empty_frames_rejected() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &huge[..]).is_err());
        let mut empty = Vec::new();
        empty.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_frame(&mut &empty[..]).is_err());
    }

    #[test]
    fn errors_round_trip_the_wire() {
        let cases = [
            PlanError::BadRequest { reason: "no such model".into() },
            PlanError::BudgetExceeded { needed: 1e15, remaining: 2e14 },
            PlanError::DeadlineExceeded { waited: Duration::from_millis(1500) },
            PlanError::Overloaded { depth: 64 },
            PlanError::ShuttingDown,
            PlanError::Io { message: "broken pipe".into() },
        ];
        for e in cases {
            let doc = Json::parse(&e.to_response(9).emit()).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_num), Some(9.0));
            let back = PlanError::from_response(&doc).unwrap();
            match (&e, &back) {
                // The reason string is folded into `message` on the wire.
                (PlanError::BadRequest { .. }, PlanError::BadRequest { .. }) => {}
                (PlanError::Io { .. }, PlanError::Io { .. }) => {}
                _ => assert_eq!(back, e),
            }
        }
    }

    #[test]
    fn job_spec_round_trips() {
        let spec = JobSpec::mics("bert-10b", 2, 8);
        assert_eq!(JobSpec::from_json(&spec.to_json()), Some(spec));
        assert_eq!(JobSpec::from_json(&Json::Null), None);
    }
}
