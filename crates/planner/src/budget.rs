//! Per-client FLOP budget accounting.
//!
//! A planning service fronting a shared simulator needs admission control:
//! a single `sweep` over a large grid is thousands of simulations, and a
//! multi-tenant deployment must be able to bound what one client can spend.
//! The unit of account is *simulated training FLOPs* — the work the
//! requested plan would model, which is also what drives the simulator's
//! own cost — so the ledger is stable across server hardware.
//!
//! Each connection gets a [`FlopLedger`] seeded by the server default or
//! the client's `hello` frame. Queries are charged **before** they run and
//! **only on cache miss** — a served-from-cache answer is free, which both
//! rewards well-behaved clients and keeps duplicate bursts from draining
//! the budget N times for one simulation.

use mics_cluster::ClusterSpec;
use mics_core::candidate_partition_sizes;
use mics_model::WorkloadSpec;

use crate::protocol::PlanError;

/// Estimated simulated FLOPs for one `simulate` query: the modelled
/// cluster-wide work of one training iteration.
pub fn simulate_cost(workload: &WorkloadSpec, cluster: &ClusterSpec, accum_steps: usize) -> f64 {
    workload.total_flops() * accum_steps.max(1) as f64 * cluster.total_devices() as f64
}

/// Estimated simulated FLOPs for one `tune` query: one `simulate` per
/// candidate the search will visit (partition sizes × hierarchical toggle ×
/// compression options).
pub fn tune_cost(
    workload: &WorkloadSpec,
    cluster: &ClusterSpec,
    accum_steps: usize,
    compression_options: usize,
) -> f64 {
    let candidates = candidate_partition_sizes(cluster).len() * 2 * compression_options.max(1);
    simulate_cost(workload, cluster, accum_steps) * candidates as f64
}

/// A spend-down FLOP account for one client connection.
#[derive(Debug, Clone)]
pub struct FlopLedger {
    granted: f64,
    spent: f64,
}

impl FlopLedger {
    /// A ledger with `granted` FLOPs of headroom. Non-finite or negative
    /// grants are clamped to zero (nothing runs until a sane `hello`).
    pub fn new(granted: f64) -> Self {
        let granted = if granted.is_finite() && granted > 0.0 { granted } else { 0.0 };
        FlopLedger { granted, spent: 0.0 }
    }

    /// An effectively unlimited ledger (the in-process/bench default).
    pub fn unlimited() -> Self {
        FlopLedger { granted: f64::MAX, spent: 0.0 }
    }

    /// FLOPs still available.
    pub fn remaining(&self) -> f64 {
        (self.granted - self.spent).max(0.0)
    }

    /// FLOPs charged so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Replace the grant (a repeated `hello` re-provisions the connection;
    /// spend carries over).
    pub fn regrant(&mut self, granted: f64) {
        if granted.is_finite() && granted > 0.0 {
            self.granted = granted;
        }
    }

    /// Return `cost` FLOPs to the ledger. The server charges optimistically
    /// before entering the cache and refunds queries that were served from
    /// it (hit or collapsed duplicate) or failed before simulating — the net
    /// effect is that only cache misses that actually ran are billed.
    pub fn refund(&mut self, cost: f64) {
        if cost.is_finite() && cost > 0.0 {
            self.spent = (self.spent - cost).max(0.0);
        }
    }

    /// Charge `cost` FLOPs, or reject the query without charging anything.
    pub fn charge(&mut self, cost: f64) -> Result<(), PlanError> {
        let cost = if cost.is_finite() && cost > 0.0 { cost } else { 0.0 };
        if cost > self.remaining() {
            return Err(PlanError::BudgetExceeded { needed: cost, remaining: self.remaining() });
        }
        self.spent += cost;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mics_cluster::InstanceType;
    use mics_model::TransformerConfig;

    #[test]
    fn ledger_charges_until_exhausted() {
        let mut ledger = FlopLedger::new(100.0);
        ledger.charge(60.0).unwrap();
        assert_eq!(ledger.remaining(), 40.0);
        let err = ledger.charge(50.0).unwrap_err();
        match err {
            PlanError::BudgetExceeded { needed, remaining } => {
                assert_eq!(needed, 50.0);
                assert_eq!(remaining, 40.0);
            }
            other => panic!("wrong error: {other:?}"),
        }
        // The failed charge did not touch the balance.
        ledger.charge(40.0).unwrap();
        assert_eq!(ledger.remaining(), 0.0);
        // A refund restores headroom (the cache-hit path).
        ledger.refund(30.0);
        assert_eq!(ledger.remaining(), 30.0);
    }

    #[test]
    fn nonsense_grants_are_clamped() {
        assert_eq!(FlopLedger::new(f64::NAN).remaining(), 0.0);
        assert_eq!(FlopLedger::new(-5.0).remaining(), 0.0);
        let mut ledger = FlopLedger::new(10.0);
        ledger.regrant(f64::INFINITY); // ignored
        assert_eq!(ledger.remaining(), 10.0);
        ledger.regrant(25.0);
        assert_eq!(ledger.remaining(), 25.0);
    }

    #[test]
    fn tune_costs_scale_with_the_search_space() {
        let workload = TransformerConfig::bert_10b().workload(8);
        let cluster = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4);
        let sim = simulate_cost(&workload, &cluster, 4);
        assert!(sim > 0.0);
        let tune1 = tune_cost(&workload, &cluster, 4, 1);
        let tune2 = tune_cost(&workload, &cluster, 4, 2);
        assert!(tune1 > sim, "tuning visits many candidates");
        assert_eq!(tune2, 2.0 * tune1);
    }
}
