//! `mics-planner` — a high-throughput planning/costing service over the
//! MiCS simulator and tuner.
//!
//! Capacity planning is a *query* workload: "what will BERT-50B cost on 16
//! p4d nodes?", "which partition size should this job use?", asked by many
//! tools, sweeps and people against the same deterministic simulator. This
//! crate packages that workload as a long-running server instead of a
//! per-query process launch:
//!
//! * **Protocol** ([`protocol`]) — length-prefixed compact-JSON frames over
//!   TCP or Unix-domain sockets (the dataplane's framing idiom), with
//!   `simulate`, `tune`, streamed `sweep`, `stats`, `hello` (budget
//!   provisioning) and `shutdown` requests, and a typed [`PlanError`]
//!   taxonomy mirroring the dataplane's `CommError`.
//! * **Server** ([`server`]) — a worker pool over a bounded queue with a
//!   single-flight memoization cache ([`cache`]) keyed by canonical config
//!   hashes (`mics_core::canonical`), in-flight dedup of concurrent
//!   identical queries, per-connection FLOP budgets ([`budget`]),
//!   per-query deadlines, typed backpressure (`Overloaded`) and graceful
//!   drain on shutdown.
//! * **Client** ([`client`]) — a typed [`PlannerClient`] with
//!   bounded-backoff connection retry, plus raw-text access for
//!   byte-identity assertions.
//!
//! Determinism is the contract that makes the cache correct: the simulator
//! is deterministic, `Json::emit` is deterministic, and reports round-trip
//! JSON losslessly, so a memoized response is byte-identical to a freshly
//! computed one — concurrent duplicate queries all receive the same bytes
//! from a single simulation run.

#![warn(missing_docs)]

/// Process name every planner trace event records under.
pub const PLANNER_PROCESS: &str = "planner";

pub mod budget;
pub mod cache;
pub mod client;
pub mod net;
pub mod protocol;
pub mod server;

pub use budget::{simulate_cost, tune_cost, FlopLedger};
pub use cache::{CacheOutcome, CacheStats, PlanCache};
pub use client::{PlannerClient, ServerStats, SweepOutcome, TuneOutcome};
pub use net::{PlanListener, PlanStream};
pub use protocol::{read_frame, write_frame, JobSpec, PlanError, MAX_FRAME};
pub use server::{PlannerConfig, PlannerServer};
