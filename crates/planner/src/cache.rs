//! Single-flight memoization: the cache that makes repeated planning
//! queries O(1) and concurrent duplicates cost one simulation.
//!
//! Keys are [`CanonicalKey`]s (see `mics_core::canonical`), so two queries
//! that *mean* the same job collide regardless of how they were spelled on
//! the wire. Values are the fully-computed response payloads as [`Json`]
//! documents — deterministic [`Json::emit`] then guarantees a cache-served
//! response is byte-identical to the freshly-computed one.
//!
//! Concurrency is classic single-flight: the first query for a key inserts
//! a `Running` marker and computes; duplicates arriving meanwhile block on
//! a condvar and are all served by that one run (the *dedup collapse* the
//! `ext_serve` bench measures). A panic in the compute closure removes the
//! marker and wakes waiters (one of them recomputes), so a poisoned entry
//! cannot wedge the server.
//!
//! Behaviour counters live in a [`mics_trace::Counters`] registry
//! ([`CacheStats`]), so the same cells back the `stats` request, the
//! `cache_stats` accessor, and — when the global recorder is enabled —
//! trace counter tracks. An optional capacity bounds the completed entries
//! FIFO-style; evictions tick a counter and emit an instant event.

use crate::PLANNER_PROCESS;
use mics_core::{CanonicalKey, Json};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::PlanError;

/// One cache slot: a computation in flight, or its result.
enum Slot {
    /// Some worker is computing this key; wait on the condvar.
    Running,
    /// The memoized response payload, stamped with its completion time so
    /// an optional TTL can age it out.
    Done(Arc<Json>, Instant),
}

/// How a [`PlanCache::get_or_compute`] call was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from an already-completed entry.
    Hit,
    /// This call ran the computation (and is the one the budget layer
    /// bills).
    Leader,
    /// Collapsed onto another caller's in-flight run.
    Waiter,
}

impl CacheOutcome {
    /// Whether the response came from the cache rather than a fresh run —
    /// everything but the leader.
    pub fn served_from_cache(self) -> bool {
        !matches!(self, CacheOutcome::Leader)
    }

    /// Stable lowercase label, used as a trace-span argument.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Leader => "leader",
            CacheOutcome::Waiter => "waiter",
        }
    }
}

/// Monotonic counters describing cache behaviour since server start,
/// backed by a [`mics_trace::Counters`] registry.
#[derive(Debug)]
pub struct CacheStats {
    registry: mics_trace::Counters,
    /// Queries that went through the cache at all.
    pub queries: mics_trace::Counter,
    /// Served from a completed entry (includes resolved waiters).
    pub hits: mics_trace::Counter,
    /// Computed fresh (includes the leader of each duplicate burst).
    pub misses: mics_trace::Counter,
    /// Duplicates that waited on an in-flight run instead of computing.
    pub dedup_collapsed: mics_trace::Counter,
    /// Underlying simulate/tune executions actually run.
    pub sim_runs: mics_trace::Counter,
    /// Completed entries dropped to stay within the capacity bound.
    pub evictions: mics_trace::Counter,
    /// Completed entries aged out by the TTL (lazy expiry on lookup).
    pub ttl_expiries: mics_trace::Counter,
}

impl Default for CacheStats {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheStats {
    /// A fresh registry with every counter at zero.
    pub fn new() -> CacheStats {
        let registry = mics_trace::Counters::new();
        CacheStats {
            queries: registry.counter("planner.cache.queries"),
            hits: registry.counter("planner.cache.hits"),
            misses: registry.counter("planner.cache.misses"),
            dedup_collapsed: registry.counter("planner.cache.waiters"),
            sim_runs: registry.counter("planner.sim_runs"),
            evictions: registry.counter("planner.cache.evictions"),
            ttl_expiries: registry.counter("planner.cache.ttl_expiries"),
            registry,
        }
    }

    /// The backing registry (for snapshotting every cell by name).
    pub fn registry(&self) -> &mics_trace::Counters {
        &self.registry
    }

    /// Snapshot as plain numbers `(queries, hits, misses, dedup, sim_runs)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.queries.get(),
            self.hits.get(),
            self.misses.get(),
            self.dedup_collapsed.get(),
            self.sim_runs.get(),
        )
    }
}

/// Slot map plus the completed-entry FIFO the capacity bound evicts from,
/// under one lock so depth checks and insertions are atomic.
struct Inner {
    slots: HashMap<CanonicalKey, Slot>,
    /// Completed keys in completion order (every `Done` key is here exactly
    /// once; `Running` markers are not).
    done_order: VecDeque<CanonicalKey>,
}

/// The single-flight memo cache.
pub struct PlanCache {
    inner: Mutex<Inner>,
    ready: Condvar,
    /// Maximum completed entries kept (0 = unbounded). Oldest-first
    /// eviction: planning workloads revisit recent configurations.
    capacity: usize,
    /// Maximum age of a completed entry. Expiry is lazy: a stale entry is
    /// dropped (and recomputed) by the next lookup that touches it.
    ttl: Option<Duration>,
    /// Behaviour counters, exposed via the `stats` request.
    pub stats: CacheStats,
}

/// Removes a `Running` marker if the compute closure unwinds, so waiters
/// retry instead of blocking forever.
struct RunningGuard<'a> {
    cache: &'a PlanCache,
    key: CanonicalKey,
    armed: bool,
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.inner.lock().unwrap();
            if matches!(inner.slots.get(&self.key), Some(Slot::Running)) {
                inner.slots.remove(&self.key);
            }
            drop(inner);
            self.cache.ready.notify_all();
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty cache keeping at most `capacity` completed entries
    /// (0 = unbounded), evicting oldest-first.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_ttl(capacity, None)
    }

    /// An empty cache bounded by `capacity` (0 = unbounded) whose completed
    /// entries additionally expire `ttl` after completion (`None` = never).
    /// Expiry is lazy — checked on lookup — so an idle cache holds stale
    /// entries but never serves them.
    pub fn with_ttl(capacity: usize, ttl: Option<Duration>) -> Self {
        PlanCache {
            inner: Mutex::new(Inner { slots: HashMap::new(), done_order: VecDeque::new() }),
            ready: Condvar::new(),
            capacity,
            ttl,
            stats: CacheStats::new(),
        }
    }

    /// The `cache eviction` trace instant, tagged with why the entry left
    /// (`"capacity"` or `"ttl"`).
    fn eviction_instant(reason: &'static str) {
        mics_trace::global().instant(
            PLANNER_PROCESS,
            "cache",
            "cache eviction",
            "cache",
            vec![("reason", mics_trace::Arg::from(reason))],
        );
    }

    /// Drop `key`'s completed entry if the TTL says it is stale. Returns
    /// `true` when an entry was removed (the caller now sees a miss).
    fn expire_if_stale(&self, inner: &mut Inner, key: CanonicalKey) -> bool {
        let Some(ttl) = self.ttl else { return false };
        let stale = matches!(inner.slots.get(&key), Some(Slot::Done(_, at)) if at.elapsed() >= ttl);
        if !stale {
            return false;
        }
        inner.slots.remove(&key);
        inner.done_order.retain(|k| *k != key);
        self.stats.ttl_expiries.incr();
        Self::eviction_instant("ttl");
        true
    }

    /// Entries currently memoized (completed only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().done_order.len()
    }

    /// Whether no results are memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking lookup of a *completed* entry. A hit counts toward the
    /// stats; a miss (including an in-flight `Running` slot) counts nothing
    /// — the caller is expected to follow up with
    /// [`PlanCache::get_or_compute`], which does the accounting. This is
    /// what lets the budget layer serve memoized answers to clients whose
    /// FLOP ledger is already exhausted: cached responses are free.
    pub fn peek(&self, key: CanonicalKey) -> Option<Arc<Json>> {
        let mut inner = self.inner.lock().unwrap();
        if self.expire_if_stale(&mut inner, key) {
            return None;
        }
        match inner.slots.get(&key) {
            Some(Slot::Done(v, _)) => {
                self.stats.queries.incr();
                self.stats.hits.incr();
                Some(Arc::clone(v))
            }
            _ => None,
        }
    }

    /// Look up `key`, or compute it exactly once across all concurrent
    /// callers. `deadline` bounds how long a duplicate waits for the
    /// in-flight leader. `compute` runs *without* the cache lock held.
    ///
    /// Returns the payload and how the call was served — the budget layer
    /// charges only the [`CacheOutcome::Leader`] that actually simulated.
    pub fn get_or_compute(
        &self,
        key: CanonicalKey,
        deadline: Instant,
        compute: impl FnOnce() -> Json,
    ) -> Result<(Arc<Json>, CacheOutcome), PlanError> {
        self.stats.queries.incr();
        let mut inner = self.inner.lock().unwrap();
        loop {
            self.expire_if_stale(&mut inner, key);
            match inner.slots.get(&key) {
                Some(Slot::Done(v, _)) => {
                    self.stats.hits.incr();
                    return Ok((Arc::clone(v), CacheOutcome::Hit));
                }
                Some(Slot::Running) => {
                    self.stats.dedup_collapsed.incr();
                    let started = Instant::now();
                    // Wait for the leader; re-check on every wake. A missing
                    // entry after a wake means the leader panicked — fall
                    // through and become the new leader.
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(PlanError::DeadlineExceeded {
                                waited: now.duration_since(started),
                            });
                        }
                        let (guard, timeout) =
                            self.ready.wait_timeout(inner, deadline.duration_since(now)).unwrap();
                        inner = guard;
                        match inner.slots.get(&key) {
                            Some(Slot::Done(v, _)) => {
                                self.stats.hits.incr();
                                return Ok((Arc::clone(v), CacheOutcome::Waiter));
                            }
                            Some(Slot::Running) if timeout.timed_out() => {
                                return Err(PlanError::DeadlineExceeded {
                                    waited: Instant::now().duration_since(started),
                                });
                            }
                            Some(Slot::Running) => continue,
                            None => break, // leader died; take over
                        }
                    }
                }
                None => {
                    inner.slots.insert(key, Slot::Running);
                    drop(inner);
                    self.stats.misses.incr();
                    self.stats.sim_runs.incr();
                    let mut guard = RunningGuard { cache: self, key, armed: true };
                    let value = Arc::new(compute());
                    guard.armed = false;
                    let mut inner = self.inner.lock().unwrap();
                    inner.slots.insert(key, Slot::Done(Arc::clone(&value), Instant::now()));
                    inner.done_order.push_back(key);
                    while self.capacity > 0 && inner.done_order.len() > self.capacity {
                        let Some(old) = inner.done_order.pop_front() else { break };
                        inner.slots.remove(&old);
                        self.stats.evictions.incr();
                        Self::eviction_instant("capacity");
                    }
                    drop(inner);
                    self.ready.notify_all();
                    return Ok((value, CacheOutcome::Leader));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn key(n: u64) -> CanonicalKey {
        CanonicalKey([n, !n])
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PlanCache::new();
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            Json::from("v")
        };
        let (a, outcome_a) = cache.get_or_compute(key(1), far(), compute).unwrap();
        let (b, outcome_b) = cache.get_or_compute(key(1), far(), compute).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(a, b);
        assert_eq!(outcome_a, CacheOutcome::Leader);
        assert_eq!(outcome_b, CacheOutcome::Hit);
        assert!(!outcome_a.served_from_cache() && outcome_b.served_from_cache());
        assert_eq!(cache.stats.snapshot(), (2, 1, 1, 0, 1));
    }

    #[test]
    fn concurrent_duplicates_collapse_to_one_run() {
        let cache = Arc::new(PlanCache::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                std::thread::spawn(move || {
                    cache
                        .get_or_compute(key(2), far(), move || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the slot long enough that peers pile up.
                            std::thread::sleep(Duration::from_millis(50));
                            Json::from("slow")
                        })
                        .unwrap()
                        .0
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let (queries, hits, misses, dedup, sim_runs) = cache.stats.snapshot();
        assert_eq!(queries, 8);
        assert_eq!(misses, 1);
        assert_eq!(sim_runs, 1);
        assert_eq!(hits + dedup, 7 + dedup, "waiters resolve as hits");
        assert!(dedup >= 1, "at least one duplicate must have waited");
    }

    #[test]
    fn waiter_deadline_expires_while_leader_runs() {
        let cache = Arc::new(PlanCache::new());
        let c2 = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            c2.get_or_compute(key(3), far(), || {
                std::thread::sleep(Duration::from_millis(200));
                Json::from("late")
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30)); // let the leader start
        let err = cache
            .get_or_compute(key(3), Instant::now() + Duration::from_millis(20), || {
                unreachable!("duplicate must not compute")
            })
            .unwrap_err();
        assert!(matches!(err, PlanError::DeadlineExceeded { .. }), "{err:?}");
        leader.join().unwrap();
    }

    #[test]
    fn panicking_leader_does_not_wedge_the_key() {
        let cache = Arc::new(PlanCache::new());
        let c2 = Arc::clone(&cache);
        let crashed = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(key(4), far(), || panic!("boom"))
            }));
        });
        crashed.join().unwrap();
        // The key is free again: a fresh caller computes successfully.
        let (v, outcome) = cache.get_or_compute(key(4), far(), || Json::from("recovered")).unwrap();
        assert_eq!(*v, Json::from("recovered"));
        assert_eq!(outcome, CacheOutcome::Leader);
    }

    #[test]
    fn capacity_bound_evicts_oldest_completed_entry() {
        let cache = PlanCache::with_capacity(2);
        for n in 10..13 {
            let (_, outcome) = cache.get_or_compute(key(n), far(), || Json::Num(n as f64)).unwrap();
            assert_eq!(outcome, CacheOutcome::Leader);
        }
        assert_eq!(cache.len(), 2, "capacity bounds the completed entries");
        assert_eq!(cache.stats.evictions.get(), 1);
        // The oldest key was evicted and recomputes; the newest still hits.
        assert!(cache.peek(key(10)).is_none());
        let (_, outcome) = cache.get_or_compute(key(12), far(), || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let (_, outcome) = cache.get_or_compute(key(10), far(), || Json::from("again")).unwrap();
        assert_eq!(outcome, CacheOutcome::Leader);
        assert_eq!(cache.stats.evictions.get(), 2, "re-inserting evicts the next oldest");
    }

    #[test]
    fn ttl_expires_entries_lazily() {
        let cache = PlanCache::with_ttl(0, Some(Duration::from_millis(40)));
        let (_, outcome) = cache.get_or_compute(key(30), far(), || Json::from("v1")).unwrap();
        assert_eq!(outcome, CacheOutcome::Leader);
        // Fresh enough: a hit, and still memoized.
        let (_, outcome) = cache.get_or_compute(key(30), far(), || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cache.len(), 1);
        std::thread::sleep(Duration::from_millis(60));
        // Stale: peek refuses to serve it, the next compute leads again,
        // and the expiry is accounted separately from capacity evictions.
        assert!(cache.peek(key(30)).is_none());
        let (v, outcome) = cache.get_or_compute(key(30), far(), || Json::from("v2")).unwrap();
        assert_eq!(outcome, CacheOutcome::Leader);
        assert_eq!(*v, Json::from("v2"));
        assert_eq!(cache.stats.ttl_expiries.get(), 1);
        assert_eq!(cache.stats.evictions.get(), 0);
    }

    #[test]
    fn ttl_expiry_keeps_capacity_accounting_consistent() {
        // An expired entry leaves the FIFO too: refilling after expiry must
        // not trigger a bogus capacity eviction.
        let cache = PlanCache::with_ttl(2, Some(Duration::from_millis(30)));
        let _ = cache.get_or_compute(key(40), far(), || Json::from("a"));
        let _ = cache.get_or_compute(key(41), far(), || Json::from("b"));
        std::thread::sleep(Duration::from_millis(50));
        assert!(cache.peek(key(40)).is_none());
        assert!(cache.peek(key(41)).is_none());
        assert_eq!(cache.len(), 0, "expired entries left the FIFO");
        let _ = cache.get_or_compute(key(42), far(), || Json::from("c"));
        let _ = cache.get_or_compute(key(43), far(), || Json::from("d"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats.evictions.get(), 0, "no capacity pressure yet");
        assert_eq!(cache.stats.ttl_expiries.get(), 2);
    }

    #[test]
    fn stats_cells_are_readable_through_the_registry() {
        let cache = PlanCache::new();
        let _ = cache.get_or_compute(key(20), far(), || Json::from("v"));
        let _ = cache.peek(key(20));
        let reg = cache.stats.registry();
        assert_eq!(reg.get("planner.cache.queries"), 2);
        assert_eq!(reg.get("planner.cache.hits"), 1);
        assert_eq!(reg.get("planner.sim_runs"), 1);
        assert_eq!(reg.get("planner.cache.evictions"), 0);
    }
}
