//! Single-flight memoization: the cache that makes repeated planning
//! queries O(1) and concurrent duplicates cost one simulation.
//!
//! Keys are [`CanonicalKey`]s (see `mics_core::canonical`), so two queries
//! that *mean* the same job collide regardless of how they were spelled on
//! the wire. Values are the fully-computed response payloads as [`Json`]
//! documents — deterministic [`Json::emit`] then guarantees a cache-served
//! response is byte-identical to the freshly-computed one.
//!
//! Concurrency is classic single-flight: the first query for a key inserts
//! a `Running` marker and computes; duplicates arriving meanwhile block on
//! a condvar and are all served by that one run (the *dedup collapse* the
//! `ext_serve` bench measures). A panic in the compute closure removes the
//! marker and wakes waiters (one of them recomputes), so a poisoned entry
//! cannot wedge the server.

use mics_core::{CanonicalKey, Json};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::protocol::PlanError;

/// One cache slot: a computation in flight, or its result.
enum Slot {
    /// Some worker is computing this key; wait on the condvar.
    Running,
    /// The memoized response payload.
    Done(Arc<Json>),
}

/// Monotonic counters describing cache behaviour since server start.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Queries that went through the cache at all.
    pub queries: AtomicU64,
    /// Served from a completed entry.
    pub hits: AtomicU64,
    /// Computed fresh (includes the leader of each duplicate burst).
    pub misses: AtomicU64,
    /// Duplicates that waited on an in-flight run instead of computing.
    pub dedup_collapsed: AtomicU64,
    /// Underlying simulate/tune executions actually run.
    pub sim_runs: AtomicU64,
}

impl CacheStats {
    /// Snapshot as plain numbers `(queries, hits, misses, dedup, sim_runs)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.queries.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.dedup_collapsed.load(Ordering::Relaxed),
            self.sim_runs.load(Ordering::Relaxed),
        )
    }
}

/// The single-flight memo cache.
pub struct PlanCache {
    slots: Mutex<HashMap<CanonicalKey, Slot>>,
    ready: Condvar,
    /// Behaviour counters, exposed via the `stats` request.
    pub stats: CacheStats,
}

/// Removes a `Running` marker if the compute closure unwinds, so waiters
/// retry instead of blocking forever.
struct RunningGuard<'a> {
    cache: &'a PlanCache,
    key: CanonicalKey,
    armed: bool,
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut slots = self.cache.slots.lock().unwrap();
            if matches!(slots.get(&self.key), Some(Slot::Running)) {
                slots.remove(&self.key);
            }
            drop(slots);
            self.cache.ready.notify_all();
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            stats: CacheStats::default(),
        }
    }

    /// Entries currently memoized (completed only).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().values().filter(|s| matches!(s, Slot::Done(_))).count()
    }

    /// Whether no results are memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking lookup of a *completed* entry. A hit counts toward the
    /// stats; a miss (including an in-flight `Running` slot) counts nothing
    /// — the caller is expected to follow up with
    /// [`PlanCache::get_or_compute`], which does the accounting. This is
    /// what lets the budget layer serve memoized answers to clients whose
    /// FLOP ledger is already exhausted: cached responses are free.
    pub fn peek(&self, key: CanonicalKey) -> Option<Arc<Json>> {
        let slots = self.slots.lock().unwrap();
        match slots.get(&key) {
            Some(Slot::Done(v)) => {
                self.stats.queries.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(v))
            }
            _ => None,
        }
    }

    /// Look up `key`, or compute it exactly once across all concurrent
    /// callers. `deadline` bounds how long a duplicate waits for the
    /// in-flight leader. `compute` runs *without* the cache lock held.
    ///
    /// Returns the payload and whether this call was served from cache
    /// (hit or collapsed duplicate) — the budget layer charges only the
    /// leader that actually simulated.
    pub fn get_or_compute(
        &self,
        key: CanonicalKey,
        deadline: Instant,
        compute: impl FnOnce() -> Json,
    ) -> Result<(Arc<Json>, bool), PlanError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        loop {
            match slots.get(&key) {
                Some(Slot::Done(v)) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(v), true));
                }
                Some(Slot::Running) => {
                    self.stats.dedup_collapsed.fetch_add(1, Ordering::Relaxed);
                    let started = Instant::now();
                    // Wait for the leader; re-check on every wake. A missing
                    // entry after a wake means the leader panicked — fall
                    // through and become the new leader.
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(PlanError::DeadlineExceeded {
                                waited: now.duration_since(started),
                            });
                        }
                        let (guard, timeout) =
                            self.ready.wait_timeout(slots, deadline.duration_since(now)).unwrap();
                        slots = guard;
                        match slots.get(&key) {
                            Some(Slot::Done(v)) => {
                                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                                return Ok((Arc::clone(v), true));
                            }
                            Some(Slot::Running) if timeout.timed_out() => {
                                return Err(PlanError::DeadlineExceeded {
                                    waited: Instant::now().duration_since(started),
                                });
                            }
                            Some(Slot::Running) => continue,
                            None => break, // leader died; take over
                        }
                    }
                }
                None => {
                    slots.insert(key, Slot::Running);
                    drop(slots);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    self.stats.sim_runs.fetch_add(1, Ordering::Relaxed);
                    let mut guard = RunningGuard { cache: self, key, armed: true };
                    let value = Arc::new(compute());
                    guard.armed = false;
                    let mut slots = self.slots.lock().unwrap();
                    slots.insert(key, Slot::Done(Arc::clone(&value)));
                    drop(slots);
                    self.ready.notify_all();
                    return Ok((value, false));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn key(n: u64) -> CanonicalKey {
        CanonicalKey([n, !n])
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn second_lookup_hits() {
        let cache = PlanCache::new();
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            Json::from("v")
        };
        let (a, cached_a) = cache.get_or_compute(key(1), far(), compute).unwrap();
        let (b, cached_b) = cache.get_or_compute(key(1), far(), compute).unwrap();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(a, b);
        assert!(!cached_a && cached_b);
        assert_eq!(cache.stats.snapshot(), (2, 1, 1, 0, 1));
    }

    #[test]
    fn concurrent_duplicates_collapse_to_one_run() {
        let cache = Arc::new(PlanCache::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                std::thread::spawn(move || {
                    cache
                        .get_or_compute(key(2), far(), move || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the slot long enough that peers pile up.
                            std::thread::sleep(Duration::from_millis(50));
                            Json::from("slow")
                        })
                        .unwrap()
                        .0
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let (queries, hits, misses, dedup, sim_runs) = cache.stats.snapshot();
        assert_eq!(queries, 8);
        assert_eq!(misses, 1);
        assert_eq!(sim_runs, 1);
        assert_eq!(hits + dedup, 7 + dedup, "waiters resolve as hits");
        assert!(dedup >= 1, "at least one duplicate must have waited");
    }

    #[test]
    fn waiter_deadline_expires_while_leader_runs() {
        let cache = Arc::new(PlanCache::new());
        let c2 = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            c2.get_or_compute(key(3), far(), || {
                std::thread::sleep(Duration::from_millis(200));
                Json::from("late")
            })
            .unwrap()
        });
        std::thread::sleep(Duration::from_millis(30)); // let the leader start
        let err = cache
            .get_or_compute(key(3), Instant::now() + Duration::from_millis(20), || {
                unreachable!("duplicate must not compute")
            })
            .unwrap_err();
        assert!(matches!(err, PlanError::DeadlineExceeded { .. }), "{err:?}");
        leader.join().unwrap();
    }

    #[test]
    fn panicking_leader_does_not_wedge_the_key() {
        let cache = Arc::new(PlanCache::new());
        let c2 = Arc::clone(&cache);
        let crashed = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(key(4), far(), || panic!("boom"))
            }));
        });
        crashed.join().unwrap();
        // The key is free again: a fresh caller computes successfully.
        let (v, cached) = cache.get_or_compute(key(4), far(), || Json::from("recovered")).unwrap();
        assert_eq!(*v, Json::from("recovered"));
        assert!(!cached);
    }
}
