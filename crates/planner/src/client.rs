//! Typed client for the planner service.
//!
//! [`PlannerClient`] owns one framed connection and exposes the protocol as
//! typed calls: transport/service failures surface as [`PlanError`], while
//! OOM — a legitimate planning *answer*, the paper's "×" marks — stays in
//! the success channel as `Ok(Err(OomError))`. Connection setup runs under
//! the dataplane's bounded-backoff [`RetryPolicy`], the same policy workers
//! use to outwait a hub that has not finished binding.

use crate::net::PlanStream;
use crate::protocol::{read_frame, write_frame, JobSpec, PlanError};
use mics_core::{Json, MicsConfig, OomError, RunReport, ToJson};
use mics_dataplane::RetryPolicy;
use std::time::Duration;

/// A `tune` answer: the winning configuration and its projected report.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// The best feasible configuration found.
    pub best: MicsConfig,
    /// Its simulated report.
    pub report: RunReport,
    /// Candidates the search evaluated.
    pub explored: usize,
}

/// One streamed `sweep` result.
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// The job simulated successfully.
    Report(RunReport),
    /// The job does not fit in memory.
    Oom(OomError),
    /// The job failed service-side (bad spec, budget, deadline).
    Failed(PlanError),
}

/// Server counters from a `stats` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Queries that reached the cache.
    pub queries: u64,
    /// Served from a completed cache entry.
    pub cache_hits: u64,
    /// Computed fresh.
    pub cache_misses: u64,
    /// Duplicates collapsed onto an in-flight run.
    pub dedup_collapsed: u64,
    /// Simulator/tuner executions actually run.
    pub sim_runs: u64,
    /// Completed entries evicted to honor the server's capacity bound.
    pub cache_evictions: u64,
    /// Completed entries currently memoized.
    pub cache_entries: u64,
    /// This connection's remaining FLOP budget.
    pub budget_remaining: f64,
}

/// One typed connection to a planner server.
pub struct PlannerClient {
    stream: PlanStream,
    next_id: u64,
}

impl PlannerClient {
    /// Connect under the default bounded-backoff [`RetryPolicy`] (the
    /// server may still be binding).
    pub fn connect(addr: &str) -> Result<PlannerClient, PlanError> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connect under an explicit retry policy.
    pub fn connect_with(addr: &str, retry: RetryPolicy) -> Result<PlannerClient, PlanError> {
        let stream = retry.run(|| PlanStream::connect(addr)).map_err(io_err)?;
        Ok(PlannerClient { stream, next_id: 1 })
    }

    /// Send one raw request text and return the raw response text — the
    /// byte-level escape hatch the round-trip tests use to assert
    /// bit-identical responses.
    pub fn request_text(&mut self, request: &str) -> Result<String, PlanError> {
        write_frame(&mut self.stream, request).map_err(io_err)?;
        read_frame(&mut self.stream).map_err(io_err)
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send `doc`, read one response, decode service errors.
    fn round_trip(&mut self, doc: &Json) -> Result<Json, PlanError> {
        let text = self.request_text(&doc.emit())?;
        let response = Json::parse(&text)
            .map_err(|e| PlanError::Io { message: format!("unparseable response: {e:?}") })?;
        match PlanError::from_response(&response) {
            Some(err) => Err(err),
            None => Ok(response),
        }
    }

    /// Provision this connection's FLOP budget; returns the remaining
    /// balance the server acknowledges.
    pub fn hello(&mut self, budget_flops: f64) -> Result<f64, PlanError> {
        let doc =
            Json::obj([("type", Json::from("hello")), ("budget_flops", Json::Num(budget_flops))]);
        let response = self.round_trip(&doc)?;
        response
            .get("budget_flops")
            .and_then(Json::as_num)
            .ok_or_else(|| malformed("ready response without budget_flops"))
    }

    /// Simulate one job (optionally deadline-bounded). `Ok(Err(_))` is the
    /// job not fitting in memory; `Err(_)` is the service refusing or
    /// failing the query.
    pub fn simulate(
        &mut self,
        job: &JobSpec,
        deadline: Option<Duration>,
    ) -> Result<Result<RunReport, OomError>, PlanError> {
        let id = self.fresh_id();
        let doc = query_doc("simulate", id, [("job", job.to_json())], deadline);
        let response = self.round_trip(&doc)?;
        decode_outcome(&response)
    }

    /// Tune a job's strategy (optionally sweeping quantized-collective
    /// options named `"none"`, `"f16"`, `"int8"`, `"int4"`).
    pub fn tune(
        &mut self,
        job: &JobSpec,
        compression: &[&str],
        deadline: Option<Duration>,
    ) -> Result<Result<TuneOutcome, OomError>, PlanError> {
        let id = self.fresh_id();
        let mut fields = vec![("job", job.to_json())];
        if !compression.is_empty() {
            fields.push((
                "compression",
                Json::Arr(compression.iter().map(|&c| Json::from(c)).collect()),
            ));
        }
        let doc = query_doc("tune", id, fields, deadline);
        let response = self.round_trip(&doc)?;
        match response.get("type").and_then(Json::as_str) {
            Some("tuned") => {
                let best = response
                    .get("best")
                    .and_then(MicsConfig::from_json)
                    .ok_or_else(|| malformed("tuned response without best"))?;
                let report = response
                    .get("report")
                    .and_then(RunReport::from_json)
                    .ok_or_else(|| malformed("tuned response without report"))?;
                let explored =
                    response.get("explored").and_then(Json::as_num).unwrap_or(0.0) as usize;
                Ok(Ok(TuneOutcome { best, report, explored }))
            }
            Some("oom") => Ok(Err(decode_oom(&response)?)),
            other => Err(malformed(&format!("unexpected tune response type {other:?}"))),
        }
    }

    /// Sweep a list of jobs; `on_item(index, outcome)` fires as each result
    /// streams back (completion order is upstream's choice, indices say
    /// which job). Returns the number of items the server processed.
    pub fn sweep(
        &mut self,
        jobs: &[JobSpec],
        deadline: Option<Duration>,
        mut on_item: impl FnMut(usize, SweepOutcome),
    ) -> Result<usize, PlanError> {
        let id = self.fresh_id();
        let jobs_doc = Json::Arr(jobs.iter().map(ToJson::to_json).collect());
        let doc = query_doc("sweep", id, [("jobs", jobs_doc)], deadline);
        write_frame(&mut self.stream, &doc.emit()).map_err(io_err)?;
        loop {
            let text = read_frame(&mut self.stream).map_err(io_err)?;
            let frame = Json::parse(&text)
                .map_err(|e| PlanError::Io { message: format!("unparseable frame: {e:?}") })?;
            match frame.get("type").and_then(Json::as_str) {
                Some("sweep_item") => {
                    let index = frame.get("index").and_then(Json::as_num).unwrap_or(-1.0) as usize;
                    let outcome = if let Some(err_doc) = frame.get("error") {
                        let code = err_doc.get("code").and_then(Json::as_str).unwrap_or("");
                        let message = err_doc
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified")
                            .to_string();
                        SweepOutcome::Failed(match code {
                            "ShuttingDown" => PlanError::ShuttingDown,
                            _ => PlanError::BadRequest { reason: message },
                        })
                    } else {
                        match decode_outcome(&frame)? {
                            Ok(r) => SweepOutcome::Report(r),
                            Err(oom) => SweepOutcome::Oom(oom),
                        }
                    };
                    on_item(index, outcome);
                }
                Some("sweep_done") => {
                    return Ok(frame.get("count").and_then(Json::as_num).unwrap_or(0.0) as usize)
                }
                _ => {
                    return match PlanError::from_response(&frame) {
                        Some(err) => Err(err),
                        None => Err(malformed("unexpected frame in sweep stream")),
                    }
                }
            }
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> Result<ServerStats, PlanError> {
        let id = self.fresh_id();
        let doc = Json::obj([("type", Json::from("stats")), ("id", Json::Num(id as f64))]);
        let response = self.round_trip(&doc)?;
        let num = |k: &str| response.get(k).and_then(Json::as_num).unwrap_or(0.0);
        Ok(ServerStats {
            queries: num("queries") as u64,
            cache_hits: num("cache_hits") as u64,
            cache_misses: num("cache_misses") as u64,
            dedup_collapsed: num("dedup_collapsed") as u64,
            sim_runs: num("sim_runs") as u64,
            cache_evictions: num("cache_evictions") as u64,
            cache_entries: num("cache_entries") as u64,
            budget_remaining: num("budget_remaining"),
        })
    }

    /// Ask the server to shut down gracefully (drain, then exit).
    pub fn shutdown_server(&mut self) -> Result<(), PlanError> {
        let doc = Json::obj([("type", Json::from("shutdown"))]);
        let response = self.round_trip(&doc)?;
        match response.get("type").and_then(Json::as_str) {
            Some("bye") => Ok(()),
            other => Err(malformed(&format!("unexpected shutdown response {other:?}"))),
        }
    }
}

fn io_err(e: std::io::Error) -> PlanError {
    PlanError::Io { message: e.to_string() }
}

fn malformed(what: &str) -> PlanError {
    PlanError::Io { message: format!("protocol violation: {what}") }
}

fn query_doc<'a>(
    kind: &str,
    id: u64,
    fields: impl IntoIterator<Item = (&'a str, Json)>,
    deadline: Option<Duration>,
) -> Json {
    let mut pairs =
        vec![("type".to_string(), Json::from(kind)), ("id".to_string(), Json::Num(id as f64))];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    if let Some(d) = deadline {
        pairs.push(("deadline_ms".to_string(), Json::Num(d.as_secs_f64() * 1e3)));
    }
    Json::Obj(pairs)
}

/// Decode a `report`/`oom` body shared by simulate responses and sweep
/// items.
fn decode_outcome(doc: &Json) -> Result<Result<RunReport, OomError>, PlanError> {
    if let Some(report) = doc.get("report") {
        return RunReport::from_json(report).map(Ok).ok_or_else(|| malformed("undecodable report"));
    }
    if doc.get("oom").is_some() {
        return Ok(Err(decode_oom(doc)?));
    }
    Err(malformed("response carries neither report nor oom"))
}

fn decode_oom(doc: &Json) -> Result<OomError, PlanError> {
    doc.get("oom").and_then(OomError::from_json).ok_or_else(|| malformed("undecodable oom record"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{PlannerConfig, PlannerServer};

    #[test]
    fn typed_calls_match_in_process_results() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut client = PlannerClient::connect(server.addr()).unwrap();

        let spec = JobSpec::mics("bert-10b", 2, 8);
        let report = client.simulate(&spec, None).unwrap().unwrap();

        // The service answer must be bit-identical to calling the simulator
        // directly (same canonical JSON round trip).
        let job = mics_core::TrainingJob {
            workload: mics_model::preset("bert-10b", 8).unwrap(),
            cluster: mics_cluster::ClusterSpec::new(
                mics_cluster::InstanceType::preset("p3dn").unwrap(),
                2,
            ),
            strategy: mics_core::Strategy::parse("mics:8").unwrap(),
            accum_steps: 4,
        };
        let direct = mics_core::simulate(&job).unwrap();
        assert_eq!(report.to_json().emit(), direct.to_json().emit());
        assert_eq!(report, direct);

        let tuned = client.tune(&spec, &[], None).unwrap().unwrap();
        let direct_tune = mics_core::tune(&job.workload, &job.cluster, 4).unwrap();
        assert_eq!(tuned.best, direct_tune.best);
        assert_eq!(tuned.report.to_json().emit(), direct_tune.report.to_json().emit());
        assert_eq!(tuned.explored, direct_tune.explored.len());

        let stats = client.stats().unwrap();
        assert_eq!(stats.sim_runs, 2);
        assert_eq!(stats.cache_entries, 2);

        client.shutdown_server().unwrap();
        server.join();
    }

    #[test]
    fn oom_is_an_answer_not_an_error() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut client = PlannerClient::connect(server.addr()).unwrap();
        // 100B on two V100 nodes cannot fit under any strategy.
        let spec = JobSpec::mics("100b", 2, 16);
        let oom = client.simulate(&spec, None).unwrap().unwrap_err();
        assert!(oom.required > oom.available);
        let oom = client.tune(&spec, &[], None).unwrap().unwrap_err();
        assert!(oom.required > oom.available);
        server.shutdown();
        server.join();
    }

    #[test]
    fn sweep_streams_typed_outcomes() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut client = PlannerClient::connect(server.addr()).unwrap();
        let jobs = [
            JobSpec::mics("bert-10b", 2, 8),
            JobSpec::mics("100b", 2, 16),
            JobSpec::mics("?", 1, 1),
        ];
        let mut outcomes = [None, None, None];
        let count = client.sweep(&jobs, None, |i, outcome| outcomes[i] = Some(outcome)).unwrap();
        assert_eq!(count, 3);
        assert!(matches!(outcomes[0], Some(SweepOutcome::Report(_))));
        assert!(matches!(outcomes[1], Some(SweepOutcome::Oom(_))));
        assert!(matches!(outcomes[2], Some(SweepOutcome::Failed(_))));
        server.shutdown();
        server.join();
    }
}
