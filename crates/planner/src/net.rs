//! Planner connectivity: the same two address families the dataplane
//! speaks (`host:port` TCP with Nagle off, or `unix:<path>`), behind one
//! stream/listener pair. The dataplane keeps its `Stream` crate-private, so
//! the planner carries its own copy of the idiom rather than widening that
//! API for a different subsystem.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A connected planner byte stream of either flavor.
#[derive(Debug)]
pub enum PlanStream {
    /// TCP (addresses like `127.0.0.1:7000`), Nagle disabled.
    Tcp(TcpStream),
    /// Unix-domain (addresses like `unix:/tmp/mics-planner.sock`).
    Unix(UnixStream),
}

impl PlanStream {
    /// Connect to `addr` (`unix:<path>` or a TCP `host:port`).
    pub fn connect(addr: &str) -> std::io::Result<PlanStream> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(PlanStream::Unix(UnixStream::connect(path)?))
        } else {
            let s = TcpStream::connect(addr)?;
            s.set_nodelay(true)?;
            Ok(PlanStream::Tcp(s))
        }
    }

    /// A second OS handle to the same socket (reader/writer split).
    pub fn try_clone(&self) -> std::io::Result<PlanStream> {
        Ok(match self {
            PlanStream::Tcp(s) => PlanStream::Tcp(s.try_clone()?),
            PlanStream::Unix(s) => PlanStream::Unix(s.try_clone()?),
        })
    }

    /// Force both directions closed, unblocking any reader.
    pub fn shutdown(&self) {
        let _ = match self {
            PlanStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            PlanStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for PlanStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            PlanStream::Tcp(s) => s.read(buf),
            PlanStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for PlanStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            PlanStream::Tcp(s) => s.write(buf),
            PlanStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            PlanStream::Tcp(s) => s.flush(),
            PlanStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound planner listener of either flavor. Unix sockets unlink their
/// path on drop.
#[derive(Debug)]
pub enum PlanListener {
    /// Bound TCP listener.
    Tcp(TcpListener),
    /// Bound Unix-domain listener plus its filesystem path.
    Unix(UnixListener, String),
}

impl PlanListener {
    /// Bind `addr` (`unix:<path>` or TCP; `127.0.0.1:0` picks a free port).
    /// A stale Unix socket file from a crashed server is replaced.
    pub fn bind(addr: &str) -> std::io::Result<PlanListener> {
        if let Some(path) = addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
            Ok(PlanListener::Unix(UnixListener::bind(path)?, path.to_string()))
        } else {
            Ok(PlanListener::Tcp(TcpListener::bind(addr)?))
        }
    }

    /// The address clients should [`PlanStream::connect`] to — the actual
    /// bound port for TCP, `unix:<path>` for Unix.
    pub fn local_addr(&self) -> std::io::Result<String> {
        match self {
            PlanListener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            PlanListener::Unix(_, path) => Ok(format!("unix:{path}")),
        }
    }

    /// Switch the listener between blocking and polling accepts.
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            PlanListener::Tcp(l) => l.set_nonblocking(nb),
            PlanListener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection (honors `set_nonblocking`: a `WouldBlock`
    /// error means "nothing pending right now").
    pub fn accept(&self) -> std::io::Result<PlanStream> {
        match self {
            PlanListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(PlanStream::Tcp(s))
            }
            PlanListener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(PlanStream::Unix(s))
            }
        }
    }
}

impl Drop for PlanListener {
    fn drop(&mut self) {
        if let PlanListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Sleep between nonblocking accept polls — long enough to stay off the
/// CPU, short enough that shutdown latency is invisible.
pub const ACCEPT_POLL: Duration = Duration::from_millis(10);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, write_frame};

    #[test]
    fn tcp_round_trip() {
        let listener = PlanListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut server_side = listener.accept().unwrap();
            let msg = read_frame(&mut server_side).unwrap();
            write_frame(&mut server_side, &format!("echo {msg}")).unwrap();
        });
        let mut c = PlanStream::connect(&addr).unwrap();
        write_frame(&mut c, "hi").unwrap();
        assert_eq!(read_frame(&mut c).unwrap(), "echo hi");
        t.join().unwrap();
    }

    #[test]
    fn unix_round_trip_and_cleanup() {
        let path =
            std::env::temp_dir().join(format!("mics-planner-net-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let listener = PlanListener::bind(&addr).unwrap();
        assert_eq!(listener.local_addr().unwrap(), addr);
        let t = std::thread::spawn(move || {
            let mut server_side = listener.accept().unwrap();
            let msg = read_frame(&mut server_side).unwrap();
            write_frame(&mut server_side, &msg).unwrap();
            // listener dropped here
        });
        let mut c = PlanStream::connect(&addr).unwrap();
        write_frame(&mut c, "ping").unwrap();
        assert_eq!(read_frame(&mut c).unwrap(), "ping");
        t.join().unwrap();
        assert!(!path.exists(), "unix socket file must be unlinked on drop");
    }
}
