//! The planner server: a worker pool over a bounded queue, fronting the
//! simulator and tuner with memoization, in-flight dedup, budgets and
//! deadlines.
//!
//! # Anatomy
//!
//! One accept thread (nonblocking, polling the shutdown flag) spawns a
//! reader thread per connection. Readers decode frames and answer the cheap
//! control requests inline (`hello`, `stats`, `shutdown`); planning queries
//! (`simulate`, `tune`, `sweep`) are pushed onto a bounded queue — a full
//! queue answers `Overloaded` immediately, which is the backpressure story:
//! clients see a typed rejection, not an unbounded latency tail. Worker
//! threads drain the queue and run queries through the single-flight
//! [`PlanCache`], so identical concurrent queries cost one simulation and
//! every response for a key is byte-identical ([`Json::emit`] is
//! deterministic and cache entries are stored id-less).
//!
//! # Lifecycle
//!
//! [`PlannerServer::shutdown`] (or a client `shutdown` frame) flips the
//! flag; the accept loop stops taking connections, workers finish the
//! queries already queued, stragglers get `ShuttingDown`, and
//! [`PlannerServer::join`] reaps every thread. Deadlines are enforced at
//! dequeue (queued too long) and while waiting on an in-flight duplicate,
//! mapping to `DeadlineExceeded { waited }` — the planner's analogue of the
//! dataplane's `CommError::Timeout { waited }`.

use crate::budget::{simulate_cost, tune_cost, FlopLedger};
use crate::cache::{CacheOutcome, PlanCache};
use crate::net::{PlanListener, PlanStream, ACCEPT_POLL};
use crate::protocol::{read_frame, write_frame, JobSpec, PlanError};
use crate::PLANNER_PROCESS;
use mics_cluster::{ClusterSpec, InstanceType};
use mics_core::{
    simulate, tune_with_compression, CanonicalHasher, CanonicalKey, CompressionConfig, Json,
    Strategy, ToJson, TrainingJob,
};
use mics_model::WorkloadSpec;
use mics_trace::Arg;
use std::collections::VecDeque;
use std::io::BufWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Listen address: `host:port` (`127.0.0.1:0` picks a free port) or
    /// `unix:<path>`.
    pub addr: String,
    /// Worker threads draining the query queue.
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with `Overloaded`.
    pub queue_depth: usize,
    /// FLOP budget granted to a connection that never says `hello`.
    pub default_budget_flops: f64,
    /// Deadline applied to queries that carry no `deadline_ms`.
    pub default_deadline: Duration,
    /// Maximum completed cache entries kept (0 = unbounded); the cache
    /// evicts oldest-first past this and counts the evictions.
    pub cache_capacity: usize,
    /// Maximum age of a completed cache entry before a lookup recomputes
    /// it (`None` = entries never expire). Pairs with `cache_capacity`:
    /// capacity bounds space, the TTL bounds staleness.
    pub cache_ttl: Option<Duration>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 256,
            default_budget_flops: f64::MAX,
            default_deadline: Duration::from_secs(30),
            cache_capacity: 0,
            cache_ttl: None,
        }
    }
}

/// Per-connection state shared between its reader thread and the workers.
struct ConnState {
    writer: Mutex<BufWriter<PlanStream>>,
    ledger: Mutex<FlopLedger>,
    /// Second OS handle, kept to force readers off blocking reads at
    /// shutdown.
    raw: PlanStream,
}

impl ConnState {
    /// Write one response frame; a transport failure kills the connection
    /// (its reader unblocks via the raw handle).
    fn send(&self, doc: &Json) -> Result<(), PlanError> {
        let mut w = self.writer.lock().unwrap();
        write_frame(&mut *w, &doc.emit()).map_err(|e| {
            self.raw.shutdown();
            PlanError::Io { message: e.to_string() }
        })
    }
}

/// One queued planning query.
struct Task {
    request: Json,
    conn: Arc<ConnState>,
    enqueued: Instant,
    deadline: Instant,
}

struct Shared {
    cfg: PlannerConfig,
    cache: PlanCache,
    queue: Mutex<VecDeque<Task>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    conns: Mutex<Vec<Weak<ConnState>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_ready.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running planner service. Dropping the handle does *not* stop the
/// server — call [`PlannerServer::shutdown`] then [`PlannerServer::join`].
pub struct PlannerServer {
    shared: Arc<Shared>,
    addr: String,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PlannerServer {
    /// Bind, spawn the worker pool and the accept loop, and return the
    /// serving handle.
    pub fn start(cfg: PlannerConfig) -> std::io::Result<PlannerServer> {
        let listener = PlanListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            cache: PlanCache::with_ttl(cfg.cache_capacity, cfg.cache_ttl),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mics-plan-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("cannot spawn planner worker")
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("mics-plan-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))
            .expect("cannot spawn planner accept thread");
        Ok(PlannerServer { shared, addr, accept: Some(accept), workers })
    }

    /// The address clients should connect to (the actual bound port when
    /// the config asked for `:0`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Begin a graceful shutdown: stop accepting, finish queued queries,
    /// reject stragglers. Idempotent; `join` completes once drained.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the server has shut down (via [`PlannerServer::shutdown`]
    /// or a client `shutdown` frame) and every thread is reaped.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Anything still queued raced the drain: answer, don't hang them.
        let leftovers: Vec<Task> = self.shared.queue.lock().unwrap().drain(..).collect();
        for task in leftovers {
            let id = request_id(&task.request);
            let _ = task.conn.send(&PlanError::ShuttingDown.to_response(id));
        }
        // Unblock and reap the readers.
        for conn in self.shared.conns.lock().unwrap().iter().filter_map(Weak::upgrade) {
            conn.raw.shutdown();
        }
        let readers: Vec<_> = self.shared.readers.lock().unwrap().drain(..).collect();
        for h in readers {
            let _ = h.join();
        }
    }

    /// Cache/throughput counters (same numbers the `stats` request reports).
    pub fn cache_stats(&self) -> (u64, u64, u64, u64, u64) {
        self.shared.cache.stats.snapshot()
    }

    /// Completed cache entries evicted to honor the capacity bound.
    pub fn cache_evictions(&self) -> u64 {
        self.shared.cache.stats.evictions.get()
    }
}

fn accept_loop(listener: PlanListener, shared: &Arc<Shared>) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok(stream) => {
                let Ok(raw) = stream.try_clone() else { continue };
                let Ok(reader) = stream.try_clone() else { continue };
                let conn = Arc::new(ConnState {
                    writer: Mutex::new(BufWriter::new(stream)),
                    ledger: Mutex::new(FlopLedger::new(shared.cfg.default_budget_flops)),
                    raw,
                });
                shared.conns.lock().unwrap().push(Arc::downgrade(&conn));
                let shared2 = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("mics-plan-conn".to_string())
                    .spawn(move || reader_loop(reader, conn, &shared2))
                    .expect("cannot spawn planner connection thread");
                shared.readers.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

/// The `id` of a request, or 0 when it has none (error responses to
/// unparseable requests).
fn request_id(request: &Json) -> u64 {
    request.get("id").and_then(Json::as_num).map(|n| n.max(0.0) as u64).unwrap_or(0)
}

fn reader_loop(mut stream: PlanStream, conn: Arc<ConnState>, shared: &Arc<Shared>) {
    loop {
        let text = match read_frame(&mut stream) {
            Ok(t) => t,
            Err(_) => return, // EOF or forced shutdown
        };
        let request = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                let err = PlanError::BadRequest { reason: format!("unparseable frame: {e:?}") };
                let _ = conn.send(&err.to_response(0));
                continue;
            }
        };
        let id = request_id(&request);
        match request.get("type").and_then(Json::as_str) {
            Some("hello") => {
                if let Some(budget) = request.get("budget_flops").and_then(Json::as_num) {
                    conn.ledger.lock().unwrap().regrant(budget);
                }
                let remaining = conn.ledger.lock().unwrap().remaining();
                let _ = conn.send(&Json::obj([
                    ("type", Json::from("ready")),
                    ("budget_flops", Json::Num(remaining)),
                ]));
            }
            Some("stats") => {
                let _ = conn.send(&stats_response(shared, &conn, id));
            }
            Some("shutdown") => {
                let _ = conn.send(&Json::obj([("type", Json::from("bye"))]));
                shared.begin_shutdown();
            }
            Some("simulate") | Some("tune") | Some("sweep") => {
                if shared.shutting_down() {
                    let _ = conn.send(&PlanError::ShuttingDown.to_response(id));
                    continue;
                }
                let now = Instant::now();
                let deadline = match request.get("deadline_ms").and_then(Json::as_num) {
                    Some(ms) => now + Duration::from_secs_f64(ms.max(0.0) / 1e3),
                    None => now + shared.cfg.default_deadline,
                };
                let task = Task { request, conn: Arc::clone(&conn), enqueued: now, deadline };
                let mut queue = shared.queue.lock().unwrap();
                if queue.len() >= shared.cfg.queue_depth {
                    drop(queue);
                    let err = PlanError::Overloaded { depth: shared.cfg.queue_depth };
                    let _ = conn.send(&err.to_response(id));
                } else {
                    queue.push_back(task);
                    drop(queue);
                    shared.queue_ready.notify_one();
                }
            }
            other => {
                let reason = match other {
                    Some(t) => format!("unknown request type '{t}'"),
                    None => "request has no 'type'".to_string(),
                };
                let _ = conn.send(&PlanError::BadRequest { reason }.to_response(id));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = queue.pop_front() {
                    break Some(t);
                }
                if shared.shutting_down() {
                    break None;
                }
                let (guard, _) =
                    shared.queue_ready.wait_timeout(queue, Duration::from_millis(100)).unwrap();
                queue = guard;
            }
        };
        let Some(task) = task else { return };
        let id = request_id(&task.request);
        // A panic inside a query (a simulator invariant violated by a
        // hostile config) must not kill the worker: answer and move on.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle_task(shared, &task)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(err)) => {
                let _ = task.conn.send(&err.to_response(id));
            }
            Err(_) => {
                let err =
                    PlanError::BadRequest { reason: "internal error: query panicked".to_string() };
                let _ = task.conn.send(&err.to_response(id));
            }
        }
    }
}

fn handle_task(shared: &Arc<Shared>, task: &Task) -> Result<(), PlanError> {
    let now = Instant::now();
    if now >= task.deadline {
        return Err(PlanError::DeadlineExceeded { waited: now.duration_since(task.enqueued) });
    }
    let id = request_id(&task.request);
    match task.request.get("type").and_then(Json::as_str) {
        Some("simulate") => {
            let job = resolve_job(job_field(&task.request)?)?;
            let payload = run_simulate(shared, task, &job)?;
            task.conn.send(&with_id(&payload, id))
        }
        Some("tune") => {
            let spec = job_field(&task.request)?;
            let (workload, cluster, accum) = resolve_parts(&spec)?;
            let options = compression_options(&task.request)?;
            let key = tune_key(&workload, &cluster, accum, &options);
            let cost = tune_cost(&workload, &cluster, accum, options.len());
            let payload =
                charged(shared, task, "tune", key, cost, || {
                    match tune_with_compression(&workload, &cluster, accum, &options) {
                        Ok(r) => Json::obj([
                            ("type", Json::from("tuned")),
                            ("best", r.best.to_json()),
                            ("report", r.report.to_json()),
                            ("explored", Json::Num(r.explored.len() as f64)),
                        ]),
                        Err(oom) => oom_payload(&oom),
                    }
                })?;
            task.conn.send(&with_id(&payload, id))
        }
        Some("sweep") => {
            let jobs =
                task.request.get("jobs").and_then(Json::as_arr).ok_or_else(|| {
                    PlanError::BadRequest { reason: "sweep has no 'jobs'".into() }
                })?;
            let mut count = 0usize;
            for (index, doc) in jobs.iter().enumerate() {
                let item = match JobSpec::from_json(doc)
                    .ok_or_else(|| PlanError::BadRequest {
                        reason: format!("malformed job at index {index}"),
                    })
                    .and_then(resolve_job)
                    .and_then(|job| run_simulate(shared, task, &job))
                {
                    Ok(payload) => sweep_item(id, index, &payload),
                    Err(err) => Json::obj([
                        ("type", Json::from("sweep_item")),
                        ("id", Json::Num(id as f64)),
                        ("index", Json::Num(index as f64)),
                        (
                            "error",
                            Json::obj([
                                ("code", Json::from(err.code())),
                                ("message", Json::from(err.to_string().as_str())),
                            ]),
                        ),
                    ]),
                };
                // A failed write means the client is gone: abandon the
                // stream, the server itself is fine.
                task.conn.send(&item)?;
                count += 1;
            }
            task.conn.send(&Json::obj([
                ("type", Json::from("sweep_done")),
                ("id", Json::Num(id as f64)),
                ("count", Json::Num(count as f64)),
            ]))
        }
        _ => unreachable!("reader only queues planning queries"),
    }
}

/// Run one simulate query through budget + cache; returns the id-less
/// cached payload.
fn run_simulate(shared: &Arc<Shared>, task: &Task, job: &TrainingJob) -> Result<Json, PlanError> {
    let cost = simulate_cost(&job.workload, &job.cluster, job.accum_steps);
    let key = simulate_key(job);
    charged(shared, task, "simulate", key, cost, || match simulate(job) {
        Ok(r) => Json::obj([("type", Json::from("report")), ("report", r.to_json())]),
        Err(oom) => oom_payload(&oom),
    })
}

/// Record the span of one planning query on the worker thread's track,
/// tagged with how the cache served it.
fn record_query_span(kind: &'static str, start_ns: u64, outcome: &'static str) {
    let rec = mics_trace::global();
    if !rec.is_enabled() {
        return;
    }
    let end = rec.now_ns();
    let thread = std::thread::current();
    let track = thread.name().unwrap_or("mics-plan-worker").to_string();
    rec.span(
        PLANNER_PROCESS,
        &track,
        kind,
        "planner",
        start_ns,
        end,
        vec![("outcome", Arg::from(outcome))],
    );
}

/// Record the connection's FLOP-ledger balance as a counter track after a
/// charge or refund. Unbounded ledgers (the `f64::MAX` default grant) are
/// skipped — a flat astronomically-large line is noise.
fn record_ledger_balance(remaining: f64) {
    let rec = mics_trace::global();
    if rec.is_enabled() && remaining < f64::MAX / 2.0 {
        rec.counter(PLANNER_PROCESS, "flop ledger", "flop ledger remaining", remaining);
    }
}

/// The budget-aware cache path. Completed entries are served without
/// touching the ledger (cached answers are free, even on an exhausted
/// budget); otherwise the connection is charged optimistically, the
/// single-flight lookup runs, and the charge is refunded when the query
/// was collapsed onto another client's run or failed before simulating —
/// net effect: only the leader of a fresh computation is billed.
fn charged(
    shared: &Arc<Shared>,
    task: &Task,
    kind: &'static str,
    key: CanonicalKey,
    cost: f64,
    compute: impl FnOnce() -> Json,
) -> Result<Json, PlanError> {
    let start_ns = mics_trace::global().now_ns();
    if let Some(payload) = shared.cache.peek(key) {
        record_query_span(kind, start_ns, CacheOutcome::Hit.label());
        return Ok((*payload).clone());
    }
    let charge = {
        let mut ledger = task.conn.ledger.lock().unwrap();
        ledger.charge(cost).map(|()| ledger.remaining())
    };
    match charge {
        Ok(remaining) => record_ledger_balance(remaining),
        Err(e) => {
            record_query_span(kind, start_ns, "rejected");
            return Err(e);
        }
    }
    let refund = || {
        let mut ledger = task.conn.ledger.lock().unwrap();
        ledger.refund(cost);
        record_ledger_balance(ledger.remaining());
    };
    match shared.cache.get_or_compute(key, task.deadline, compute) {
        Ok((payload, outcome)) => {
            if outcome.served_from_cache() {
                refund();
            }
            record_query_span(kind, start_ns, outcome.label());
            Ok((*payload).clone())
        }
        Err(e) => {
            refund();
            record_query_span(kind, start_ns, "error");
            Err(e)
        }
    }
}

fn oom_payload(oom: &mics_core::OomError) -> Json {
    Json::obj([("type", Json::from("oom")), ("oom", oom.to_json())])
}

fn sweep_item(id: u64, index: usize, payload: &Json) -> Json {
    // payload is {"type":"report"/"oom", <body>}: re-tag as a sweep_item
    // carrying the same body key.
    let mut pairs = vec![
        ("type".to_string(), Json::from("sweep_item")),
        ("id".to_string(), Json::Num(id as f64)),
        ("index".to_string(), Json::Num(index as f64)),
    ];
    if let Json::Obj(body) = payload {
        pairs.extend(body.iter().filter(|(k, _)| k != "type").cloned());
    }
    Json::Obj(pairs)
}

/// Re-emit a cached id-less payload with the request id inserted after
/// `type`, keeping emission deterministic per (payload, id).
fn with_id(payload: &Json, id: u64) -> Json {
    match payload {
        Json::Obj(pairs) => {
            let mut out = Vec::with_capacity(pairs.len() + 1);
            let mut inserted = false;
            for (k, v) in pairs {
                out.push((k.clone(), v.clone()));
                if k == "type" && !inserted {
                    out.push(("id".to_string(), Json::Num(id as f64)));
                    inserted = true;
                }
            }
            if !inserted {
                out.insert(0, ("id".to_string(), Json::Num(id as f64)));
            }
            Json::Obj(out)
        }
        other => other.clone(),
    }
}

fn stats_response(shared: &Arc<Shared>, conn: &ConnState, id: u64) -> Json {
    let (queries, hits, misses, dedup, sim_runs) = shared.cache.stats.snapshot();
    Json::obj([
        ("type", Json::from("stats")),
        ("id", Json::Num(id as f64)),
        ("queries", Json::Num(queries as f64)),
        ("cache_hits", Json::Num(hits as f64)),
        ("cache_misses", Json::Num(misses as f64)),
        ("dedup_collapsed", Json::Num(dedup as f64)),
        ("sim_runs", Json::Num(sim_runs as f64)),
        ("cache_evictions", Json::Num(shared.cache.stats.evictions.get() as f64)),
        ("cache_ttl_expiries", Json::Num(shared.cache.stats.ttl_expiries.get() as f64)),
        ("cache_entries", Json::Num(shared.cache.len() as f64)),
        ("budget_remaining", Json::Num(conn.ledger.lock().unwrap().remaining())),
    ])
}

// ---- request resolution ----------------------------------------------------

fn job_field(request: &Json) -> Result<JobSpec, PlanError> {
    let doc = request
        .get("job")
        .ok_or_else(|| PlanError::BadRequest { reason: "request has no 'job'".into() })?;
    JobSpec::from_json(doc)
        .ok_or_else(|| PlanError::BadRequest { reason: "malformed job spec".into() })
}

/// Resolve the preset names of a [`JobSpec`] (everything but the strategy).
fn resolve_parts(spec: &JobSpec) -> Result<(WorkloadSpec, ClusterSpec, usize), PlanError> {
    let bad = |reason: String| PlanError::BadRequest { reason };
    if spec.micro_batch == 0 {
        return Err(bad("micro_batch must be >= 1".into()));
    }
    if spec.nodes == 0 {
        return Err(bad("nodes must be >= 1".into()));
    }
    if spec.accum == 0 {
        return Err(bad("accum must be >= 1".into()));
    }
    let workload = mics_model::preset(&spec.model, spec.micro_batch).ok_or_else(|| {
        bad(format!(
            "unknown model '{}' (expected one of {})",
            spec.model,
            mics_model::preset_names().join(", ")
        ))
    })?;
    let instance = InstanceType::preset(&spec.instance).ok_or_else(|| {
        bad(format!("unknown instance '{}' (expected p3dn, p4d, or dgx)", spec.instance))
    })?;
    Ok((workload, ClusterSpec::new(instance, spec.nodes), spec.accum))
}

/// Resolve a full [`JobSpec`] including its strategy, validating MiCS
/// partition geometry against the cluster.
fn resolve_job(spec: JobSpec) -> Result<TrainingJob, PlanError> {
    let (workload, cluster, accum) = resolve_parts(&spec)?;
    let strategy =
        Strategy::parse(&spec.strategy).map_err(|reason| PlanError::BadRequest { reason })?;
    if let Strategy::Mics(cfg) = &strategy {
        let n = cluster.total_devices();
        let p = cfg.partition_size;
        if p == 0 || p > n || !n.is_multiple_of(p) {
            return Err(PlanError::BadRequest {
                reason: format!("partition size {p} does not divide the {n}-device cluster"),
            });
        }
    }
    Ok(TrainingJob { workload, cluster, strategy, accum_steps: accum })
}

fn compression_options(request: &Json) -> Result<Vec<Option<CompressionConfig>>, PlanError> {
    use mics_core::QuantScheme;
    let Some(list) = request.get("compression") else { return Ok(vec![None]) };
    let names = list
        .as_arr()
        .ok_or_else(|| PlanError::BadRequest { reason: "'compression' must be an array".into() })?;
    let mut options = Vec::with_capacity(names.len().max(1));
    for name in names {
        options.push(match name.as_str() {
            Some("none") => None,
            Some("f16") => Some(CompressionConfig::both(QuantScheme::F16)),
            Some("int8") => Some(CompressionConfig::both(QuantScheme::int8())),
            Some("int4") => Some(CompressionConfig::both(QuantScheme::int4())),
            other => {
                return Err(PlanError::BadRequest {
                    reason: format!(
                        "unknown compression option {other:?} (expected none, f16, int8, int4)"
                    ),
                })
            }
        });
    }
    if options.is_empty() {
        options.push(None);
    }
    Ok(options)
}

// ---- cache keys -------------------------------------------------------------

/// The second-lane seed of a two-lane key (mirrors `Canonical::canonical_key`).
const LANE2_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

fn key_of(walk: impl Fn(&mut CanonicalHasher)) -> CanonicalKey {
    let mut a = CanonicalHasher::new();
    walk(&mut a);
    let mut b = CanonicalHasher::with_seed(LANE2_SEED);
    walk(&mut b);
    CanonicalKey([a.finish(), b.finish()])
}

/// Cache key of a `simulate` query: tag 1 + the job's canonical walk.
fn simulate_key(job: &TrainingJob) -> CanonicalKey {
    use mics_core::Canonical;
    key_of(|h| {
        h.write_tag(1);
        job.canonicalize(h);
    })
}

/// Cache key of a `tune` query: tag 2 + workload + cluster + accum + the
/// compression option list. Deliberately excludes the request's `strategy`
/// field — tuning searches strategies itself, so two tunes of the same job
/// spelled with different strategies must share one cache entry.
fn tune_key(
    workload: &WorkloadSpec,
    cluster: &ClusterSpec,
    accum: usize,
    options: &[Option<CompressionConfig>],
) -> CanonicalKey {
    use mics_core::Canonical;
    key_of(|h| {
        h.write_tag(2);
        workload.canonicalize(h);
        cluster.canonicalize(h);
        h.write_usize(accum);
        h.write_usize(options.len());
        for o in options {
            o.canonicalize(h);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame as send_frame;

    fn request(stream: &mut PlanStream, text: &str) -> Json {
        send_frame(stream, text).unwrap();
        Json::parse(&read_frame(stream).unwrap()).unwrap()
    }

    #[test]
    fn end_to_end_simulate_tune_stats_shutdown() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut c = PlanStream::connect(server.addr()).unwrap();

        let job = JobSpec::mics("bert-10b", 2, 8).to_json().emit();
        let rep = request(&mut c, &format!(r#"{{"type":"simulate","id":1,"job":{job}}}"#));
        assert_eq!(rep.get("type").and_then(Json::as_str), Some("report"), "{rep:?}");
        assert_eq!(rep.get("id").and_then(Json::as_num), Some(1.0));
        assert!(rep.get("report").is_some());

        // Same job again: a cache hit, byte-identical modulo the id.
        let rep2 = request(&mut c, &format!(r#"{{"type":"simulate","id":2,"job":{job}}}"#));
        assert_eq!(rep2.get("id").and_then(Json::as_num), Some(2.0));
        assert_eq!(rep2.get("report").unwrap().emit(), rep.get("report").unwrap().emit());

        let tuned = request(&mut c, &format!(r#"{{"type":"tune","id":3,"job":{job}}}"#));
        assert_eq!(tuned.get("type").and_then(Json::as_str), Some("tuned"), "{tuned:?}");
        assert!(tuned.get("explored").and_then(Json::as_num).unwrap() >= 6.0);

        let stats = request(&mut c, r#"{"type":"stats","id":4}"#);
        assert!(stats.get("cache_hits").and_then(Json::as_num).unwrap() >= 1.0);
        assert!(stats.get("sim_runs").and_then(Json::as_num).unwrap() >= 2.0);

        let bye = request(&mut c, r#"{"type":"shutdown"}"#);
        assert_eq!(bye.get("type").and_then(Json::as_str), Some("bye"));
        server.join();
    }

    #[test]
    fn cache_ttl_expires_entries_across_the_socket() {
        let cfg = PlannerConfig {
            cache_ttl: Some(Duration::from_millis(80)),
            ..PlannerConfig::default()
        };
        let server = PlannerServer::start(cfg).unwrap();
        let mut c = PlanStream::connect(server.addr()).unwrap();

        let job = JobSpec::mics("bert-10b", 2, 8).to_json().emit();
        let rep = request(&mut c, &format!(r#"{{"type":"simulate","id":1,"job":{job}}}"#));
        assert_eq!(rep.get("type").and_then(Json::as_str), Some("report"), "{rep:?}");
        // Within the TTL: served from cache, one sim run so far.
        let rep2 = request(&mut c, &format!(r#"{{"type":"simulate","id":2,"job":{job}}}"#));
        assert_eq!(rep2.get("report").unwrap().emit(), rep.get("report").unwrap().emit());
        let (_, _, _, _, sim_runs) = server.cache_stats();
        assert_eq!(sim_runs, 1);

        std::thread::sleep(Duration::from_millis(120));
        // Past the TTL: the entry expired, the same query recomputes — and
        // determinism makes the recomputed payload byte-identical.
        let rep3 = request(&mut c, &format!(r#"{{"type":"simulate","id":3,"job":{job}}}"#));
        assert_eq!(rep3.get("report").unwrap().emit(), rep.get("report").unwrap().emit());
        let (_, _, _, _, sim_runs) = server.cache_stats();
        assert_eq!(sim_runs, 2, "the TTL-expired entry must recompute");

        let stats = request(&mut c, r#"{"type":"stats","id":4}"#);
        assert_eq!(stats.get("cache_ttl_expiries").and_then(Json::as_num), Some(1.0));
        assert_eq!(stats.get("cache_evictions").and_then(Json::as_num), Some(0.0));

        let bye = request(&mut c, r#"{"type":"shutdown"}"#);
        assert_eq!(bye.get("type").and_then(Json::as_str), Some("bye"));
        server.join();
    }

    #[test]
    fn bad_requests_are_typed_rejections() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut c = PlanStream::connect(server.addr()).unwrap();

        let e = request(&mut c, r#"{"type":"frobnicate","id":1}"#);
        assert_eq!(e.get("code").and_then(Json::as_str), Some("BadRequest"));

        let job = JobSpec::mics("no-such-model", 2, 8).to_json().emit();
        let e = request(&mut c, &format!(r#"{{"type":"simulate","id":2,"job":{job}}}"#));
        assert_eq!(e.get("code").and_then(Json::as_str), Some("BadRequest"));
        assert!(e.get("message").and_then(Json::as_str).unwrap().contains("unknown model"));

        // Partition size that does not divide the cluster.
        let job = JobSpec::mics("bert-10b", 2, 7).to_json().emit();
        let e = request(&mut c, &format!(r#"{{"type":"simulate","id":3,"job":{job}}}"#));
        assert!(e.get("message").and_then(Json::as_str).unwrap().contains("does not divide"));

        server.shutdown();
        server.join();
    }

    #[test]
    fn zero_deadline_rejects_before_simulating() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut c = PlanStream::connect(server.addr()).unwrap();
        let job = JobSpec::mics("bert-10b", 2, 8).to_json().emit();
        let e = request(
            &mut c,
            &format!(r#"{{"type":"simulate","id":1,"job":{job},"deadline_ms":0}}"#),
        );
        assert_eq!(e.get("code").and_then(Json::as_str), Some("DeadlineExceeded"));
        let (_, _, _, _, sim_runs) = server.cache_stats();
        assert_eq!(sim_runs, 0, "an already-expired query must not simulate");
        server.shutdown();
        server.join();
    }

    #[test]
    fn budget_exhaustion_is_reported_and_cache_hits_stay_free() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut c = PlanStream::connect(server.addr()).unwrap();

        // First simulate runs on the generous default grant.
        let job = JobSpec::mics("bert-1.5b", 1, 8).to_json().emit();
        let rep = request(&mut c, &format!(r#"{{"type":"simulate","id":1,"job":{job}}}"#));
        assert_eq!(rep.get("type").and_then(Json::as_str), Some("report"), "{rep:?}");

        // Re-provision the connection down to one FLOP: every fresh query
        // must now be rejected with the typed budget error…
        let ready = request(&mut c, r#"{"type":"hello","budget_flops":1.0}"#);
        assert_eq!(ready.get("type").and_then(Json::as_str), Some("ready"));
        let e = request(&mut c, &format!(r#"{{"type":"tune","id":2,"job":{job}}}"#));
        assert_eq!(e.get("code").and_then(Json::as_str), Some("BudgetExceeded"), "{e:?}");
        assert!(e.get("needed").and_then(Json::as_num).unwrap() > 0.0);

        // …but the memoized simulate stays free on the drained ledger.
        let rep2 = request(&mut c, &format!(r#"{{"type":"simulate","id":3,"job":{job}}}"#));
        assert_eq!(rep2.get("type").and_then(Json::as_str), Some("report"), "{rep2:?}");
        server.shutdown();
        server.join();
    }

    #[test]
    fn sweep_streams_items_then_done() {
        let server = PlannerServer::start(PlannerConfig::default()).unwrap();
        let mut c = PlanStream::connect(server.addr()).unwrap();
        let jobs = format!(
            "[{},{},{}]",
            JobSpec::mics("bert-10b", 2, 8).to_json().emit(),
            JobSpec::mics("bert-10b", 2, 16).to_json().emit(),
            JobSpec::mics("no-such-model", 2, 8).to_json().emit(),
        );
        send_frame(&mut c, &format!(r#"{{"type":"sweep","id":7,"jobs":{jobs}}}"#)).unwrap();
        let mut items = 0;
        let mut errors = 0;
        loop {
            let doc = Json::parse(&read_frame(&mut c).unwrap()).unwrap();
            match doc.get("type").and_then(Json::as_str) {
                Some("sweep_item") => {
                    items += 1;
                    if doc.get("error").is_some() {
                        errors += 1;
                    } else {
                        assert!(doc.get("report").is_some() || doc.get("oom").is_some());
                    }
                }
                Some("sweep_done") => {
                    assert_eq!(doc.get("count").and_then(Json::as_num), Some(3.0));
                    break;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert_eq!(items, 3);
        assert_eq!(errors, 1, "the bad job fails per-item, not the stream");
        server.shutdown();
        server.join();
    }
}
