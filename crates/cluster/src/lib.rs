//! Cluster topology model for public-cloud GPU training.
//!
//! MiCS's whole premise (§2.3 of the paper) is that cloud clusters have
//! *heterogeneous* networks: GPUs inside a node talk over NVLink at hundreds
//! of GB/s while nodes talk over a NIC at 12.5–50 GB/s — a 12×–24× gap,
//! compared to only ~3× on DGX clusters. This crate describes that hardware
//! (instance types, node/device layout) and the rank geometry MiCS builds on
//! it (partition groups and replication groups), and can materialize the
//! shared network resources inside a [`mics_simnet::Sim`].

#![warn(missing_docs)]

use mics_simnet::{FaultKind, FaultPlan, LinkId, Sim, SimTime};

mod groups;
mod instance;

pub use groups::{GroupLayout, GroupLayoutError};
pub use instance::InstanceType;

/// A device's global rank in the cluster (HPC convention, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rank(pub usize);

/// A node (instance) index in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Node hosting a global rank on a cluster with `k` devices per node.
///
/// The single source of truth for the `rank / k` mapping — every layer
/// (executors, NIC accounting, fault recovery) goes through here or
/// [`ClusterSpec::node_of`] rather than re-deriving it.
pub fn node_of_rank(rank: Rank, k: usize) -> NodeId {
    debug_assert!(k > 0, "devices per node must be positive");
    NodeId(rank.0 / k)
}

/// Number of distinct nodes a rank group touches on a cluster with `k`
/// devices per node. Used for NIC-volume accounting, where per-node wire
/// bytes must be multiplied by the nodes a collective actually spans.
pub fn nodes_spanned(group: &[Rank], k: usize) -> u64 {
    let mut nodes: Vec<usize> = group.iter().map(|&r| node_of_rank(r, k).0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes.len() as u64
}

/// A homogeneous cluster: `nodes` instances of one [`InstanceType`],
/// optionally with per-node network degradation (cloud stragglers).
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The instance type of every node.
    pub instance: InstanceType,
    /// Number of nodes (instances).
    pub nodes: usize,
    /// Per-node NIC bandwidth multipliers in `(0, 1]`; empty = all 1.0.
    /// Models a degraded/straggler instance — common on shared cloud
    /// networks (§6 discusses Varuna targeting exactly this).
    nic_derates: Vec<f64>,
    /// Time-varying faults (degradation windows, jitter, preemptions),
    /// keyed by node index. The static `nic_derates` above are the
    /// time-invariant special case.
    faults: FaultPlan,
}

impl ClusterSpec {
    /// Build a cluster of `nodes` instances.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(instance: InstanceType, nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        ClusterSpec { instance, nodes, nic_derates: Vec::new(), faults: FaultPlan::new(0) }
    }

    /// Mark `node`'s NIC as degraded to `factor` × its normal bandwidth
    /// (a straggler instance). `factor` must be in `(0, 1]`.
    pub fn with_slow_node(mut self, node: NodeId, factor: f64) -> Self {
        assert!(node.0 < self.nodes, "node out of range");
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        if self.nic_derates.is_empty() {
            self.nic_derates = vec![1.0; self.nodes];
        }
        self.nic_derates[node.0] = factor;
        self
    }

    /// The NIC bandwidth multiplier of `node` (1.0 unless degraded).
    pub fn nic_derate(&self, node: NodeId) -> f64 {
        self.nic_derates.get(node.0).copied().unwrap_or(1.0)
    }

    /// Time-varying generalization of [`ClusterSpec::with_slow_node`]: from
    /// `start` for `duration`, `node`'s NIC runs at `factor` × its (possibly
    /// already statically derated) bandwidth. Windows compose with static
    /// derates multiplicatively.
    pub fn with_degradation_window(
        mut self,
        node: NodeId,
        start: SimTime,
        duration: SimTime,
        factor: f64,
    ) -> Self {
        assert!(node.0 < self.nodes, "node out of range");
        let plan = std::mem::replace(&mut self.faults, FaultPlan::new(0));
        self.faults = plan.with_degradation(node.0, start, duration, factor);
        self
    }

    /// Seeded per-node NIC bandwidth jitter on *every* node: each node's
    /// capacity is redrawn from `[min_factor, 1]` every `period` until
    /// `horizon` (noisy-neighbour variability of shared cloud networks).
    /// Deterministic for a given `seed`.
    pub fn with_nic_jitter(
        mut self,
        seed: u64,
        period: SimTime,
        horizon: SimTime,
        min_factor: f64,
    ) -> Self {
        let mut jitter = FaultPlan::new(seed);
        for node in 0..self.nodes {
            jitter = jitter.with_jitter(node, period, horizon, min_factor);
        }
        let plan = std::mem::replace(&mut self.faults, FaultPlan::new(0));
        self.faults = plan.with_plan(&jitter);
        self
    }

    /// Schedule an explicit spot preemption: `node` is permanently lost at
    /// `at`. Its NIC serves no further bytes (see
    /// [`ClusterSpec::schedule_faults`]); killing the executor streams of
    /// the ranks it hosted is the execution layer's job, via
    /// [`ClusterSpec::preemptions`].
    pub fn with_preemption(mut self, node: NodeId, at: SimTime) -> Self {
        assert!(node.0 < self.nodes, "node out of range");
        let plan = std::mem::replace(&mut self.faults, FaultPlan::new(0));
        self.faults = plan.with_crash(node.0, at);
        self
    }

    /// Seeded spot-preemption trace: node losses arrive as a Poisson process
    /// with mean inter-arrival `mean_between` until `horizon`, each victim
    /// drawn uniformly among surviving nodes. Deterministic for a given
    /// `seed`.
    pub fn with_spot_trace(mut self, seed: u64, mean_between: SimTime, horizon: SimTime) -> Self {
        let trace = FaultPlan::new(seed).with_poisson_crashes(self.nodes, mean_between, horizon);
        let plan = std::mem::replace(&mut self.faults, FaultPlan::new(0));
        self.faults = plan.with_plan(&trace);
        self
    }

    /// The cluster's composed fault plan (node-indexed).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Spot preemptions in schedule order, as `(time, node)` pairs.
    pub fn preemptions(&self) -> Vec<(SimTime, NodeId)> {
        self.faults.crashes().into_iter().map(|(at, n)| (at, NodeId(n))).collect()
    }

    /// Devices per node (`k` in the paper's notation).
    pub fn devices_per_node(&self) -> usize {
        self.instance.gpus_per_node
    }

    /// Total devices in the cluster (`n` in the paper's notation).
    pub fn total_devices(&self) -> usize {
        self.nodes * self.instance.gpus_per_node
    }

    /// Node hosting a global rank.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        debug_assert!(rank.0 < self.total_devices());
        node_of_rank(rank, self.instance.gpus_per_node)
    }

    /// Rank within its node (0..k).
    pub fn local_rank(&self, rank: Rank) -> usize {
        rank.0 % self.instance.gpus_per_node
    }

    /// Iterate all global ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        (0..self.total_devices()).map(Rank)
    }

    /// Global ranks hosted on `node`.
    pub fn ranks_on_node(&self, node: NodeId) -> impl Iterator<Item = Rank> {
        let k = self.instance.gpus_per_node;
        (node.0 * k..(node.0 + 1) * k).map(Rank)
    }

    /// Do two ranks share a node (and can thus talk over NVLink)?
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Materialize the shared network resources of this cluster into `sim`.
    pub fn build_fabric(&self, sim: &mut Sim) -> Fabric {
        let mut nic = Vec::with_capacity(self.nodes);
        let mut nvlink = Vec::with_capacity(self.nodes);
        for node in 0..self.nodes {
            let bw = self.instance.nic_bw * self.nic_derate(NodeId(node));
            nic.push(sim.add_link(format!("nic[{node}]"), bw));
            nvlink.push(sim.add_link(format!("nvlink[{node}]"), self.instance.nvlink_fabric_bw));
        }
        let mut memcpy = Vec::with_capacity(self.total_devices());
        for rank in 0..self.total_devices() {
            memcpy.push(sim.add_link(format!("memcpy[{rank}]"), self.instance.memcpy_bw));
        }
        Fabric { nic, nvlink, memcpy }
    }

    /// Schedule this spec's fault plan against a materialized fabric:
    /// degradation / jitter / restore events become NIC link-rate changes
    /// (relative to the node's static base rate, so they compose with
    /// [`ClusterSpec::with_slow_node`]); a preemption pins the dead node's
    /// NIC to effectively zero from the crash instant. Streams are owned by
    /// the execution layer, so preempted nodes' streams must be killed by
    /// the caller — iterate [`ClusterSpec::preemptions`] and call
    /// [`Sim::kill_stream_at`] on each hosted rank's streams.
    pub fn schedule_faults(&self, sim: &mut Sim, fabric: &Fabric) {
        for ev in self.faults.events() {
            assert!(ev.node < self.nodes, "fault plan references node {} out of range", ev.node);
            let nic = fabric.nic[ev.node];
            match ev.kind {
                FaultKind::NicDegrade { factor } => sim.set_link_rate_at(nic, ev.at, factor),
                FaultKind::NicRestore => sim.set_link_rate_at(nic, ev.at, 1.0),
                FaultKind::Crash => sim.set_link_rate_at(nic, ev.at, 1e-9),
                // Capacity return is an elastic-scheduler signal, not a
                // fabric change: the returned slot joins a *new* world, so
                // the old fabric's NIC stays down.
                FaultKind::Return => {}
            }
        }
    }

    /// [`ClusterSpec::build_fabric`] plus [`ClusterSpec::schedule_faults`]
    /// in one call.
    pub fn build_fabric_with_faults(&self, sim: &mut Sim) -> Fabric {
        let fabric = self.build_fabric(sim);
        self.schedule_faults(sim, &fabric);
        fabric
    }

    /// The hop latencies of this cluster's instance type, used by the α–β
    /// collective cost models.
    pub fn latencies(&self) -> Latencies {
        Latencies { intra: self.instance.alpha_intra, inter: self.instance.alpha_inter }
    }
}

/// Handles to the per-node / per-device shared links of a materialized
/// cluster, as registered in a [`Sim`].
#[derive(Debug, Clone)]
pub struct Fabric {
    /// One NIC link per node (inter-node bandwidth, shared by its k GPUs).
    pub nic: Vec<LinkId>,
    /// One NVLink-fabric link per node (aggregate intra-node bandwidth).
    pub nvlink: Vec<LinkId>,
    /// One local copy engine per device (used for chunk re-arrangement).
    pub memcpy: Vec<LinkId>,
}

impl Fabric {
    /// The NIC link of the node hosting `rank`.
    pub fn nic_of(&self, spec: &ClusterSpec, rank: Rank) -> LinkId {
        self.nic[spec.node_of(rank).0]
    }

    /// The NVLink fabric of the node hosting `rank`.
    pub fn nvlink_of(&self, spec: &ClusterSpec, rank: Rank) -> LinkId {
        self.nvlink[spec.node_of(rank).0]
    }

    /// The copy engine of `rank`.
    pub fn memcpy_of(&self, rank: Rank) -> LinkId {
        self.memcpy[rank.0]
    }
}

/// Per-hop startup latencies of a cluster, used by the α–β collective cost
/// models.
#[derive(Debug, Clone, Copy)]
pub struct Latencies {
    /// Startup latency of one intra-node (NVLink) hop.
    pub intra: SimTime,
    /// Startup latency of one inter-node (NIC) hop.
    pub inter: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_geometry() {
        let spec = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4);
        assert_eq!(spec.total_devices(), 32);
        assert_eq!(spec.devices_per_node(), 8);
        assert_eq!(spec.node_of(Rank(0)), NodeId(0));
        assert_eq!(spec.node_of(Rank(7)), NodeId(0));
        assert_eq!(spec.node_of(Rank(8)), NodeId(1));
        assert_eq!(spec.node_of(Rank(31)), NodeId(3));
        assert_eq!(spec.local_rank(Rank(13)), 5);
        assert!(spec.same_node(Rank(8), Rank(15)));
        assert!(!spec.same_node(Rank(7), Rank(8)));
    }

    #[test]
    fn free_node_mapping_helpers_agree_with_spec() {
        let spec = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 4);
        for rank in spec.ranks() {
            assert_eq!(node_of_rank(rank, spec.devices_per_node()), spec.node_of(rank));
        }
        // A partition group of 16 consecutive ranks spans 2 nodes of 8.
        let group: Vec<Rank> = (0..16).map(Rank).collect();
        assert_eq!(nodes_spanned(&group, 8), 2);
        // A replication group strided by 8 touches one node per member.
        let repl: Vec<Rank> = (0..4).map(|g| Rank(g * 8)).collect();
        assert_eq!(nodes_spanned(&repl, 8), 4);
        // Duplicate nodes are counted once.
        assert_eq!(nodes_spanned(&[Rank(0), Rank(1), Rank(7)], 8), 1);
        assert_eq!(nodes_spanned(&[], 8), 0);
    }

    #[test]
    fn ranks_on_node_enumerates_k_ranks() {
        let spec = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2);
        let on1: Vec<_> = spec.ranks_on_node(NodeId(1)).collect();
        assert_eq!(on1, (8..16).map(Rank).collect::<Vec<_>>());
    }

    #[test]
    fn fabric_has_expected_links() {
        let spec = ClusterSpec::new(InstanceType::p4d_24xlarge(), 3);
        let mut sim = Sim::new();
        let fabric = spec.build_fabric(&mut sim);
        assert_eq!(fabric.nic.len(), 3);
        assert_eq!(fabric.nvlink.len(), 3);
        assert_eq!(fabric.memcpy.len(), 24);
        assert_eq!(fabric.nic_of(&spec, Rank(9)), fabric.nic[1]);
        assert_eq!(fabric.nvlink_of(&spec, Rank(23)), fabric.nvlink[2]);
    }

    #[test]
    fn instance_bandwidth_hierarchy_matches_paper() {
        // §1: intra-node is 12–24× faster than inter-node on the cloud.
        for inst in [InstanceType::p3dn_24xlarge(), InstanceType::p4d_24xlarge()] {
            let ratio = inst.nvlink_fabric_bw / inst.nic_bw;
            assert!(
                (8.0..=100.0).contains(&ratio),
                "{}: intra/inter ratio {ratio} out of plausible cloud range",
                inst.name
            );
        }
        // DGX-A100-like clusters are much more balanced (§1: ~3×).
        let dgx = InstanceType::dgx_a100();
        let ratio = dgx.nvlink_fabric_bw / dgx.nic_bw;
        assert!(ratio < 12.0, "DGX ratio {ratio} should be small");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 0);
    }

    #[test]
    fn degradation_window_slows_inter_node_transfer() {
        // p3dn NIC = 12.5 GB/s. Send 2.5 GB: healthy time is 200 ms.
        let healthy = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2);
        let degraded = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2).with_degradation_window(
            NodeId(0),
            SimTime::from_millis(100),
            SimTime::from_millis(100),
            0.25,
        );
        let run = |spec: &ClusterSpec| {
            let mut sim = Sim::new();
            let fabric = spec.build_fabric_with_faults(&mut sim);
            let s = sim.add_stream("comm");
            sim.push(s, mics_simnet::Op::transfer(fabric.nic[0], 2_500_000_000, SimTime::ZERO));
            sim.run().unwrap().makespan
        };
        assert_eq!(run(&healthy), SimTime::from_millis(200));
        // 1.25 GB by 100ms; window moves 0.3125 GB in 100ms at 3.125 GB/s;
        // remaining 0.9375 GB at full rate takes 75 ms → 275 ms.
        assert_eq!(run(&degraded), SimTime::from_millis(275));
    }

    #[test]
    fn window_composes_with_static_derate() {
        // Static 0.5 derate halves the base rate; a 0.5 window halves it
        // again during [0, 100ms].
        let spec = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 1)
            .with_slow_node(NodeId(0), 0.5)
            .with_degradation_window(NodeId(0), SimTime::ZERO, SimTime::from_millis(100), 0.5);
        let mut sim = Sim::new();
        let fabric = spec.build_fabric_with_faults(&mut sim);
        let s = sim.add_stream("comm");
        // 1 GB: 0.3125 GB during the quarter-rate window (3.125 GB/s),
        // then 0.6875 GB at the half rate (6.25 GB/s) = 110 ms → 210 ms.
        sim.push(s, mics_simnet::Op::transfer(fabric.nic[0], 1_000_000_000, SimTime::ZERO));
        assert_eq!(sim.run().unwrap().makespan, SimTime::from_millis(210));
    }

    #[test]
    fn spot_trace_is_seeded_and_deterministic() {
        let build = |seed| {
            ClusterSpec::new(InstanceType::p3dn_24xlarge(), 8)
                .with_spot_trace(seed, SimTime::from_secs(2), SimTime::from_secs(10))
                .preemptions()
        };
        let a = build(21);
        assert_eq!(a, build(21));
        assert_ne!(a, build(22));
        assert!(!a.is_empty(), "10 s horizon with 2 s mean should preempt someone");
        for (at, node) in &a {
            assert!(*at < SimTime::from_secs(10));
            assert!(node.0 < 8);
        }
    }

    #[test]
    fn preempted_node_nic_stops_serving() {
        let spec = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2)
            .with_preemption(NodeId(1), SimTime::from_millis(10));
        assert_eq!(spec.preemptions(), vec![(SimTime::from_millis(10), NodeId(1))]);
        let mut sim = Sim::new();
        let fabric = spec.build_fabric_with_faults(&mut sim);
        // A transfer on the dead node's NIC that would finish at 80 ms when
        // healthy gets stuck behind the crash; the execution layer is
        // expected to kill the stream, which unsticks the simulation.
        let s = sim.add_stream("comm");
        sim.push(s, mics_simnet::Op::transfer(fabric.nic[1], 1_000_000_000, SimTime::ZERO));
        sim.kill_stream_at(s, SimTime::from_millis(10));
        let stats = sim.run().unwrap();
        assert_eq!(stats.makespan, SimTime::from_millis(10));
        assert_eq!(stats.killed_streams, vec![s]);
        // Only the bytes moved before the crash count: 12.5 GB/s × 10 ms.
        assert_eq!(stats.link_bytes[fabric.nic[1].0], 125_000_000);
    }

    #[test]
    fn jitter_profile_is_deterministic_end_to_end() {
        let run = |seed| {
            let spec = ClusterSpec::new(InstanceType::p3dn_24xlarge(), 2).with_nic_jitter(
                seed,
                SimTime::from_millis(20),
                SimTime::from_millis(200),
                0.3,
            );
            let mut sim = Sim::new();
            let fabric = spec.build_fabric_with_faults(&mut sim);
            let s = sim.add_stream("comm");
            sim.push(s, mics_simnet::Op::transfer(fabric.nic[0], 1_000_000_000, SimTime::ZERO));
            sim.run().unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.faults, b.faults);
        // Jitter must actually slow the transfer relative to a healthy NIC.
        assert!(a.makespan > SimTime::from_millis(80));
    }
}
