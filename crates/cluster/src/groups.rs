//! Partition groups and replication groups (paper §3.2, Figure 2).
//!
//! MiCS divides the `n` devices of a cluster into `n / p` *partition groups*
//! of `p` consecutive ranks. Each partition group holds one complete replica
//! of the model states, sharded across its members. Devices with the same
//! *local group rank* across partition groups form a *replication group* of
//! `n / p` members that hold identical shards; the 2-hop gradient
//! synchronization (§3.4) all-reduces across replication groups at the
//! gradient-accumulation boundary.

use crate::{ClusterSpec, Rank};
use std::fmt;

/// The group geometry of a MiCS deployment: `n` devices, `k` per node,
/// partition group size `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupLayout {
    n: usize,
    k: usize,
    p: usize,
}

/// Rejected group geometries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupLayoutError {
    /// `p` must be at least 1 and at most `n`.
    SizeOutOfRange {
        /// Requested partition group size.
        p: usize,
        /// Cluster size.
        n: usize,
    },
    /// `p` must divide `n` so every group has the same size (paper §3.2:
    /// "Every group has the same number of devices").
    NotDivisor {
        /// Requested partition group size.
        p: usize,
        /// Cluster size.
        n: usize,
    },
    /// Partition groups must align with node boundaries: either `p` divides
    /// `k` (several groups inside one node) or `k` divides `p` (a group spans
    /// whole nodes). Misaligned groups would mix partial nodes and break the
    /// hierarchical communication channel construction (§3.3).
    NodeMisaligned {
        /// Requested partition group size.
        p: usize,
        /// Devices per node.
        k: usize,
    },
}

impl fmt::Display for GroupLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupLayoutError::SizeOutOfRange { p, n } => {
                write!(f, "partition group size {p} out of range 1..={n}")
            }
            GroupLayoutError::NotDivisor { p, n } => {
                write!(f, "partition group size {p} does not divide cluster size {n}")
            }
            GroupLayoutError::NodeMisaligned { p, k } => {
                write!(f, "partition group size {p} not aligned with {k} devices per node")
            }
        }
    }
}

impl std::error::Error for GroupLayoutError {}

impl GroupLayout {
    /// Build a layout for a cluster with `n` total devices, `k` per node, and
    /// partition groups of `p` devices.
    pub fn new(n: usize, k: usize, p: usize) -> Result<Self, GroupLayoutError> {
        if p == 0 || p > n {
            return Err(GroupLayoutError::SizeOutOfRange { p, n });
        }
        if !n.is_multiple_of(p) {
            return Err(GroupLayoutError::NotDivisor { p, n });
        }
        if !p.is_multiple_of(k) && !k.is_multiple_of(p) {
            return Err(GroupLayoutError::NodeMisaligned { p, k });
        }
        Ok(GroupLayout { n, k, p })
    }

    /// Layout derived from a [`ClusterSpec`] and a partition group size.
    pub fn for_cluster(spec: &ClusterSpec, p: usize) -> Result<Self, GroupLayoutError> {
        GroupLayout::new(spec.total_devices(), spec.devices_per_node(), p)
    }

    /// The ZeRO-3 degenerate case: one partition group spanning the cluster.
    pub fn zero3(spec: &ClusterSpec) -> Self {
        GroupLayout { n: spec.total_devices(), k: spec.devices_per_node(), p: spec.total_devices() }
    }

    /// Total devices (`n`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Devices per node (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Partition group size (`p`): how many devices shard one model replica.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of partition groups (= replication group size).
    pub fn num_partition_groups(&self) -> usize {
        self.n / self.p
    }

    /// Number of nodes one partition group spans (1 if it fits in a node).
    pub fn nodes_per_partition_group(&self) -> usize {
        self.p.div_ceil(self.k)
    }

    /// Does a partition group fit within a single node (so parameter
    /// gathering needs only NVLink)?
    pub fn partition_group_is_intra_node(&self) -> bool {
        self.p <= self.k
    }

    /// Index of the partition group containing `rank`.
    pub fn partition_group_index(&self, rank: Rank) -> usize {
        debug_assert!(rank.0 < self.n);
        rank.0 / self.p
    }

    /// Rank's position within its partition group (the "local group rank").
    pub fn local_group_rank(&self, rank: Rank) -> usize {
        rank.0 % self.p
    }

    /// Members of the partition group containing `rank`, in rank order.
    pub fn partition_group(&self, rank: Rank) -> impl Iterator<Item = Rank> {
        let start = (rank.0 / self.p) * self.p;
        (start..start + self.p).map(Rank)
    }

    /// Members of the replication group containing `rank` (all devices that
    /// hold the same shard of the model states), in rank order.
    pub fn replication_group(&self, rank: Rank) -> impl Iterator<Item = Rank> + '_ {
        let local = self.local_group_rank(rank);
        (0..self.num_partition_groups()).map(move |g| Rank(g * self.p + local))
    }

    /// The inter-node communication channel of `rank` for hierarchical
    /// all-gather (§3.3): members of the partition group with the same
    /// local rank *within their node*, one per node of the group.
    ///
    /// Returns an empty iterator if the partition group is intra-node
    /// (hierarchical communication does not apply).
    pub fn inter_node_channel(&self, rank: Rank) -> Vec<Rank> {
        if self.partition_group_is_intra_node() {
            return Vec::new();
        }
        let group_start = (rank.0 / self.p) * self.p;
        let local_in_node = rank.0 % self.k;
        (0..self.nodes_per_partition_group())
            .map(|node| Rank(group_start + node * self.k + local_in_node))
            .collect()
    }

    /// All partition groups, each as a (start rank, size `p`) pair.
    pub fn partition_groups(&self) -> impl Iterator<Item = (Rank, usize)> + '_ {
        (0..self.num_partition_groups()).map(move |g| (Rank(g * self.p), self.p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_example_two_device_groups() {
        // Figure 2: every 2 consecutive devices form a partition group;
        // odd/even ranks form two replication groups.
        let l = GroupLayout::new(8, 2, 2).unwrap();
        assert_eq!(l.num_partition_groups(), 4);
        let g: Vec<_> = l.partition_group(Rank(5)).collect();
        assert_eq!(g, vec![Rank(4), Rank(5)]);
        let r: Vec<_> = l.replication_group(Rank(5)).collect();
        assert_eq!(r, vec![Rank(1), Rank(3), Rank(5), Rank(7)]);
        let r0: Vec<_> = l.replication_group(Rank(2)).collect();
        assert_eq!(r0, vec![Rank(0), Rank(2), Rank(4), Rank(6)]);
    }

    #[test]
    fn zero3_layout_is_single_group() {
        let spec = ClusterSpec::new(crate::InstanceType::p3dn_24xlarge(), 4);
        let l = GroupLayout::zero3(&spec);
        assert_eq!(l.p(), 32);
        assert_eq!(l.num_partition_groups(), 1);
        assert_eq!(l.replication_group(Rank(3)).count(), 1);
    }

    #[test]
    fn validation_rejects_bad_sizes() {
        assert!(matches!(GroupLayout::new(16, 8, 0), Err(GroupLayoutError::SizeOutOfRange { .. })));
        assert!(matches!(
            GroupLayout::new(16, 8, 32),
            Err(GroupLayoutError::SizeOutOfRange { .. })
        ));
        assert!(matches!(GroupLayout::new(16, 8, 3), Err(GroupLayoutError::NotDivisor { .. })));
        // p=6 divides n=24 ranks? 24 % 6 == 0, but 6 vs k=8: misaligned.
        assert!(matches!(GroupLayout::new(24, 8, 6), Err(GroupLayoutError::NodeMisaligned { .. })));
    }

    #[test]
    fn group_spanning_two_nodes() {
        // 4 nodes × 8 GPUs, partition groups of 16 = 2 nodes each.
        let l = GroupLayout::new(32, 8, 16).unwrap();
        assert_eq!(l.num_partition_groups(), 2);
        assert_eq!(l.nodes_per_partition_group(), 2);
        assert!(!l.partition_group_is_intra_node());
        // Rank 19 = group 1 (ranks 16..32), local-in-node 3.
        let ch = l.inter_node_channel(Rank(19));
        assert_eq!(ch, vec![Rank(19), Rank(27)]);
        // Rank 3 = group 0, channel spans nodes 0 and 1.
        let ch = l.inter_node_channel(Rank(3));
        assert_eq!(ch, vec![Rank(3), Rank(11)]);
    }

    #[test]
    fn intra_node_group_has_no_inter_channel() {
        let l = GroupLayout::new(64, 8, 8).unwrap();
        assert!(l.partition_group_is_intra_node());
        assert!(l.inter_node_channel(Rank(12)).is_empty());
    }

    #[test]
    fn sub_node_groups_allowed() {
        // Two partition groups per node (p=4, k=8).
        let l = GroupLayout::new(16, 8, 4).unwrap();
        assert!(l.partition_group_is_intra_node());
        assert_eq!(l.num_partition_groups(), 4);
        let g: Vec<_> = l.partition_group(Rank(6)).collect();
        assert_eq!(g, vec![Rank(4), Rank(5), Rank(6), Rank(7)]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn partition_and_replication_groups_tile_the_cluster() {
        let l = GroupLayout::new(64, 8, 16).unwrap();
        // Every rank appears in exactly one partition group.
        let mut seen = [false; 64];
        for (start, size) in l.partition_groups() {
            for r in start.0..start.0 + size {
                assert!(!seen[r], "rank {r} in two groups");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Replication groups of any two ranks with equal local rank coincide.
        let a: Vec<_> = l.replication_group(Rank(5)).collect();
        let b: Vec<_> = l.replication_group(Rank(21)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn local_group_rank_consistent_with_partition_group() {
        let l = GroupLayout::new(32, 8, 8).unwrap();
        for r in 0..32 {
            let rank = Rank(r);
            let members: Vec<_> = l.partition_group(rank).collect();
            assert_eq!(members[l.local_group_rank(rank)], rank);
        }
    }
}
