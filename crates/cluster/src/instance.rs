//! Instance (node) hardware descriptions.

use mics_simnet::SimTime;

/// Hardware description of one cloud instance / node.
///
/// Bandwidths are *effective* sustained rates in bytes per second, slightly
/// below theoretical peaks, calibrated so that the collective micro-benchmarks
/// reproduce the effective bandwidths the paper reports in §3.2
/// (B_part ≈ 128 GB/s over NVLink, B_all ≈ 11 GB/s over 100 Gbps EFA).
#[derive(Debug, Clone)]
pub struct InstanceType {
    /// Marketing name, e.g. `"p3dn.24xlarge"`.
    pub name: &'static str,
    /// GPUs per node (`k`).
    pub gpus_per_node: usize,
    /// Device memory per GPU in bytes.
    pub gpu_mem_bytes: u64,
    /// Peak half-precision (tensor-core) FLOP/s per GPU.
    pub peak_fp16_flops: f64,
    /// Peak single-precision FLOP/s per GPU.
    pub peak_fp32_flops: f64,
    /// Fraction of peak FLOP/s a well-tuned transformer GEMM sustains.
    /// Calibrated so compute-only utilization matches the paper's TFLOPS
    /// numbers (§5.1.1: BERT 10B reaches ~42% of V100 peak end-to-end).
    pub gemm_efficiency: f64,
    /// Aggregate intra-node NVLink fabric bandwidth (bytes/s) usable by a
    /// node-wide collective (sum over GPUs of per-GPU NVLink bandwidth).
    pub nvlink_fabric_bw: f64,
    /// Inter-node NIC bandwidth per node (bytes/s).
    pub nic_bw: f64,
    /// Device-local copy-engine bandwidth (bytes/s), used for chunk
    /// re-arrangement in hierarchical all-gather.
    pub memcpy_bw: f64,
    /// Effective cost of one intra-node (NVLink) ring hop, including NCCL
    /// protocol latency — calibrated so small-message intra-node
    /// collectives land at measured NCCL latencies while large messages
    /// still reach B_part ≈ 128 GB/s.
    pub alpha_intra: SimTime,
    /// Effective cost of one inter-node ring hop: wire latency plus the
    /// per-step tail-latency (jitter) of the cloud network. This is the α
    /// of the α–β model and the quantity that makes effective bandwidth
    /// collapse at scale for fixed message sizes (Figure 1): a ring over p
    /// ranks pays it p−1 times. Calibrated jointly against the paper's
    /// B_all ≈ 11 GB/s (64 ranks, large messages) and the poor 128 MB
    /// utilization on 16–32 nodes.
    pub alpha_inter: SimTime,
    /// Fixed per-collective host-side launch overhead (NCCL/framework).
    pub launch_overhead: SimTime,
}

impl InstanceType {
    /// Amazon EC2 p3dn.24xlarge: 8 × V100 (32 GB), NVLink, 100 Gbps EFA.
    ///
    /// The primary evaluation platform of the paper (§5 Setups).
    pub fn p3dn_24xlarge() -> Self {
        InstanceType {
            name: "p3dn.24xlarge",
            gpus_per_node: 8,
            gpu_mem_bytes: 32 * (1 << 30),
            peak_fp16_flops: 125e12, // V100 tensor cores
            peak_fp32_flops: 15.7e12,
            gemm_efficiency: 0.52,
            // Per-GPU NVLink ~150 GB/s effective ≈ 135 GB/s → ×8 GPUs.
            nvlink_fabric_bw: 8.0 * 135e9,
            nic_bw: 12.5e9, // 100 Gbps
            memcpy_bw: 700e9,
            alpha_intra: SimTime::from_micros(25),
            alpha_inter: SimTime::from_micros(90),
            launch_overhead: SimTime::from_micros(12),
        }
    }

    /// Amazon EC2 p4d.24xlarge: 8 × A100 (40 GB), NVSwitch, 400 Gbps EFA.
    ///
    /// The second evaluation platform (§5.1.2 and the §5.1.5 case study).
    pub fn p4d_24xlarge() -> Self {
        InstanceType {
            name: "p4d.24xlarge",
            gpus_per_node: 8,
            gpu_mem_bytes: 40 * (1 << 30),
            peak_fp16_flops: 312e12, // A100 tensor cores
            peak_fp32_flops: 19.5e12,
            gemm_efficiency: 0.62,
            // Per-GPU NVSwitch ~300 GB/s effective ≈ 250 GB/s → ×8 GPUs.
            nvlink_fabric_bw: 8.0 * 250e9,
            // 400 Gbps marketing = 4 aggregated 100 Gbps EFA devices; a
            // well-tuned collective sustains ≈ 40 GB/s of the 50 GB/s line
            // rate (NCCL/libfabric-era measurements).
            nic_bw: 40e9,
            memcpy_bw: 1300e9,
            alpha_intra: SimTime::from_micros(20),
            alpha_inter: SimTime::from_micros(70),
            launch_overhead: SimTime::from_micros(10),
        }
    }

    /// NVIDIA DGX-A100 node with 8 InfiniBand HCAs (1.6 Tb/s = 200 GB/s per
    /// node), the "balanced network" reference the paper contrasts with
    /// (§1, §5.1.5).
    pub fn dgx_a100() -> Self {
        InstanceType {
            name: "dgx-a100",
            gpus_per_node: 8,
            gpu_mem_bytes: 80 * (1 << 30),
            peak_fp16_flops: 312e12,
            peak_fp32_flops: 19.5e12,
            gemm_efficiency: 0.62,
            nvlink_fabric_bw: 8.0 * 250e9,
            nic_bw: 200e9, // 8 × 200 Gbps IB
            memcpy_bw: 1300e9,
            alpha_intra: SimTime::from_micros(20),
            alpha_inter: SimTime::from_micros(25),
            launch_overhead: SimTime::from_micros(10),
        }
    }

    /// Resolve a short preset name (`p3dn`, `p4d`, `dgx`) — the grammar
    /// `mics-sim --instance` and the planner wire protocol share.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "p3dn" => Some(Self::p3dn_24xlarge()),
            "p4d" => Some(Self::p4d_24xlarge()),
            "dgx" => Some(Self::dgx_a100()),
            _ => None,
        }
    }

    /// Effective FLOP/s a GEMM-heavy kernel sustains in half precision.
    pub fn sustained_fp16_flops(&self) -> f64 {
        self.peak_fp16_flops * self.gemm_efficiency
    }

    /// Effective FLOP/s a GEMM-heavy kernel sustains in single precision.
    pub fn sustained_fp32_flops(&self) -> f64 {
        self.peak_fp32_flops * self.gemm_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for inst in
            [InstanceType::p3dn_24xlarge(), InstanceType::p4d_24xlarge(), InstanceType::dgx_a100()]
        {
            assert_eq!(inst.gpus_per_node, 8);
            assert!(inst.gpu_mem_bytes >= 32 * (1 << 30));
            assert!(inst.peak_fp16_flops > inst.peak_fp32_flops);
            assert!(inst.gemm_efficiency > 0.0 && inst.gemm_efficiency <= 1.0);
            assert!(inst.nvlink_fabric_bw > inst.nic_bw);
            assert!(inst.alpha_inter > inst.alpha_intra);
        }
    }

    #[test]
    fn p4d_has_faster_everything_than_p3dn() {
        let v100 = InstanceType::p3dn_24xlarge();
        let a100 = InstanceType::p4d_24xlarge();
        assert!(a100.peak_fp16_flops > v100.peak_fp16_flops);
        assert!(a100.nic_bw > v100.nic_bw);
        assert!(a100.gpu_mem_bytes > v100.gpu_mem_bytes);
    }

    #[test]
    fn nic_values_track_effective_collective_rates() {
        // p3dn: a single 100 Gbps EFA is saturated by one collective.
        assert_eq!(InstanceType::p3dn_24xlarge().nic_bw, 12.5e9);
        // p4d: 4 × 100 Gbps EFA devices; one collective sustains ~80% of
        // the 50 GB/s line rate.
        assert_eq!(InstanceType::p4d_24xlarge().nic_bw, 40e9);
    }
}
