//! Process-per-rank recovery: real OS processes joined through `mics-rankd`,
//! one of them SIGKILLed mid-all-gather. The thread harness cannot model
//! this failure domain — a killed process takes its half-written state with
//! it, and the survivors only learn of the death through the wire.

use mics_bench::Json;
use mics_dataplane::with_deadline;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const RANKD: &str = env!("CARGO_BIN_EXE_mics-rankd");

/// A child process killed (if still alive) when the test unwinds.
struct Reaped(Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

/// Spawn a hub process and read the address it bound.
fn spawn_hub() -> (Reaped, String) {
    let mut hub = Command::new(RANKD)
        .args(["hub", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn hub");
    let mut line = String::new();
    BufReader::new(hub.stdout.take().expect("hub stdout"))
        .read_line(&mut line)
        .expect("read hub banner");
    let addr = line.trim().strip_prefix("hub listening on ").expect("hub banner").to_string();
    (Reaped(hub), addr)
}

#[test]
fn separate_rank_processes_complete_a_clean_world() {
    with_deadline(Duration::from_secs(60), || {
        let (_hub, addr) = spawn_hub();
        let world = 3;
        let workers: Vec<Child> = (0..world)
            .map(|rank| {
                Command::new(RANKD)
                    .args(["worker", "--addr", &addr, "--rank", &rank.to_string()])
                    .args(["--world", &world.to_string(), "--iters", "25"])
                    .stdout(Stdio::piped())
                    .spawn()
                    .expect("spawn worker")
            })
            .collect();
        for (rank, worker) in workers.into_iter().enumerate() {
            let out = worker.wait_with_output().expect("wait worker");
            assert!(out.status.success(), "rank {rank} exited with {}", out.status);
            let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("worker report");
            assert_eq!(doc.get("rank").and_then(Json::as_num), Some(rank as f64));
            assert_eq!(doc.get("ok"), Some(&Json::Bool(true)), "rank {rank} not ok");
        }
    })
}

#[test]
fn sigkill_mid_all_gather_is_detected_and_survivors_rebuild() {
    with_deadline(Duration::from_secs(150), || {
        let out_path = std::env::temp_dir().join("mics_rankd_multiproc_test.json");
        let out_path = out_path.to_str().unwrap().to_string();
        // `bench` spawns the hub plus 4 rank processes, SIGKILLs rank 2 mid
        // all-gather, and asserts each survivor's report before writing the
        // artifact — a non-zero exit means a claim failed inside.
        let output = Command::new(RANKD)
            .args(["bench", "--out", &out_path, "--world", "4", "--victim", "2"])
            .output()
            .expect("run bench");
        assert!(
            output.status.success(),
            "bench failed:\n{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );

        // Cross-check the claims from the artifact itself.
        let doc = Json::parse(&std::fs::read_to_string(&out_path).expect("artifact")).unwrap();
        let num = |k: &str| doc.get(k).and_then(Json::as_num).expect(k);
        assert!(num("max_detect_ms") < num("detect_deadline_ms"), "detection not bounded");
        assert_eq!(num("shrunk_world"), 3.0);
        assert_eq!(doc.get("all_survivors_recovered"), Some(&Json::Bool(true)));
        let gathered: Vec<f64> = doc
            .get("post_gather")
            .and_then(Json::as_arr)
            .expect("post_gather")
            .iter()
            .map(|v| v.as_num().unwrap())
            .collect();
        assert_eq!(gathered, [0.0, 1.0, 3.0], "survivors must keep their world order");
        let rows = doc
            .get("survivors")
            .and_then(|t| t.get("rows"))
            .and_then(Json::as_arr)
            .expect("survivor table");
        assert_eq!(rows.len(), 3, "one report per survivor");
        std::fs::remove_file(&out_path).ok();
    })
}
