//! `mics-sim perf-diff`: metric-by-metric comparison of two `results/`
//! snapshots, the regression gate `scripts/verify.sh` runs.
//!
//! Both directories are scanned for `*.json` files; every pair with the
//! same name is parsed ([`Json::parse`]) and walked structurally. Numeric
//! leaves — plain numbers, and table-cell strings like `"24.4"` or
//! `"1.72×"` — are compared under a relative threshold; everything else
//! (labels, shapes, array lengths, missing files or keys) must match
//! exactly. Any violation is a regression: the caller exits nonzero, so
//! the gate fails loudly instead of letting a perf or fidelity drift slip
//! into a refreshed snapshot.
//!
//! The comparison is **direction-aware**: a metric's name decides which
//! way "worse" points. Names ending `_ns`/`_us`/`_ms` (latencies) only
//! regress when they grow; names containing `speedup`, `per_sec`,
//! `flops` or `goodput` (throughputs) only regress when they shrink;
//! everything else is symmetric, as fidelity-style metrics must be.
//! Over-threshold changes in the *good* direction are reported
//! informationally, never fatally — a faster kernel bench must not fail
//! the gate. Table cells resolve their metric name through the sibling
//! `headers` array, so `"blocked_ns"` columns inside `rows` get
//! lower-is-better treatment too.

use crate::CliError;
use mics_core::Json;
use std::collections::BTreeSet;
use std::path::Path;

/// Arguments of the `perf-diff` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiffArgs {
    /// Baseline snapshot directory (e.g. a pristine `results/`).
    pub old_dir: String,
    /// Candidate snapshot directory to gate.
    pub new_dir: String,
    /// Maximum tolerated relative change of a numeric leaf, in percent.
    pub threshold_pct: f64,
}

impl Default for PerfDiffArgs {
    fn default() -> Self {
        PerfDiffArgs { old_dir: String::new(), new_dir: String::new(), threshold_pct: 5.0 }
    }
}

/// Running totals and the regression list of one comparison.
#[derive(Debug, Default)]
struct DiffReport {
    files: usize,
    metrics: usize,
    regressions: Vec<String>,
    /// Over-threshold moves in a metric's *good* direction — reported,
    /// never fatal.
    improvements: Vec<String>,
}

/// Which way "worse" points for a metric, inferred from its name.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Direction {
    /// Latency-style: regression = grew.
    LowerIsBetter,
    /// Throughput-style: regression = shrank.
    HigherIsBetter,
    /// Fidelity-style: any over-threshold move is a regression.
    Symmetric,
}

/// Infer a metric's direction from its name (a JSON key or a table
/// column header).
fn direction(name: &str) -> Direction {
    let n = name.to_ascii_lowercase();
    if n.ends_with("_ns") || n.ends_with("_us") || n.ends_with("_ms") {
        Direction::LowerIsBetter
    } else if n.contains("speedup")
        || n.contains("per_sec")
        || n.contains("flops")
        || n.contains("goodput")
    {
        Direction::HigherIsBetter
    } else {
        Direction::Symmetric
    }
}

/// Compare two snapshot directories. `Ok(report)` when every metric is
/// within threshold; `Err` carries the same report with the regression
/// list so the process exits nonzero.
pub fn perf_diff(args: &PerfDiffArgs) -> Result<String, CliError> {
    let old_names = json_files(&args.old_dir)?;
    let new_names = json_files(&args.new_dir)?;
    let mut report = DiffReport::default();
    for name in &old_names {
        if !new_names.contains(name) {
            report.regressions.push(format!("{name}: missing from {}", args.new_dir));
            continue;
        }
        let old = parse_file(&args.old_dir, name)?;
        let new = parse_file(&args.new_dir, name)?;
        report.files += 1;
        diff_value(name, "", &old, &new, args.threshold_pct, &mut report);
    }
    let added: Vec<&String> = new_names.difference(&old_names).collect();
    let mut out = format!(
        "perf-diff {} -> {} (threshold {}%): {} files, {} numeric metrics compared",
        args.old_dir, args.new_dir, args.threshold_pct, report.files, report.metrics,
    );
    if !added.is_empty() {
        out.push_str(&format!(
            "\nnew files (not gated): {}",
            added.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        ));
    }
    if !report.improvements.is_empty() {
        out.push_str(&format!("\n{} improvement(s) (not gated):", report.improvements.len()));
        for imp in &report.improvements {
            out.push_str(&format!("\n  {imp}"));
        }
    }
    if report.regressions.is_empty() {
        out.push_str("\nok: no regressions");
        Ok(out)
    } else {
        out.push_str(&format!("\n{} regression(s):", report.regressions.len()));
        for r in &report.regressions {
            out.push_str(&format!("\n  {r}"));
        }
        Err(CliError(out))
    }
}

/// The sorted `*.json` file names directly inside `dir`.
fn json_files(dir: &str) -> Result<BTreeSet<String>, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read snapshot directory '{dir}': {e}")))?;
    let mut names = BTreeSet::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("cannot scan '{dir}': {e}")))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") && path.is_file() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.insert(name.to_string());
            }
        }
    }
    Ok(names)
}

fn parse_file(dir: &str, name: &str) -> Result<Json, CliError> {
    let path = Path::new(dir).join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError(format!("cannot read '{}': {e}", path.display())))?;
    Json::parse(&text)
        .map_err(|e| CliError(format!("'{}' is not valid JSON: {e:?}", path.display())))
}

/// A leaf's numeric value: plain numbers, or table-cell strings holding a
/// number (optionally suffixed `×`, the speedup notation the results
/// tables use). Non-numeric strings return `None` and compare exactly.
fn numeric(value: &Json) -> Option<f64> {
    match value {
        Json::Num(n) => Some(*n),
        Json::Str(s) => {
            let t = s.trim().trim_end_matches('×').trim();
            if t.is_empty() {
                None
            } else {
                t.parse::<f64>().ok()
            }
        }
        _ => None,
    }
}

/// Structural walk: numeric leaves compare under the threshold with the
/// direction implied by `metric` (the nearest enclosing key or column
/// header), all other leaves and shapes must match exactly.
fn diff_value(
    path: &str,
    metric: &str,
    old: &Json,
    new: &Json,
    threshold_pct: f64,
    report: &mut DiffReport,
) {
    if let (Some(a), Some(b)) = (numeric(old), numeric(new)) {
        report.metrics += 1;
        let denom = a.abs().max(b.abs());
        if denom > 0.0 {
            let change_pct = (b - a).abs() / denom * 100.0;
            if change_pct > threshold_pct {
                let improved = match direction(metric) {
                    Direction::LowerIsBetter => b < a,
                    Direction::HigherIsBetter => b > a,
                    Direction::Symmetric => false,
                };
                if improved {
                    report
                        .improvements
                        .push(format!("{path}: {a} -> {b} ({change_pct:.1}% better)"));
                } else {
                    report
                        .regressions
                        .push(format!("{path}: {a} -> {b} ({change_pct:.1}% change)"));
                }
            }
        }
        return;
    }
    match (old, new) {
        (Json::Obj(a), Json::Obj(b)) => {
            // A `headers` array names the columns of a sibling `rows`
            // array-of-arrays (the mics-bench table shape); resolve each
            // cell's metric through it so latency/throughput columns get
            // direction-aware treatment.
            let headers: Option<Vec<&str>> =
                a.iter().find(|(k, _)| k == "headers").and_then(|(_, v)| match v {
                    Json::Arr(hs) => hs
                        .iter()
                        .map(|h| match h {
                            Json::Str(s) => Some(s.as_str()),
                            _ => None,
                        })
                        .collect(),
                    _ => None,
                });
            for (k, va) in a {
                let Some((_, vb)) = b.iter().find(|(kb, _)| kb == k) else {
                    report.regressions.push(format!("{path}.{k}: key missing"));
                    continue;
                };
                let sub = format!("{path}.{k}");
                match (k.as_str(), &headers, va, vb) {
                    ("rows", Some(cols), Json::Arr(ra), Json::Arr(rb)) => {
                        diff_rows(&sub, cols, ra, rb, threshold_pct, report)
                    }
                    _ => diff_value(&sub, k, va, vb, threshold_pct, report),
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                report.regressions.push(format!(
                    "{path}: array length changed ({} -> {})",
                    a.len(),
                    b.len()
                ));
                return;
            }
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                diff_value(&format!("{path}[{i}]"), metric, va, vb, threshold_pct, report);
            }
        }
        (a, b) if a == b => {}
        (a, b) => {
            report.regressions.push(format!(
                "{path}: value changed ({} -> {})",
                a.emit(),
                b.emit()
            ));
        }
    }
}

/// Walk a table's `rows`, naming each cell's metric after its column
/// header.
fn diff_rows(
    path: &str,
    cols: &[&str],
    old: &[Json],
    new: &[Json],
    threshold_pct: f64,
    report: &mut DiffReport,
) {
    if old.len() != new.len() {
        report.regressions.push(format!(
            "{path}: row count changed ({} -> {})",
            old.len(),
            new.len()
        ));
        return;
    }
    for (i, (ra, rb)) in old.iter().zip(new).enumerate() {
        match (ra, rb) {
            (Json::Arr(ca), Json::Arr(cb)) => {
                if ca.len() != cb.len() {
                    report.regressions.push(format!(
                        "{path}[{i}]: row width changed ({} -> {})",
                        ca.len(),
                        cb.len()
                    ));
                    continue;
                }
                for (j, (va, vb)) in ca.iter().zip(cb).enumerate() {
                    let metric = cols.get(j).copied().unwrap_or("");
                    diff_value(&format!("{path}[{i}][{j}]"), metric, va, vb, threshold_pct, report);
                }
            }
            _ => diff_value(&format!("{path}[{i}]"), "", ra, rb, threshold_pct, report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(tag: &str, files: &[(&str, &str)]) -> String {
        let dir = std::env::temp_dir().join(format!("mics_perf_diff_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in files {
            std::fs::write(dir.join(name), text).unwrap();
        }
        dir.to_str().unwrap().to_string()
    }

    fn args(old: &str, new: &str) -> PerfDiffArgs {
        PerfDiffArgs { old_dir: old.into(), new_dir: new.into(), ..PerfDiffArgs::default() }
    }

    #[test]
    fn identical_snapshots_pass() {
        let doc = r#"{"rows":[["mics","24.4","1.72×"]],"samples_per_sec":24.4}"#;
        let a = snapshot("id_a", &[("fig.json", doc)]);
        let b = snapshot("id_b", &[("fig.json", doc)]);
        let out = perf_diff(&args(&a, &b)).unwrap();
        assert!(out.contains("no regressions"), "{out}");
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }

    #[test]
    fn small_drift_within_threshold_passes_large_drift_fails() {
        let a = snapshot("thr_a", &[("fig.json", r#"{"samples_per_sec":100.0}"#)]);
        let ok = snapshot("thr_ok", &[("fig.json", r#"{"samples_per_sec":102.0}"#)]);
        let bad = snapshot("thr_bad", &[("fig.json", r#"{"samples_per_sec":80.0}"#)]);
        assert!(perf_diff(&args(&a, &ok)).is_ok(), "2% drift is under the 5% default");
        let e = perf_diff(&args(&a, &bad)).unwrap_err();
        assert!(e.0.contains("fig.json.samples_per_sec"), "{e}");
        assert!(e.0.contains("regression"), "{e}");
        for d in [a, ok, bad] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn table_cell_strings_compare_numerically() {
        // "1.72×" vs "1.73×" is a 0.6% change: within threshold even though
        // the strings differ byte-wise.
        let a = snapshot("cell_a", &[("t.json", r#"{"rows":[["mics","1.72×"]]}"#)]);
        let b = snapshot("cell_b", &[("t.json", r#"{"rows":[["mics","1.73×"]]}"#)]);
        assert!(perf_diff(&args(&a, &b)).is_ok());
        // A label change is a shape regression, threshold or not.
        let c = snapshot("cell_c", &[("t.json", r#"{"rows":[["zero3","1.72×"]]}"#)]);
        assert!(perf_diff(&args(&a, &c)).is_err());
        for d in [a, b, c] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn latency_keys_only_regress_upward() {
        // `_ns` names are lower-is-better: a big drop is an improvement
        // (reported, not fatal); a big rise is a regression.
        let a = snapshot("dir_a", &[("b.json", r#"{"matmul_ns":1000}"#)]);
        let faster = snapshot("dir_fast", &[("b.json", r#"{"matmul_ns":400}"#)]);
        let slower = snapshot("dir_slow", &[("b.json", r#"{"matmul_ns":2500}"#)]);
        let out = perf_diff(&args(&a, &faster)).unwrap();
        assert!(out.contains("improvement(s) (not gated)"), "{out}");
        assert!(out.contains("no regressions"), "{out}");
        let e = perf_diff(&args(&a, &slower)).unwrap_err();
        assert!(e.0.contains("b.json.matmul_ns"), "{e}");
        for d in [a, faster, slower] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn throughput_keys_only_regress_downward() {
        let a = snapshot("thru_a", &[("b.json", r#"{"gflops":10.0,"speedup":"2.0×"}"#)]);
        let up = snapshot("thru_up", &[("b.json", r#"{"gflops":30.0,"speedup":"4.0×"}"#)]);
        let down = snapshot("thru_dn", &[("b.json", r#"{"gflops":3.0,"speedup":"0.9×"}"#)]);
        assert!(perf_diff(&args(&a, &up)).is_ok(), "faster must pass the gate");
        let e = perf_diff(&args(&a, &down)).unwrap_err();
        assert!(e.0.contains("gflops"), "{e}");
        assert!(e.0.contains("speedup"), "{e}");
        for d in [a, up, down] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn table_cells_resolve_direction_through_headers() {
        // A `blocked_ns` column inside `rows` is lower-is-better: halving
        // passes, tripling fails. The label column still compares exactly.
        let doc = |ns: u64| {
            format!(r#"{{"headers":["kernel","blocked_ns"],"rows":[["matmul","{ns}"]]}}"#)
        };
        let a = snapshot("hdr_a", &[("t.json", &doc(1000))]);
        let faster = snapshot("hdr_fast", &[("t.json", &doc(500))]);
        let slower = snapshot("hdr_slow", &[("t.json", &doc(3000))]);
        assert!(perf_diff(&args(&a, &faster)).is_ok(), "faster cells must pass");
        let e = perf_diff(&args(&a, &slower)).unwrap_err();
        assert!(e.0.contains("rows[0][1]"), "{e}");
        // Fidelity-style numbers stay symmetric: a loss that *drops* more
        // than the threshold still fails (drift is drift).
        let f1 = snapshot("sym_a", &[("f.json", r#"{"final_loss":1.0}"#)]);
        let f2 = snapshot("sym_b", &[("f.json", r#"{"final_loss":0.5}"#)]);
        assert!(perf_diff(&args(&f1, &f2)).is_err(), "symmetric metrics gate both ways");
        for d in [a, faster, slower, f1, f2] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn pure_additions_pass() {
        // A snapshot that only *adds* result files (a new bench landing)
        // must pass the gate — additions are reported informationally, not
        // gated; only missing or changed metrics fail.
        let a = snapshot("add_a", &[("x.json", r#"{"v":1}"#)]);
        let b = snapshot("add_b", &[("x.json", r#"{"v":1}"#), ("new_bench.json", r#"{"v":9}"#)]);
        let out = perf_diff(&args(&a, &b)).unwrap();
        assert!(out.contains("new files (not gated): new_bench.json"), "{out}");
        assert!(out.contains("no regressions"), "{out}");
        for d in [a, b] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn missing_files_and_keys_are_regressions_new_files_are_not() {
        let a = snapshot("miss_a", &[("x.json", r#"{"v":1,"w":2}"#)]);
        let b = snapshot("miss_b", &[("y.json", r#"{"v":1}"#)]);
        let e = perf_diff(&args(&a, &b)).unwrap_err();
        assert!(e.0.contains("x.json: missing"), "{e}");
        let c = snapshot("miss_c", &[("x.json", r#"{"v":1}"#), ("extra.json", "{}")]);
        let e = perf_diff(&args(&a, &c)).unwrap_err();
        assert!(e.0.contains("x.json.w: key missing"), "{e}");
        assert!(e.0.contains("new files (not gated): extra.json"), "{e}");
        for d in [a, b, c] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
