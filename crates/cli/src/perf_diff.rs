//! `mics-sim perf-diff`: metric-by-metric comparison of two `results/`
//! snapshots, the regression gate `scripts/verify.sh` runs.
//!
//! Both directories are scanned for `*.json` files; every pair with the
//! same name is parsed ([`Json::parse`]) and walked structurally. Numeric
//! leaves — plain numbers, and table-cell strings like `"24.4"` or
//! `"1.72×"` — are compared under a relative threshold; everything else
//! (labels, shapes, array lengths, missing files or keys) must match
//! exactly. Any violation is a regression: the caller exits nonzero, so
//! the gate fails loudly instead of letting a perf or fidelity drift slip
//! into a refreshed snapshot.

use crate::CliError;
use mics_core::Json;
use std::collections::BTreeSet;
use std::path::Path;

/// Arguments of the `perf-diff` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfDiffArgs {
    /// Baseline snapshot directory (e.g. a pristine `results/`).
    pub old_dir: String,
    /// Candidate snapshot directory to gate.
    pub new_dir: String,
    /// Maximum tolerated relative change of a numeric leaf, in percent.
    pub threshold_pct: f64,
}

impl Default for PerfDiffArgs {
    fn default() -> Self {
        PerfDiffArgs { old_dir: String::new(), new_dir: String::new(), threshold_pct: 5.0 }
    }
}

/// Running totals and the regression list of one comparison.
#[derive(Debug, Default)]
struct DiffReport {
    files: usize,
    metrics: usize,
    regressions: Vec<String>,
}

/// Compare two snapshot directories. `Ok(report)` when every metric is
/// within threshold; `Err` carries the same report with the regression
/// list so the process exits nonzero.
pub fn perf_diff(args: &PerfDiffArgs) -> Result<String, CliError> {
    let old_names = json_files(&args.old_dir)?;
    let new_names = json_files(&args.new_dir)?;
    let mut report = DiffReport::default();
    for name in &old_names {
        if !new_names.contains(name) {
            report.regressions.push(format!("{name}: missing from {}", args.new_dir));
            continue;
        }
        let old = parse_file(&args.old_dir, name)?;
        let new = parse_file(&args.new_dir, name)?;
        report.files += 1;
        diff_value(name, &old, &new, args.threshold_pct, &mut report);
    }
    let added: Vec<&String> = new_names.difference(&old_names).collect();
    let mut out = format!(
        "perf-diff {} -> {} (threshold {}%): {} files, {} numeric metrics compared",
        args.old_dir, args.new_dir, args.threshold_pct, report.files, report.metrics,
    );
    if !added.is_empty() {
        out.push_str(&format!(
            "\nnew files (not gated): {}",
            added.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        ));
    }
    if report.regressions.is_empty() {
        out.push_str("\nok: no regressions");
        Ok(out)
    } else {
        out.push_str(&format!("\n{} regression(s):", report.regressions.len()));
        for r in &report.regressions {
            out.push_str(&format!("\n  {r}"));
        }
        Err(CliError(out))
    }
}

/// The sorted `*.json` file names directly inside `dir`.
fn json_files(dir: &str) -> Result<BTreeSet<String>, CliError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError(format!("cannot read snapshot directory '{dir}': {e}")))?;
    let mut names = BTreeSet::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError(format!("cannot scan '{dir}': {e}")))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") && path.is_file() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.insert(name.to_string());
            }
        }
    }
    Ok(names)
}

fn parse_file(dir: &str, name: &str) -> Result<Json, CliError> {
    let path = Path::new(dir).join(name);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError(format!("cannot read '{}': {e}", path.display())))?;
    Json::parse(&text)
        .map_err(|e| CliError(format!("'{}' is not valid JSON: {e:?}", path.display())))
}

/// A leaf's numeric value: plain numbers, or table-cell strings holding a
/// number (optionally suffixed `×`, the speedup notation the results
/// tables use). Non-numeric strings return `None` and compare exactly.
fn numeric(value: &Json) -> Option<f64> {
    match value {
        Json::Num(n) => Some(*n),
        Json::Str(s) => {
            let t = s.trim().trim_end_matches('×').trim();
            if t.is_empty() {
                None
            } else {
                t.parse::<f64>().ok()
            }
        }
        _ => None,
    }
}

/// Structural walk: numeric leaves compare under the threshold, all other
/// leaves and shapes must match exactly.
fn diff_value(path: &str, old: &Json, new: &Json, threshold_pct: f64, report: &mut DiffReport) {
    if let (Some(a), Some(b)) = (numeric(old), numeric(new)) {
        report.metrics += 1;
        let denom = a.abs().max(b.abs());
        if denom > 0.0 {
            let change_pct = (b - a).abs() / denom * 100.0;
            if change_pct > threshold_pct {
                report.regressions.push(format!("{path}: {a} -> {b} ({change_pct:.1}% change)"));
            }
        }
        return;
    }
    match (old, new) {
        (Json::Obj(a), Json::Obj(b)) => {
            for (k, va) in a {
                match b.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => {
                        diff_value(&format!("{path}.{k}"), va, vb, threshold_pct, report)
                    }
                    None => report.regressions.push(format!("{path}.{k}: key missing")),
                }
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                report.regressions.push(format!(
                    "{path}: array length changed ({} -> {})",
                    a.len(),
                    b.len()
                ));
                return;
            }
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                diff_value(&format!("{path}[{i}]"), va, vb, threshold_pct, report);
            }
        }
        (a, b) if a == b => {}
        (a, b) => {
            report.regressions.push(format!(
                "{path}: value changed ({} -> {})",
                a.emit(),
                b.emit()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(tag: &str, files: &[(&str, &str)]) -> String {
        let dir = std::env::temp_dir().join(format!("mics_perf_diff_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in files {
            std::fs::write(dir.join(name), text).unwrap();
        }
        dir.to_str().unwrap().to_string()
    }

    fn args(old: &str, new: &str) -> PerfDiffArgs {
        PerfDiffArgs { old_dir: old.into(), new_dir: new.into(), ..PerfDiffArgs::default() }
    }

    #[test]
    fn identical_snapshots_pass() {
        let doc = r#"{"rows":[["mics","24.4","1.72×"]],"samples_per_sec":24.4}"#;
        let a = snapshot("id_a", &[("fig.json", doc)]);
        let b = snapshot("id_b", &[("fig.json", doc)]);
        let out = perf_diff(&args(&a, &b)).unwrap();
        assert!(out.contains("no regressions"), "{out}");
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }

    #[test]
    fn small_drift_within_threshold_passes_large_drift_fails() {
        let a = snapshot("thr_a", &[("fig.json", r#"{"samples_per_sec":100.0}"#)]);
        let ok = snapshot("thr_ok", &[("fig.json", r#"{"samples_per_sec":102.0}"#)]);
        let bad = snapshot("thr_bad", &[("fig.json", r#"{"samples_per_sec":80.0}"#)]);
        assert!(perf_diff(&args(&a, &ok)).is_ok(), "2% drift is under the 5% default");
        let e = perf_diff(&args(&a, &bad)).unwrap_err();
        assert!(e.0.contains("fig.json.samples_per_sec"), "{e}");
        assert!(e.0.contains("regression"), "{e}");
        for d in [a, ok, bad] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn table_cell_strings_compare_numerically() {
        // "1.72×" vs "1.73×" is a 0.6% change: within threshold even though
        // the strings differ byte-wise.
        let a = snapshot("cell_a", &[("t.json", r#"{"rows":[["mics","1.72×"]]}"#)]);
        let b = snapshot("cell_b", &[("t.json", r#"{"rows":[["mics","1.73×"]]}"#)]);
        assert!(perf_diff(&args(&a, &b)).is_ok());
        // A label change is a shape regression, threshold or not.
        let c = snapshot("cell_c", &[("t.json", r#"{"rows":[["zero3","1.72×"]]}"#)]);
        assert!(perf_diff(&args(&a, &c)).is_err());
        for d in [a, b, c] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn pure_additions_pass() {
        // A snapshot that only *adds* result files (a new bench landing)
        // must pass the gate — additions are reported informationally, not
        // gated; only missing or changed metrics fail.
        let a = snapshot("add_a", &[("x.json", r#"{"v":1}"#)]);
        let b = snapshot("add_b", &[("x.json", r#"{"v":1}"#), ("new_bench.json", r#"{"v":9}"#)]);
        let out = perf_diff(&args(&a, &b)).unwrap();
        assert!(out.contains("new files (not gated): new_bench.json"), "{out}");
        assert!(out.contains("no regressions"), "{out}");
        for d in [a, b] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn missing_files_and_keys_are_regressions_new_files_are_not() {
        let a = snapshot("miss_a", &[("x.json", r#"{"v":1,"w":2}"#)]);
        let b = snapshot("miss_b", &[("y.json", r#"{"v":1}"#)]);
        let e = perf_diff(&args(&a, &b)).unwrap_err();
        assert!(e.0.contains("x.json: missing"), "{e}");
        let c = snapshot("miss_c", &[("x.json", r#"{"v":1}"#), ("extra.json", "{}")]);
        let e = perf_diff(&args(&a, &c)).unwrap_err();
        assert!(e.0.contains("x.json.w: key missing"), "{e}");
        assert!(e.0.contains("new files (not gated): extra.json"), "{e}");
        for d in [a, b, c] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}
