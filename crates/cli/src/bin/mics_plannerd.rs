//! `mics-plannerd` — the planning/costing service as a command-line tool.
//!
//! Three subcommands:
//!
//! * `serve` — run the planner server on an address until a client sends
//!   `shutdown` (the resolved address is printed on stdout, so scripts can
//!   bind `127.0.0.1:0` and scrape the port);
//! * `query` — one typed query against a running server: simulate a job,
//!   or `--tune` to search its best strategy;
//! * `bench` — hammer a server (an in-process one by default) from many
//!   client threads and print queries/sec, cache behaviour and latency
//!   percentiles.
//!
//! Query results print as one JSON document on stdout; diagnostics go to
//! stderr — same contract as `mics-rankd`.

use mics_core::{Json, ToJson};
use mics_planner::{JobSpec, PlannerClient, PlannerConfig, PlannerServer};
use std::io::Write as _;
use std::time::{Duration, Instant};

const USAGE: &str = "\
mics-plannerd — planning/costing service over the MiCS simulator and tuner

USAGE:
  mics-plannerd serve [--addr HOST:PORT|unix:PATH] [--workers N]
                      [--queue-depth N] [--budget-flops F] [--deadline-ms T]
  mics-plannerd query --addr A --model M --nodes N [--micro-batch B]
                      [--instance p3dn|p4d|dgx] [--strategy S] [--accum K]
                      [--tune] [--compression none,int8,...] [--deadline-ms T]
  mics-plannerd bench [--addr A] [--clients K] [--queries N]
                      [--out results/FILE.json]
  mics-plannerd stop --addr A

`serve` runs until a client sends a shutdown request (e.g. `stop`).
`query` speaks the planner protocol once and prints the answer as JSON.
`bench` measures a server (spawning a private in-process one unless
--addr points at yours).";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("query") => run_query(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("stop") => run_stop(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(2);
    }
}

/// `--flag value` pairs into typed lookups (plus bare `--tune`).
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(flag) = it.next() {
            let flag = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got '{flag}'\n\n{USAGE}"))?;
            // `--tune` is a bare switch; everything else takes a value.
            if flag == "tune" {
                pairs.push((flag.to_string(), "true".to_string()));
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{flag} requires a value"))?;
            pairs.push((flag.to_string(), value.clone()));
        }
        Ok(Flags(pairs))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be an integer, got '{v}'")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required\n\n{USAGE}"))
    }
}

fn config_from(flags: &Flags) -> Result<PlannerConfig, String> {
    let mut cfg = PlannerConfig::default();
    if let Some(addr) = flags.get("addr") {
        cfg.addr = addr.to_string();
    }
    cfg.workers = flags.num("workers", cfg.workers)?;
    cfg.queue_depth = flags.num("queue-depth", cfg.queue_depth)?;
    if let Some(b) = flags.get("budget-flops") {
        cfg.default_budget_flops =
            b.parse().map_err(|_| format!("--budget-flops must be a number, got '{b}'"))?;
    }
    if let Some(ms) = flags.get("deadline-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--deadline-ms must be an integer".to_string())?;
        cfg.default_deadline = Duration::from_millis(ms);
    }
    Ok(cfg)
}

/// Serve until a client asks us to shut down.
fn run_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let cfg = config_from(&flags)?;
    let server = PlannerServer::start(cfg).map_err(|e| format!("cannot start server: {e}"))?;
    println!("planner listening on {}", server.addr());
    std::io::stdout().flush().ok();
    server.join();
    eprintln!("planner drained and stopped");
    Ok(())
}

fn job_from(flags: &Flags) -> Result<JobSpec, String> {
    Ok(JobSpec {
        model: flags.required("model")?.to_string(),
        micro_batch: flags.num("micro-batch", 8)?,
        instance: flags.get("instance").unwrap_or("p3dn").to_string(),
        nodes: flags.required("nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
        strategy: flags.get("strategy").unwrap_or("mics:8").to_string(),
        accum: flags.num("accum", 4)?,
    })
}

/// One query against a running server.
fn run_query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.required("addr")?;
    let job = job_from(&flags)?;
    let deadline = flags.get("deadline-ms").map(|ms| {
        ms.parse::<u64>().map(Duration::from_millis).map_err(|_| "--deadline-ms must be an integer")
    });
    let deadline = deadline.transpose().map_err(String::from)?;
    let mut client =
        PlannerClient::connect(addr).map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    let doc = if flags.get("tune").is_some() {
        let compression: Vec<&str> =
            flags.get("compression").map(|c| c.split(',').collect()).unwrap_or_default();
        match client.tune(&job, &compression, deadline).map_err(|e| e.to_string())? {
            Ok(t) => Json::obj([
                ("best", t.best.to_json()),
                ("report", t.report.to_json()),
                ("explored", Json::Num(t.explored as f64)),
            ]),
            Err(oom) => Json::obj([("oom", oom.to_json())]),
        }
    } else {
        match client.simulate(&job, deadline).map_err(|e| e.to_string())? {
            Ok(r) => Json::obj([("report", r.to_json())]),
            Err(oom) => Json::obj([("oom", oom.to_json())]),
        }
    };
    println!("{}", doc.pretty());
    Ok(())
}

/// Ask a running server to drain and exit.
fn run_stop(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.required("addr")?;
    let mut client =
        PlannerClient::connect(addr).map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    client.shutdown_server().map_err(|e| e.to_string())?;
    eprintln!("shutdown acknowledged by {addr}");
    Ok(())
}

/// Hammer a server and report throughput/latency/cache behaviour.
fn run_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let clients = flags.num("clients", 4)?.max(1);
    let queries = flags.num("queries", 64)?.max(1);

    // Target the given server, or spin up a private in-process one.
    let private = flags.get("addr").is_none();
    let server = if private {
        Some(PlannerServer::start(PlannerConfig::default()).map_err(|e| e.to_string())?)
    } else {
        None
    };
    let addr = flags
        .get("addr")
        .map(str::to_string)
        .unwrap_or_else(|| server.as_ref().unwrap().addr().to_string());
    eprintln!("benching {addr} with {clients} clients × {queries} queries");

    // A small pool of distinct jobs, cycled per query index so every client
    // mixes cold misses with hits on what its peers already computed.
    let jobs: Vec<JobSpec> = [(1usize, 8usize), (2, 8), (2, 16), (1, 4)]
        .iter()
        .flat_map(|&(nodes, p)| {
            [4usize, 8].into_iter().map(move |mb| {
                let mut j = JobSpec::mics("bert-1.5b", nodes, p);
                j.micro_batch = mb;
                j
            })
        })
        .collect();

    let started = Instant::now();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(clients * queries);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let jobs = jobs.clone();
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client = PlannerClient::connect(&addr).map_err(|e| e.to_string())?;
                let mut lat = Vec::with_capacity(queries);
                for q in 0..queries {
                    let job = &jobs[(c + q) % jobs.len()];
                    let t = Instant::now();
                    client
                        .simulate(job, None)
                        .map_err(|e| e.to_string())?
                        .map_err(|oom| format!("bench job unexpectedly OOMs: {oom:?}"))?;
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                Ok(lat)
            })
        })
        .collect();
    for h in handles {
        latencies_ns.extend(h.join().map_err(|_| "bench client panicked")??);
    }
    let wall = started.elapsed();

    let mut client = PlannerClient::connect(&addr).map_err(|e| e.to_string())?;
    let stats = client.stats().map_err(|e| e.to_string())?;
    latencies_ns.sort_unstable();
    let pct = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize];
    let total = latencies_ns.len();
    let doc = Json::obj([
        ("queries", Json::Num(total as f64)),
        ("clients", Json::Num(clients as f64)),
        ("wall_ms", Json::Num(wall.as_secs_f64() * 1e3)),
        ("queries_per_sec", Json::Num(total as f64 / wall.as_secs_f64())),
        ("p50_us", Json::Num(pct(0.50) as f64 / 1e3)),
        ("p99_us", Json::Num(pct(0.99) as f64 / 1e3)),
        ("sim_runs", Json::Num(stats.sim_runs as f64)),
        ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ("cache_hit_rate", Json::Num(stats.cache_hits as f64 / (stats.queries.max(1)) as f64)),
        ("dedup_collapsed", Json::Num(stats.dedup_collapsed as f64)),
    ]);
    println!("{}", doc.pretty());

    if let Some(out) = flags.get("out") {
        if let Some(parent) = std::path::Path::new(out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        std::fs::write(out, doc.pretty()).map_err(|e| format!("cannot write '{out}': {e}"))?;
        eprintln!("[results written to {out}]");
    }
    if let Some(server) = server {
        client.shutdown_server().map_err(|e| e.to_string())?;
        server.join();
    }
    Ok(())
}
