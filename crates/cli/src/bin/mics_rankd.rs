//! `mics-rankd` — one OS process per data-plane rank.
//!
//! The thread harness (`run_ranks_on`) shares one address space, so a dying
//! rank can never take its peers' memory with it. This binary gives each
//! rank a real failure domain: a process that joins a socket world through a
//! rendezvous hub and can be SIGKILLed without warning. Three subcommands:
//!
//! * `hub` — serve the rendezvous/exchange hub on an address;
//! * `worker` — join a world as one rank and run collectives, optionally
//!   surviving a designated victim's crash by shrinking the group;
//! * `bench` — orchestrate the whole recovery experiment: spawn a hub and
//!   `--world` worker processes, SIGKILL the victim mid-all-gather, and
//!   write `results/ext_multiproc.json` from the survivors' reports.
//!
//! Worker processes print exactly one JSON document on stdout (diagnostics
//! go to stderr), so the orchestrator can parse their reports wholesale.

use mics_bench::{Json, Table, ToJson};
use mics_dataplane::{connect_world, CommError, SocketWorldConfig};
use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const USAGE: &str = "\
mics-rankd — process-per-rank data plane for the MiCS reproduction

USAGE:
  mics-rankd hub    [--addr HOST:PORT|unix:PATH]
  mics-rankd worker --addr A --rank R --world W [--victim V] [--iters N]
                    [--payload P] [--timeout-ms T] [--grow-addr G]
  mics-rankd worker --role replace --grow-addr G --rank R --world W
                    [--timeout-ms T]
  mics-rankd bench  [--out results/ext_multiproc.json] [--world N] [--victim V]
                    [--grow 0|1]

`worker` joins the hub at A as rank R of W. Without --victim it runs N
all-gathers and exits; with --victim V it collectivizes until rank V dies,
then removes V from the group and proves the shrunk world still gathers.
The process whose own rank is V gathers forever, waiting to be killed.

With --grow-addr G, survivors additionally re-admit a recovered rank: after
the shrink proof they rendezvous at the second hub G at the *full* world
size, where a fresh `--role replace` process occupies the dead rank's slot,
restores its state from rank 0's broadcast, and the grown world gathers.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("hub") => run_hub(&args[1..]),
        Some("worker") => run_worker(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(2);
    }
}

/// `--flag value` pairs into typed lookups.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let flag = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got '{flag}'\n\n{USAGE}"))?;
            let value = it.next().ok_or_else(|| format!("--{flag} requires a value"))?;
            pairs.push((flag.to_string(), value.clone()));
        }
        Ok(Flags(pairs))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.0.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} must be an integer, got '{v}'")),
        }
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required\n\n{USAGE}"))
    }
}

/// Serve the rendezvous hub until killed. The resolved address (useful with
/// `--addr 127.0.0.1:0`) is printed on stdout.
fn run_hub(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:0");
    let hub = mics_dataplane::Hub::spawn(addr).map_err(|e| format!("cannot bind '{addr}': {e}"))?;
    println!("hub listening on {}", hub.addr());
    std::io::stdout().flush().ok();
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// The "model state" the grown world restores to the replacement rank —
/// a deterministic stand-in for the resharded checkpoint, so the admission
/// test verifies actual payload movement, not just membership.
fn grow_state(world: usize) -> Vec<f32> {
    (0..world * 16).map(|i| (i * i % 251) as f32).collect()
}

/// The grow phase every participant of the second rendezvous runs: join the
/// full-size world at the grow hub, restore state from rank 0's broadcast,
/// and prove the grown world gathers. Returns the JSON report fragment.
fn run_grow_phase(
    grow_addr: &str,
    rank: usize,
    world: usize,
    timeout_ms: usize,
) -> Result<Json, String> {
    let mut cfg = SocketWorldConfig::new(grow_addr, rank, world);
    cfg.timeout = Duration::from_millis(timeout_ms as u64);
    let comm = connect_world(cfg).map_err(|e| format!("rank {rank}: grow rendezvous: {e}"))?;
    comm.try_barrier().map_err(|e| format!("rank {rank}: grow barrier: {e}"))?;
    // Rank 0 re-seeds the recovered slot: the replacement joins with no
    // state and receives the survivors' copy, exactly like the resharding
    // restore after an elastic grow.
    let state = grow_state(world);
    let restored = comm
        .try_broadcast(0, &state)
        .map_err(|e| format!("rank {rank}: grow state broadcast: {e}"))?;
    let state_ok = restored == state;
    let gathered = comm
        .try_all_gather(&[rank as f32])
        .map_err(|e| format!("rank {rank}: post-grow gather: {e}"))?;
    let expected: Vec<f32> = (0..world).map(|r| r as f32).collect();
    Ok(Json::obj([
        ("grown_world", Json::from(comm.world())),
        ("grown_rank", Json::from(comm.rank())),
        ("grow_state_ok", Json::from(state_ok)),
        ("grow_post_ok", Json::from(gathered == expected)),
    ]))
}

/// Join the world and run the role picked by `--victim` / `--role`.
fn run_worker(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let rank = flags.required("rank")?.parse::<usize>().map_err(|e| format!("--rank: {e}"))?;
    let world = flags.required("world")?.parse::<usize>().map_err(|e| format!("--world: {e}"))?;
    let victim =
        flags.get("victim").map(str::parse).transpose().map_err(|e| format!("--victim: {e}"))?;
    let iters = flags.num("iters", 50)?;
    let payload_len = flags.num("payload", 64)?;
    let timeout_ms = flags.num("timeout-ms", 10_000)?;
    let grow_addr = flags.get("grow-addr");

    // The replacement process: it never saw the first world — it exists
    // only to be admitted into the grown one at the dead rank's slot.
    if flags.get("role") == Some("replace") {
        let gaddr = grow_addr.ok_or("--role replace requires --grow-addr")?;
        eprintln!("rank {rank}: replacement joining grow hub {gaddr}");
        let mut doc = run_grow_phase(gaddr, rank, world, timeout_ms)?;
        if let Json::Obj(pairs) = &mut doc {
            pairs.insert(0, ("role".into(), Json::from("replacement")));
            pairs.insert(0, ("rank".into(), Json::from(rank)));
        }
        println!("{}", doc.pretty());
        return Ok(());
    }

    let addr = flags.required("addr")?;
    let mut cfg = SocketWorldConfig::new(addr, rank, world);
    cfg.timeout = Duration::from_millis(timeout_ms as u64);
    let mut comm = connect_world(cfg).map_err(|e| format!("rank {rank}: cannot join: {e}"))?;
    comm.try_barrier().map_err(|e| format!("rank {rank}: join barrier failed: {e}"))?;

    let payload = vec![rank as f32; payload_len];
    match victim {
        // The designated victim gathers until someone kills it.
        Some(v) if v == rank => {
            eprintln!("rank {rank}: victim armed, gathering until killed");
            loop {
                if let Err(e) = comm.try_all_gather(&payload) {
                    return Err(format!("rank {rank}: victim outlived the experiment: {e}"));
                }
            }
        }
        // A survivor: gather until the victim's death poisons the world,
        // then shrink the group and prove it still collectivizes.
        Some(v) => {
            let mut iters_before = 0u64;
            let (err, detected_in) = loop {
                let call = Instant::now();
                match comm.try_all_gather(&payload) {
                    Ok(all) => {
                        assert_eq!(all.len(), world * payload_len, "short gather");
                        iters_before += 1;
                    }
                    Err(e) => break (e, call.elapsed()),
                }
            };
            eprintln!("rank {rank}: detected failure after {iters_before} gathers: {err}");
            let failed_rank = match err {
                CommError::RankFailed { rank } | CommError::PeerDisconnected { rank } => Some(rank),
                _ => None,
            };
            let shrunk =
                comm.remove_rank(v).map_err(|e| format!("rank {rank}: rebuild failed: {e}"))?;
            let gathered = shrunk
                .try_all_gather(&[rank as f32])
                .map_err(|e| format!("rank {rank}: post-rebuild gather failed: {e}"))?;
            let expected: Vec<f32> = (0..world).filter(|r| *r != v).map(|r| r as f32).collect();
            let mut fields = vec![
                ("rank".to_string(), Json::from(rank)),
                ("iters_before".to_string(), Json::from(iters_before)),
                ("detect_ms".to_string(), Json::from(detected_in.as_secs_f64() * 1e3)),
                ("error".to_string(), Json::from(err.to_string())),
                ("failed_rank".to_string(), failed_rank.map(Json::from).unwrap_or(Json::Null)),
                ("shrunk_world".to_string(), Json::from(shrunk.world())),
                ("shrunk_rank".to_string(), Json::from(shrunk.rank())),
                ("post_ok".to_string(), Json::from(gathered == expected)),
            ];
            // Elastic grow: drop the shrunk group, rendezvous at the second
            // hub at the original world size (our original rank), and admit
            // the replacement occupying the dead slot.
            if let Some(gaddr) = grow_addr {
                drop(shrunk);
                drop(comm);
                eprintln!("rank {rank}: survivor re-joining at grow hub {gaddr}");
                if let Json::Obj(pairs) = run_grow_phase(gaddr, rank, world, timeout_ms)? {
                    fields.extend(pairs);
                }
            }
            let doc = Json::Obj(fields);
            println!("{}", doc.pretty());
            Ok(())
        }
        // Clean run: a fixed number of verified all-gathers.
        None => {
            for _ in 0..iters {
                let all = comm
                    .try_all_gather(&payload)
                    .map_err(|e| format!("rank {rank}: gather failed: {e}"))?;
                for (r, chunk) in all.chunks(payload_len).enumerate() {
                    assert!(
                        chunk.iter().all(|&x| x == r as f32),
                        "rank {rank}: corrupted contribution from rank {r}"
                    );
                }
            }
            comm.try_barrier().map_err(|e| format!("rank {rank}: exit barrier failed: {e}"))?;
            let doc = Json::obj([
                ("rank", Json::from(rank)),
                ("iters", Json::from(iters)),
                ("ok", Json::from(true)),
            ]);
            println!("{}", doc.pretty());
            Ok(())
        }
    }
}

/// How long a survivor may take to observe the SIGKILL. The worker's own
/// rendezvous timeout is 10 s; the kill must surface as a poison event far
/// faster than that (the hub sees the dead peer's EOF immediately).
const DETECT_DEADLINE_MS: f64 = 5_000.0;

/// Spawn the whole experiment, assert its claims, write the artifact.
fn run_bench(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = flags.get("out").unwrap_or("results/ext_multiproc.json").to_string();
    let world = flags.num("world", 4)?;
    let victim = flags.num("victim", 2)?;
    let grow = flags.num("grow", 1)? != 0;
    assert!(world >= 3 && victim < world, "need at least two survivors");

    // A wedged rendezvous must fail the bench, not hang it.
    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_secs(120));
        eprintln!("bench exceeded its 120 s wall-clock budget — rendezvous deadlock?");
        std::process::exit(3);
    });

    let hub = mics_dataplane::Hub::spawn("127.0.0.1:0").map_err(|e| e.to_string())?;
    // A second, independent rendezvous: survivors + the replacement meet
    // here at the full world size after the shrink proof (elastic grow).
    let grow_hub = if grow {
        Some(mics_dataplane::Hub::spawn("127.0.0.1:0").map_err(|e| e.to_string())?)
    } else {
        None
    };
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    eprintln!("hub on {}, spawning {world} rank processes, victim {victim}", hub.addr());

    // Kill-and-reap every still-live child on any exit path (early `?`
    // returns included) so a failed claim never leaves zombie ranks behind.
    struct Reaper(Vec<Option<std::process::Child>>);
    impl Drop for Reaper {
        fn drop(&mut self) {
            for child in self.0.iter_mut().flatten() {
                child.kill().ok();
                child.wait().ok();
            }
        }
    }

    let mut children = Reaper(Vec::new());
    for rank in 0..world {
        let mut args = vec![
            "worker".to_string(),
            "--addr".to_string(),
            hub.addr().to_string(),
            "--rank".to_string(),
            rank.to_string(),
            "--world".to_string(),
            world.to_string(),
            "--victim".to_string(),
            victim.to_string(),
            "--timeout-ms".to_string(),
            "10000".to_string(),
        ];
        if let Some(gh) = &grow_hub {
            args.extend(["--grow-addr".to_string(), gh.addr().to_string()]);
        }
        let child = Command::new(&exe)
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn rank {rank}: {e}"))?;
        children.0.push(Some(child));
    }

    // Wait until every rank has joined, let the gathers flow, then SIGKILL
    // the victim mid-collective.
    let join_deadline = Instant::now() + Duration::from_secs(10);
    while hub.connections() < world {
        assert!(Instant::now() < join_deadline, "ranks failed to join the hub in time");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(300));
    let mut victim_child = children.0[victim].take().expect("victim child");
    let killed = victim_child.kill();
    victim_child.wait().ok();
    killed.map_err(|e| format!("cannot SIGKILL the victim: {e}"))?;
    eprintln!("victim rank {victim} SIGKILLed");

    // Grow: a fresh process takes the dead rank's slot at the second hub.
    let mut replacement = grow_hub
        .as_ref()
        .map(|gh| {
            eprintln!("spawning replacement for rank {victim} at grow hub {}", gh.addr());
            Command::new(&exe)
                .args([
                    "worker",
                    "--role",
                    "replace",
                    "--grow-addr",
                    gh.addr(),
                    "--rank",
                    &victim.to_string(),
                    "--world",
                    &world.to_string(),
                    "--timeout-ms",
                    "30000",
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("cannot spawn the replacement: {e}"))
        })
        .transpose()?;

    // Collect the survivors' reports.
    let mut table = Table::new(
        "Extension — SIGKILL mid-all-gather, process-per-rank socket transport",
        &["rank", "gathers before kill", "detect ms", "error", "new rank", "post gather"],
    );
    let mut max_detect_ms: f64 = 0.0;
    let mut all_recovered = true;
    for (rank, slot) in children.0.iter_mut().enumerate() {
        let Some(child) = slot.take() else { continue };
        let output = child.wait_with_output().map_err(|e| e.to_string())?;
        assert!(output.status.success(), "survivor rank {rank} exited with {}", output.status);
        let text = String::from_utf8_lossy(&output.stdout);
        let doc = Json::parse(&text)
            .map_err(|e| format!("survivor rank {rank} wrote malformed JSON: {e}\n{text}"))?;
        let num = |k: &str| doc.get(k).and_then(Json::as_num).expect(k);
        let iters_before = num("iters_before");
        let detect_ms = num("detect_ms");
        let post_ok = doc.get("post_ok") == Some(&Json::Bool(true));
        assert!(iters_before >= 1.0, "rank {rank} never gathered before the kill");
        assert!(
            detect_ms < DETECT_DEADLINE_MS,
            "rank {rank} took {detect_ms} ms to observe the kill"
        );
        assert_eq!(num("failed_rank") as usize, victim, "wrong rank blamed");
        assert_eq!(num("shrunk_world") as usize, world - 1);
        assert_eq!(num("shrunk_rank") as usize, rank - usize::from(rank > victim));
        assert!(post_ok, "rank {rank}: post-rebuild gather returned the wrong world");
        if grow {
            assert_eq!(num("grown_world") as usize, world, "rank {rank}: grow world wrong");
            assert_eq!(num("grown_rank") as usize, rank, "rank {rank}: kept rank changed");
            assert_eq!(doc.get("grow_post_ok"), Some(&Json::Bool(true)), "rank {rank}: grow");
        }
        max_detect_ms = max_detect_ms.max(detect_ms);
        all_recovered &= post_ok;
        table.row(vec![
            rank.to_string(),
            format!("{iters_before}"),
            format!("{detect_ms:.2}"),
            doc.get("error").and_then(Json::as_str).unwrap_or("?").to_string(),
            format!("{}", num("shrunk_rank") as usize),
            if post_ok { "ok".into() } else { "WRONG".into() },
        ]);
    }
    table.print();
    println!(
        "\nall {} survivors detected the SIGKILL within {max_detect_ms:.2} ms \
         (deadline {DETECT_DEADLINE_MS} ms) and rebuilt a working world of {}",
        world - 1,
        world - 1
    );

    // The replacement's own report closes the elastic loop: state restored
    // from rank 0, full-world gather verified, dead slot re-occupied.
    let mut replacement_admitted = false;
    if let Some(child) = replacement.take() {
        let output = child.wait_with_output().map_err(|e| e.to_string())?;
        assert!(output.status.success(), "replacement exited with {}", output.status);
        let text = String::from_utf8_lossy(&output.stdout);
        let doc = Json::parse(&text)
            .map_err(|e| format!("replacement wrote malformed JSON: {e}\n{text}"))?;
        let num = |k: &str| doc.get(k).and_then(Json::as_num).expect(k);
        assert_eq!(num("rank") as usize, victim, "replacement took the wrong slot");
        assert_eq!(num("grown_world") as usize, world);
        assert_eq!(doc.get("grow_state_ok"), Some(&Json::Bool(true)), "state restore failed");
        assert_eq!(doc.get("grow_post_ok"), Some(&Json::Bool(true)), "grown world broken");
        replacement_admitted = true;
        println!(
            "replacement admitted at rank {victim}: state restored via broadcast, \
             grown world of {world} gathers"
        );
    }

    let doc = Json::obj([
        ("survivors", table.to_json()),
        ("transport", Json::from("socket")),
        ("world", Json::from(world)),
        ("victim", Json::from(victim)),
        ("detect_deadline_ms", Json::from(DETECT_DEADLINE_MS)),
        ("max_detect_ms", Json::from(max_detect_ms)),
        ("shrunk_world", Json::from(world - 1)),
        ("post_gather", Json::arr((0..world).filter(|r| *r != victim).map(Json::from))),
        ("all_survivors_recovered", Json::from(all_recovered)),
        ("grow", Json::from(grow)),
        ("grown_world", if grow { Json::from(world) } else { Json::Null }),
        ("replacement_admitted", Json::from(replacement_admitted)),
    ]);
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!("[results written to {out}]");
    Ok(())
}
